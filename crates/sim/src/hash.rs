//! Deterministic hashing for hot lookup tables.
//!
//! The engine's hottest maps (applications by id, framework jobs by
//! id) are keyed by dense integer newtypes, grow monotonically over a
//! run — every application ever admitted stays addressable for the
//! final report — and are *indexed but never iterated* on any path
//! that feeds simulation state. An ordered tree pays a pointer chase
//! per level on every lookup; a hash table pays one. `std`'s default
//! `RandomState` is unusable here, though: its per-process random seed
//! would make iteration order differ between two runs of the same
//! binary, which turns any accidental order dependence into a
//! nondeterminism bug that only reproduces sometimes.
//!
//! [`DetState`] closes that hole: a fixed-seed, SplitMix64-finalized
//! hasher. Two runs of any binary build identical tables, so even
//! iteration order — which callers still must not let leak into
//! simulation state across *code* versions — is at least identical
//! between runs and thread counts, keeping golden-report comparisons
//! meaningful while lookups cost O(1).
//!
//! ```
//! use meryn_sim::hash::DetHashMap;
//!
//! let mut by_id: DetHashMap<u64, &str> = DetHashMap::default();
//! by_id.insert(7, "seven");
//! assert_eq!(by_id[&7], "seven");
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// A fixed-seed hasher built on the SplitMix64 finalizer.
///
/// Integer writes fold the value into the state and run it through the
/// full avalanche, so dense ids (0, 1, 2, …) — exactly what the engine
/// hands out — spread over the whole table. Byte slices are folded in
/// 8-byte words with a length-tagged tail, which is enough for the
/// occasional string key; this is a lookup-table hasher, not a
/// cryptographic one.
#[derive(Debug, Default, Clone)]
pub struct DetHasher(u64);

impl DetHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // SplitMix64 output function over (state ⊕ input) + γ.
        let mut z = (self.0 ^ word).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
        // Length tag: distinguishes "" from "\0" and friends.
        self.mix(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// The fixed-seed build-hasher: every table built with it hashes
/// identically in every run of every binary.
pub type DetState = BuildHasherDefault<DetHasher>;

/// A `HashMap` with deterministic (fixed-seed) hashing.
#[allow(clippy::disallowed_types)]
// meryn-lint: allow(no-std-hash) — this alias IS the sanctioned wrapper the rule points to
pub type DetHashMap<K, V> = std::collections::HashMap<K, V, DetState>;

/// A `HashSet` with deterministic (fixed-seed) hashing.
#[allow(clippy::disallowed_types)]
// meryn-lint: allow(no-std-hash) — this alias IS the sanctioned wrapper the rule points to
pub type DetHashSet<T> = std::collections::HashSet<T, DetState>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        DetState::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"meryn"), hash_of(&"meryn"));
        assert_eq!(hash_of(&(3u32, 4u64)), hash_of(&(3u32, 4u64)));
    }

    #[test]
    fn dense_ids_spread() {
        // The engine's keys are dense counters; the finalizer must not
        // map consecutive ids to consecutive (or colliding) hashes.
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_of(&i)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len(), "no collisions on 1k dense ids");
        // Low bits (the table-index bits) must vary too.
        let low_bits: DetHashSet<u64> = hashes.iter().map(|h| h & 0xFF).collect();
        assert!(low_bits.len() > 200, "low bits cover most of one byte");
    }

    #[test]
    fn length_tag_separates_prefixes() {
        assert_ne!(hash_of(&[0u8; 0][..]), hash_of(&[0u8; 1][..]));
        assert_ne!(hash_of(&[0u8; 7][..]), hash_of(&[0u8; 8][..]));
    }

    #[test]
    fn map_round_trips() {
        let mut m: DetHashMap<u64, u64> = DetHashMap::default();
        for i in 0..100 {
            m.insert(i, i * i);
        }
        for i in 0..100 {
            assert_eq!(m[&i], i * i);
        }
        assert_eq!(m.len(), 100);
    }
}
