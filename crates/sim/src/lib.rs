//! # meryn-sim — deterministic discrete-event simulation substrate
//!
//! This crate provides the simulation kernel on which the Meryn PaaS
//! reproduction runs: virtual time, an event queue with deterministic
//! tie-breaking, seedable random-number utilities, time-series metric
//! recording and summary statistics.
//!
//! The design goal is **bit-for-bit reproducibility**: given the same seed
//! and the same sequence of API calls, every simulation produces the same
//! trajectory. To that end:
//!
//! * [`time::SimTime`] is a fixed-point millisecond counter (`u64`), never a
//!   float, so arithmetic is exact and `Ord`;
//! * [`queue::EventQueue`] breaks ties between events scheduled at the same
//!   instant by insertion order (a monotonically increasing sequence
//!   number), so iteration order never depends on heap internals;
//! * [`rng::SimRng`] is a small, fast, seedable PRNG with stable streams and
//!   cheap forking for per-component independence.
//!
//! The kernel is intentionally *passive*: it owns no components and runs no
//! threads. Higher layers (see `meryn-core::engine`) own the loop and the
//! domain state. Parallelism in this workspace lives at two levels — one
//! simulation per thread (the replica sweeps) and, inside one simulation,
//! per-shard batches of same-instant events merged back through
//! [`queue::earliest_key`] — and neither needs interior mutability or locks
//! here: queues are owned by their shards and merged by value-level keys.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hash;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use hash::{DetHashMap, DetHashSet};
pub use queue::{earliest_key, EventQueue, QueueSnapshot};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
