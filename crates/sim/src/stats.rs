//! Summary statistics for experiment reporting.
//!
//! The evaluation binaries need means, spreads and percentiles over small
//! sample sets (65 applications, 100 latency probes). Two flavours are
//! provided: [`OnlineStats`] (Welford, single pass, no storage) for running
//! aggregates, and [`Summary`] (stores the samples) when percentiles are
//! needed.

use serde::{Deserialize, Serialize};

/// Single-pass running mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free: +∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A stored-sample summary with percentile support.
///
/// All aggregates (`mean`, `std_dev`, `sum`, percentiles) are computed
/// over a canonically ordered view of the samples, so two summaries fed
/// the same multiset of observations in **any order** — e.g. replica
/// results arriving from differently-scheduled parallel sweeps — report
/// bit-identical statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "summary samples must be finite, got {x}");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples in canonical (ascending `total_cmp`) order — the fixed
    /// evaluation order that makes every aggregate insertion-order-free.
    fn canonical(&self) -> Vec<f64> {
        let mut xs = self.samples.clone();
        xs.sort_by(f64::total_cmp);
        xs
    }

    /// Merges another summary's samples into this one. Because aggregates
    /// are evaluated in canonical order, `a.merge(&b)` and `b.merge(&a)`
    /// report bit-identical statistics.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Sample mean (zero when empty), via a single Welford pass over the
    /// canonically ordered samples: permutation-independent to the bit.
    pub fn mean(&self) -> f64 {
        self.welford().1
    }

    /// Population standard deviation, from the same order-independent
    /// Welford pass as [`Self::mean`].
    pub fn std_dev(&self) -> f64 {
        let (n, _, m2) = self.welford();
        if n < 2 {
            return 0.0;
        }
        (m2 / n as f64).sqrt()
    }

    /// Welford recurrence `(count, mean, m2)` over the canonical order.
    fn welford(&self) -> (usize, f64, f64) {
        let (mut mean, mut m2) = (0.0f64, 0.0f64);
        let xs = self.canonical();
        for (i, &x) in xs.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (x - mean);
        }
        (xs.len(), mean, m2)
    }

    /// Smallest observation (zero when empty).
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of all observations, accumulated in canonical order
    /// (insertion-order-free like the other aggregates).
    pub fn sum(&self) -> f64 {
        self.canonical().into_iter().sum()
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank on the sorted
    /// samples. Panics when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty summary");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median, i.e. the 50th percentile.
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Read-only view of the raw samples (insertion order not guaranteed
    /// once a percentile has been queried).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Relative improvement of `new` over `old` in percent, as the paper
/// reports ("16.72% better"): positive when `new` is smaller.
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    (old - new) / old * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let b = OnlineStats::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2.mean(), 3.0);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn summary_basic_stats() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn summary_percentiles() {
        let mut s = Summary::from_slice(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(20.0), 1.0);
        assert_eq!(s.percentile(80.0), 4.0);
    }

    #[test]
    fn summary_is_permutation_independent_to_the_bit() {
        // Values chosen so naive left-to-right summation is order-sensitive
        // (mixed magnitudes force different roundings per order).
        let base: Vec<f64> = (0..64)
            .map(|i| (i as f64 * 0.7).sin() * 10f64.powi(i % 7 - 3) + 1.0 / 3.0)
            .collect();
        let reference = Summary::from_slice(&base);

        // A deterministic little shuffler (LCG) over several permutations.
        let mut perm = base.clone();
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for round in 0..8 {
            for i in (1..perm.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                perm.swap(i, (state >> 33) as usize % (i + 1));
            }
            let shuffled = Summary::from_slice(&perm);
            assert_eq!(
                reference.mean().to_bits(),
                shuffled.mean().to_bits(),
                "mean diverged on permutation {round}"
            );
            assert_eq!(
                reference.std_dev().to_bits(),
                shuffled.std_dev().to_bits(),
                "std_dev diverged on permutation {round}"
            );
            assert_eq!(reference.sum().to_bits(), shuffled.sum().to_bits());
        }
    }

    #[test]
    fn summary_merge_is_order_free() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64).cos() * 3.25 + 10.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut ab = Summary::from_slice(&xs[..13]);
        ab.merge(&Summary::from_slice(&xs[13..]));
        let mut ba = Summary::from_slice(&xs[13..]);
        ba.merge(&Summary::from_slice(&xs[..13]));
        assert_eq!(whole.mean().to_bits(), ab.mean().to_bits());
        assert_eq!(ab.mean().to_bits(), ba.mean().to_bits());
        assert_eq!(ab.std_dev().to_bits(), ba.std_dev().to_bits());
        assert_eq!(ab.count(), 40);
    }

    #[test]
    #[should_panic(expected = "percentile of empty")]
    fn percentile_empty_panics() {
        Summary::new().percentile(50.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn summary_rejects_nan() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn improvement_percent() {
        assert!((improvement_pct(2091.0, 2021.0) - 3.348).abs() < 0.01);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
        assert!(improvement_pct(100.0, 120.0) < 0.0);
    }
}
