//! Summary statistics for experiment reporting.
//!
//! The evaluation binaries need means, spreads and percentiles over small
//! sample sets (65 applications, 100 latency probes). Two flavours are
//! provided: [`OnlineStats`] (Welford, single pass, no storage) for running
//! aggregates, and [`Summary`] (stores the samples) when percentiles are
//! needed.

use serde::{Deserialize, Serialize};

/// Single-pass running mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free: +∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A stored-sample summary with percentile support.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "summary samples must be finite, got {x}");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        (self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n as f64)
            .sqrt()
    }

    /// Smallest observation (zero when empty).
    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) by nearest-rank on the sorted
    /// samples. Panics when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty summary");
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median, i.e. the 50th percentile.
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Read-only view of the raw samples (insertion order not guaranteed
    /// once a percentile has been queried).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Relative improvement of `new` over `old` in percent, as the paper
/// reports ("16.72% better"): positive when `new` is smaller.
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        return 0.0;
    }
    (old - new) / old * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn online_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let b = OnlineStats::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2.mean(), 3.0);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn summary_basic_stats() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn summary_percentiles() {
        let mut s = Summary::from_slice(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.percentile(100.0), 5.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(20.0), 1.0);
        assert_eq!(s.percentile(80.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "percentile of empty")]
    fn percentile_empty_panics() {
        Summary::new().percentile(50.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn summary_rejects_nan() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn improvement_percent() {
        assert!((improvement_pct(2091.0, 2021.0) - 3.348).abs() < 0.01);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
        assert!(improvement_pct(100.0, 120.0) < 0.0);
    }
}
