//! Time-series metric recording.
//!
//! The paper's Figure 5 plots "used private VMs" and "used cloud VMs" as
//! step functions of time. [`StepSeries`] records exactly that: a
//! piecewise-constant signal sampled whenever it changes, queryable at any
//! instant, resampleable onto a regular grid for plotting, and integrable
//! (the time integral of "used cloud VMs" × price is a cross-check on the
//! billing ledger).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// One observation: the signal takes `value` from `at` (inclusive) until
/// the next sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Instant at which the signal changed.
    pub at: SimTime,
    /// New value of the signal.
    pub value: f64,
}

/// A piecewise-constant time series.
///
/// Values before the first sample are taken to be the `initial` value
/// given at construction (zero for [`StepSeries::new`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepSeries {
    name: String,
    initial: f64,
    samples: Vec<Sample>,
}

impl StepSeries {
    /// Creates an empty series starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_initial(name, 0.0)
    }

    /// Creates an empty series with an explicit initial value.
    pub fn with_initial(name: impl Into<String>, initial: f64) -> Self {
        StepSeries {
            name: name.into(),
            initial,
            samples: Vec::new(),
        }
    }

    /// The series name (used as the CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records that the signal takes `value` from instant `at` onward.
    ///
    /// Samples must arrive in nondecreasing time order (they come from a
    /// simulation clock, so this is free). A second sample at the same
    /// instant overwrites the first — only the final value of an instant
    /// is observable.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(last) = self.samples.last_mut() {
            assert!(
                at >= last.at,
                "samples must be time-ordered: got {at:?} after {:?}",
                last.at
            );
            if last.at == at {
                last.value = value;
                return;
            }
            if last.value == value {
                return; // no change; keep the series minimal
            }
        } else if self.initial == value {
            // Recording the initial value explicitly is a no-op.
            return;
        }
        self.samples.push(Sample { at, value });
    }

    /// Current (latest) value of the signal.
    pub fn last(&self) -> f64 {
        self.samples.last().map_or(self.initial, |s| s.value)
    }

    /// Value of the signal at instant `t`.
    ///
    /// When several samples share one instant (possible in
    /// deserialized series — [`StepSeries::record`] coalesces its own),
    /// the *last* one wins: only the final value of an instant is
    /// observable. `binary_search_by` would return an arbitrary match
    /// among duplicates, so this uses the partition point instead.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.samples.partition_point(|s| s.at <= t) {
            0 => self.initial,
            i => self.samples[i - 1].value,
        }
    }

    /// Maximum value ever taken (including the initial value).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(self.initial, f64::max)
    }

    /// Minimum value ever taken (including the initial value).
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(self.initial, f64::min)
    }

    /// The raw change points.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Time of the last change, if any.
    pub fn last_change(&self) -> Option<SimTime> {
        self.samples.last().map(|s| s.at)
    }

    /// Integral of the signal over `[from, to)` (value × seconds).
    ///
    /// For a "used cloud VMs" series this is VM-seconds, which times the
    /// per-second VM cost must equal the billing ledger's total.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cursor = from;
        let mut current = self.value_at(from);
        for s in &self.samples {
            if s.at <= from {
                continue;
            }
            if s.at >= to {
                break;
            }
            acc += current * (s.at - cursor).as_secs_f64();
            cursor = s.at;
            current = s.value;
        }
        acc += current * (to - cursor).as_secs_f64();
        acc
    }

    /// Time-weighted mean over `[from, to)`.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = (to - from).as_secs_f64();
        if span == 0.0 {
            return self.value_at(from);
        }
        self.integral(from, to) / span
    }

    /// Resamples the series onto a regular grid from zero to `until`
    /// (inclusive) with the given step, for plotting.
    ///
    /// The grid is capped at [`MAX_GRID_POINTS`]: when `until / step`
    /// would exceed it (a quarter-long horizon at a 1 s step is ~8M
    /// points), the step is widened by the smallest integral factor
    /// that fits, so the output stays plot-sized for any horizon.
    pub fn resample(&self, until: SimTime, step: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "resample step must be positive");
        let step = capped_step(until, step);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            out.push((t, self.value_at(t)));
            if t >= until {
                break;
            }
            t += step;
        }
        out
    }
}

/// Hard cap on the grid points any resampling loop in this module emits
/// ([`StepSeries::resample`], [`SeriesSet::to_csv`],
/// [`SeriesSet::to_ascii_chart`]). Requested steps that would build a
/// larger grid are widened by the smallest integral factor that fits.
pub const MAX_GRID_POINTS: usize = 10_000;

/// Widens `step` so a zero-to-`until` grid stays within
/// [`MAX_GRID_POINTS`].
fn capped_step(until: SimTime, step: SimDuration) -> SimDuration {
    let intervals = until.as_millis() / step.as_millis().max(1);
    let max_intervals = (MAX_GRID_POINTS - 1) as u64;
    if intervals <= max_intervals {
        step
    } else {
        SimDuration::from_millis(step.as_millis() * intervals.div_ceil(max_intervals))
    }
}

/// A set of step series sharing a time axis, renderable as CSV or a crude
/// ASCII chart. This is what the figure-regeneration binaries print.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeriesSet {
    series: Vec<StepSeries>,
}

impl SeriesSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a series and returns its index.
    pub fn add(&mut self, series: StepSeries) -> usize {
        self.series.push(series);
        self.series.len() - 1
    }

    /// Mutable access to a series by index.
    pub fn get_mut(&mut self, idx: usize) -> &mut StepSeries {
        &mut self.series[idx]
    }

    /// Immutable access by index.
    pub fn get(&self, idx: usize) -> &StepSeries {
        &self.series[idx]
    }

    /// All series.
    pub fn iter(&self) -> impl Iterator<Item = &StepSeries> {
        self.series.iter()
    }

    /// Number of series in the set.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True if the set holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Latest change instant across all series.
    pub fn horizon(&self) -> SimTime {
        self.series
            .iter()
            .filter_map(StepSeries::last_change)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Renders all series resampled on a common grid as CSV
    /// (`time_s,<name>,<name>,…`). The grid is capped at
    /// [`MAX_GRID_POINTS`] rows like [`StepSeries::resample`].
    pub fn to_csv(&self, step: SimDuration) -> String {
        let until = self.horizon();
        let step = capped_step(until, step);
        let mut out = String::from("time_s");
        for s in &self.series {
            let _ = write!(out, ",{}", s.name());
        }
        out.push('\n');
        let mut t = SimTime::ZERO;
        loop {
            let _ = write!(out, "{}", t.as_secs());
            for s in &self.series {
                let _ = write!(out, ",{}", s.value_at(t));
            }
            out.push('\n');
            if t >= until {
                break;
            }
            t += step;
        }
        out
    }

    /// Renders a crude fixed-width ASCII chart of every series on a shared
    /// scale — enough to eyeball the shape of Figure 5 in a terminal.
    pub fn to_ascii_chart(&self, width: usize, step: SimDuration) -> String {
        let until = self.horizon();
        let step = capped_step(until, step);
        let peak = self
            .series
            .iter()
            .map(StepSeries::max)
            .fold(1.0_f64, f64::max);
        let mut out = String::new();
        for s in &self.series {
            let _ = writeln!(
                out,
                "{} (max {:.0}, scale 0..{:.0})",
                s.name(),
                s.max(),
                peak
            );
            let mut t = SimTime::ZERO;
            loop {
                let v = s.value_at(t);
                let bars = ((v / peak) * width as f64).round() as usize;
                let _ = writeln!(out, "{:>7}s |{}", t.as_secs(), "#".repeat(bars));
                if t >= until {
                    break;
                }
                t += step;
            }
            out.push('\n');
        }
        out
    }
}

/// A monotonically increasing event counter with a name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Counter {
    name: String,
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            count: 0,
        }
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.count
    }

    /// Counter name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_steps() {
        let mut s = StepSeries::new("vms");
        s.record(t(10), 5.0);
        s.record(t(20), 8.0);
        assert_eq!(s.value_at(t(0)), 0.0);
        assert_eq!(s.value_at(t(10)), 5.0);
        assert_eq!(s.value_at(t(15)), 5.0);
        assert_eq!(s.value_at(t(20)), 8.0);
        assert_eq!(s.value_at(t(1000)), 8.0);
        assert_eq!(s.last(), 8.0);
    }

    #[test]
    fn initial_value_respected() {
        let s = StepSeries::with_initial("g", 25.0);
        assert_eq!(s.value_at(t(5)), 25.0);
        assert_eq!(s.max(), 25.0);
        assert_eq!(s.min(), 25.0);
    }

    #[test]
    fn duplicate_instant_overwrites() {
        let mut s = StepSeries::new("x");
        s.record(t(5), 1.0);
        s.record(t(5), 2.0);
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.value_at(t(5)), 2.0);
    }

    #[test]
    fn value_at_duplicate_timestamps_returns_the_last() {
        // `record` coalesces same-instant samples, but a deserialized
        // series can carry duplicates; `value_at` must then answer with
        // the final value of the instant, not an arbitrary match.
        let json = r#"{
            "name": "dup",
            "initial": 0.0,
            "samples": [
                { "at": 1000, "value": 1.0 },
                { "at": 5000, "value": 2.0 },
                { "at": 5000, "value": 3.0 },
                { "at": 5000, "value": 4.0 },
                { "at": 9000, "value": 5.0 }
            ]
        }"#;
        let s: StepSeries = serde_json::from_str(json).expect("series deserializes");
        assert_eq!(s.samples().len(), 5);
        assert_eq!(s.value_at(t(5)), 4.0, "last same-instant sample wins");
        assert_eq!(s.value_at(t(6)), 4.0);
        assert_eq!(s.value_at(t(1)), 1.0);
        assert_eq!(s.value_at(t(0)), 0.0);
        assert_eq!(s.value_at(t(9)), 5.0);
    }

    #[test]
    fn unchanged_value_is_deduplicated() {
        let mut s = StepSeries::new("x");
        s.record(t(5), 1.0);
        s.record(t(9), 1.0);
        assert_eq!(s.samples().len(), 1);
        // Recording the initial value before any change is also a no-op.
        let mut z = StepSeries::new("z");
        z.record(t(1), 0.0);
        assert!(z.samples().is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_record_panics() {
        let mut s = StepSeries::new("x");
        s.record(t(10), 1.0);
        s.record(t(5), 2.0);
    }

    #[test]
    fn max_min_track_extremes() {
        let mut s = StepSeries::new("x");
        s.record(t(1), 5.0);
        s.record(t(2), -3.0);
        s.record(t(3), 2.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.min(), -3.0);
    }

    #[test]
    fn integral_of_rectangle() {
        let mut s = StepSeries::new("x");
        s.record(t(10), 4.0);
        s.record(t(20), 0.0);
        // 4.0 for 10 seconds.
        assert_eq!(s.integral(t(0), t(30)), 40.0);
        assert_eq!(s.integral(t(10), t(20)), 40.0);
        assert_eq!(s.integral(t(12), t(15)), 12.0);
        assert_eq!(s.integral(t(20), t(20)), 0.0);
    }

    #[test]
    fn integral_with_initial_value() {
        let mut s = StepSeries::with_initial("x", 2.0);
        s.record(t(5), 6.0);
        // 2.0*5 + 6.0*5 over [0,10).
        assert_eq!(s.integral(t(0), t(10)), 40.0);
    }

    #[test]
    fn time_weighted_mean_matches_hand_calc() {
        let mut s = StepSeries::new("x");
        s.record(t(0), 10.0);
        s.record(t(5), 20.0);
        // [0,10): 10 for 5s, 20 for 5s → mean 15.
        assert_eq!(s.time_weighted_mean(t(0), t(10)), 15.0);
    }

    #[test]
    fn resample_grid() {
        let mut s = StepSeries::new("x");
        s.record(t(3), 7.0);
        let grid = s.resample(t(6), SimDuration::from_secs(2));
        assert_eq!(
            grid,
            vec![(t(0), 0.0), (t(2), 0.0), (t(4), 7.0), (t(6), 7.0)]
        );
    }

    #[test]
    fn resample_grid_is_capped() {
        let mut s = StepSeries::new("x");
        s.record(t(10), 3.0);
        // A quarter-long horizon at a 1 s step: uncapped, ~7.8M points.
        let quarter = SimTime::from_secs(90 * 86_400);
        let grid = s.resample(quarter, SimDuration::from_secs(1));
        assert!(
            grid.len() <= MAX_GRID_POINTS,
            "capped grid still has {} points",
            grid.len()
        );
        assert_eq!(grid[0], (SimTime::ZERO, 0.0));
        let last = *grid.last().unwrap();
        assert!(last.0 >= quarter, "grid must cover the horizon");
        assert_eq!(last.1, 3.0);
        // A capped CSV of the same horizon stays line-bounded too.
        let mut set = SeriesSet::new();
        let i = set.add(StepSeries::new("y"));
        set.get_mut(i).record(quarter, 1.0);
        let csv = set.to_csv(SimDuration::from_secs(1));
        assert!(csv.lines().count() <= MAX_GRID_POINTS + 1);
    }

    #[test]
    fn series_set_csv() {
        let mut set = SeriesSet::new();
        let a = set.add(StepSeries::new("private"));
        let b = set.add(StepSeries::new("cloud"));
        set.get_mut(a).record(t(0), 25.0);
        set.get_mut(b).record(t(2), 5.0);
        let csv = set.to_csv(SimDuration::from_secs(1));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,private,cloud");
        assert_eq!(lines[1], "0,25,0");
        assert_eq!(lines[3], "2,25,5");
    }

    #[test]
    fn series_set_horizon_and_chart() {
        let mut set = SeriesSet::new();
        let a = set.add(StepSeries::new("x"));
        set.get_mut(a).record(t(9), 3.0);
        assert_eq!(set.horizon(), t(9));
        let chart = set.to_ascii_chart(10, SimDuration::from_secs(3));
        assert!(chart.contains("x (max 3"));
        assert!(!set.is_empty());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.name(), "events");
    }
}
