//! Virtual time: fixed-point millisecond instants and durations.
//!
//! The paper reports all measurements in seconds (execution times around
//! 1550 s, processing times of 7–84 s). Millisecond resolution is fine
//! enough to order every event the protocols generate while keeping all
//! arithmetic in exact `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant of virtual time, in milliseconds since the start of the
/// simulation.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// two instants yields a [`SimDuration`]; subtraction saturates at zero
/// rather than panicking because the protocols routinely compute "margin
/// left" quantities (paper Fig. 4) that can be negative conceptually but are
/// clamped in every use site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "unset deadline" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since the origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds since the origin as a float, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction returning `None` when `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; used as an "infinite lease".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a duration from fractional seconds (rounds to the nearest
    /// millisecond). Panics on negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Length in seconds as a float, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Multiplies by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales by a non-negative float factor (e.g. a VM speed ratio),
    /// rounding to the nearest millisecond.
    ///
    /// Panics if `factor` is negative or non-finite: speed ratios in this
    /// workspace are always small positive constants and anything else is a
    /// configuration bug worth failing loudly on.
    pub fn scale(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    pub fn max_of(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    pub fn min_of(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ms(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ms(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ms(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ms(self.0))
    }
}

fn format_ms(ms: u64) -> String {
    if ms == u64::MAX {
        return "∞".to_owned();
    }
    if ms % 1000 == 0 {
        format!("{}s", ms / 1000)
    } else {
        format!("{}.{:03}s", ms / 1000, ms % 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(5).as_millis(), 5000);
        assert_eq!(SimTime::from_millis(5000).as_secs(), 5);
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(5);
        let late = SimTime::from_secs(8);
        assert_eq!(late.since(early), SimDuration::from_secs(3));
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let a = SimDuration::from_secs(2);
        let b = SimDuration::from_secs(5);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_secs(3));
        assert_eq!(SimDuration::MAX + a, SimDuration::MAX);
    }

    #[test]
    fn scale_rounds_to_nearest_ms() {
        let d = SimDuration::from_millis(1000);
        assert_eq!(d.scale(1.0777), SimDuration::from_millis(1078));
        assert_eq!(d.scale(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn scale_rejects_negative() {
        SimDuration::from_secs(1).scale(-0.5);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.2345).as_millis(), 1235);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(84).to_string(), "84s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::MAX.to_string(), "∞");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max_of(b), b);
        assert_eq!(a.min_of(b), a);
        assert_eq!(
            SimTime::from_secs(4).max_of(SimTime::from_secs(9)),
            SimTime::from_secs(9)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
    }

    #[test]
    fn serde_round_trip() {
        let t = SimTime::from_millis(12345);
        let json = serde_json::to_string(&t).unwrap();
        let back: SimTime = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
