//! The event queue: a time-ordered queue with deterministic FIFO
//! tie-breaking.
//!
//! Determinism matters here: the Meryn protocols are full of events
//! scheduled at the same instant (e.g. several Cluster Managers answering a
//! bid request "immediately"). A plain binary heap would pop equal-priority
//! items in an unspecified order; this queue tags every insertion with a
//! sequence number so replays are exact.
//!
//! # Structure
//!
//! Internally this is a two-level **calendar queue** (the standard
//! discrete-event answer to heap churn) instead of one big binary heap:
//!
//! * a **drain buffer** holding the events of the current time tick,
//!   sorted by `(due, seq)` — popping is a pointer bump, and the common
//!   same-instant cascade (pop at `now`, push at `now`) appends to its
//!   tail without any comparisons against unrelated future events;
//! * a ring of [`NUM_BUCKETS`] **buckets**, each covering one
//!   [`TICK_MS`]-wide tick of near-future time — pushing is an append,
//!   and each bucket is sorted once when the clock reaches it;
//! * a sorted **overflow** level (a binary min-heap) for events beyond
//!   the bucket horizon (~70 simulated minutes) — bulk workload
//!   arrivals spread over days land here and migrate into buckets as
//!   the window slides, so they never tax the per-event hot path.
//!
//! Pop order is exactly nondecreasing `(due, seq)` — provably identical
//! to the previous `BinaryHeap<Scheduled>` implementation (the property
//! test in `tests/queue_props.rs` checks it against a sorted-`Vec`
//! reference model across random interleavings).

use std::collections::{BinaryHeap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Width of one calendar tick in milliseconds (a power of two so the
/// tick of an instant is a shift).
const TICK_MS: u64 = 1 << TICK_SHIFT;
const TICK_SHIFT: u32 = 10; // ~1 simulated second
/// Buckets in the ring (a power of two so the slot of a tick is a
/// mask). The ring covers `NUM_BUCKETS × TICK_MS` ≈ 70 simulated
/// minutes of near future.
const NUM_BUCKETS: usize = 4096;
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;

/// A pending event together with its due time and insertion tag.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    fn tick(&self) -> u64 {
        // TICK_MS is a power of two, so this is a shift.
        self.due.as_millis() / TICK_MS
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-inserted) event surfaces first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in nondecreasing time order; events scheduled for the
/// same instant are popped in the order they were pushed.
///
/// ```
/// use meryn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), "later");
/// q.push(SimTime::from_secs(1), "first");
/// q.push(SimTime::from_secs(5), "even later");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert_eq!(q.pop().unwrap().1, "even later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Pending events with tick ≤ `cursor`, sorted by `(due, seq)`.
    drain: VecDeque<Scheduled<E>>,
    /// Pending events with tick in `(cursor, cursor + NUM_BUCKETS)`,
    /// unsorted within their tick's slot.
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Total events across all `buckets`.
    in_buckets: usize,
    /// Pending events with tick beyond the bucket window, min-ordered.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Tick of the drain buffer; buckets cover the next ticks.
    cursor: u64,
    seq: u64,
    now: SimTime,
    len: usize,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            drain: VecDeque::new(),
            buckets: std::iter::repeat_with(Vec::new).take(NUM_BUCKETS).collect(),
            in_buckets: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
            seq: 0,
            now: SimTime::ZERO,
            len: 0,
            popped: 0,
        }
    }

    /// Creates an empty queue with room for `cap` pending events.
    ///
    /// The capacity pre-sizes the far-future level, where bulk-enqueued
    /// workload arrivals accumulate; near-future buckets grow on demand.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            overflow: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Reserves room for at least `additional` more pending events (see
    /// [`EventQueue::with_capacity`] for what level this pre-sizes).
    pub fn reserve(&mut self, additional: usize) {
        self.overflow.reserve(additional);
    }

    /// The current simulation instant: the due time of the most recently
    /// popped event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events popped so far (a cheap progress/complexity
    /// metric for benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute instant `due`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation (it would make time run backwards), so this panics if
    /// `due` is earlier than the current instant. Scheduling *at* the
    /// current instant is fine and common (zero-latency hops).
    pub fn push(&mut self, due: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Scheduled { due, seq, event });
    }

    /// Places one tagged event into the right calendar level.
    fn insert(&mut self, sched: Scheduled<E>) {
        assert!(
            sched.due >= self.now,
            "cannot schedule event in the past: due={:?} now={:?}",
            sched.due,
            self.now
        );
        self.len += 1;
        let tick = sched.tick();
        if tick <= self.cursor {
            // Into the drain buffer, keeping `(due, seq)` order. The
            // `(due, seq)` upper bound is the exact sorted position for
            // any tag — and in the common same-instant cascade (a fresh
            // internal tag, the largest ever issued) it is the tail.
            let at = self
                .drain
                .partition_point(|s| (s.due, s.seq) <= (sched.due, sched.seq));
            self.drain.insert(at, sched);
        } else if tick - self.cursor < NUM_BUCKETS as u64 {
            // Strictly inside the window (cursor, cursor + NUM_BUCKETS):
            // those ticks all have distinct slots, none colliding with
            // the cursor's own slot.
            self.buckets[(tick & BUCKET_MASK) as usize].push(sched);
            self.in_buckets += 1;
        } else {
            self.overflow.push(sched);
        }
    }

    /// Schedules `event` after `delay` from the current instant.
    pub fn push_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let due = self.now + delay;
        self.push(due, event);
    }

    /// Schedules `event` at `due` with an externally-assigned sequence
    /// tag.
    ///
    /// This is the multi-queue entry point: when several queues (e.g.
    /// per-shard queues plus a control queue) share one global ordering,
    /// a single external counter hands out the tags and the queues are
    /// merged by [`EventQueue::peek_key`]. Tags may arrive out of order
    /// — a streamed-arrival block reserves its tags up front and is
    /// dispatched later, after larger runtime tags already entered the
    /// queue — but each `(due, seq)` pair is globally unique and every
    /// level orders by the full pair, so placement stays exact. The
    /// only obligation on the caller is the same as [`EventQueue::push`]'s:
    /// never schedule below an already-popped `(due, seq)`.
    pub fn push_tagged(&mut self, due: SimTime, seq: u64, event: E) {
        self.seq = self.seq.max(seq + 1);
        self.insert(Scheduled { due, seq, event });
    }

    /// Advances `cursor` to the tick of the next pending event and fills
    /// the drain buffer with that tick's events, in `(due, seq)` order.
    /// No-op while the drain buffer still holds events.
    fn ensure_front(&mut self) {
        if !self.drain.is_empty() || self.len == 0 {
            return;
        }
        loop {
            if self.in_buckets == 0 {
                // Nothing in the window: jump the window to the earliest
                // far-future event and pull in everything it now covers.
                // The heap pops in (due, seq) order, so the drain buffer
                // comes out sorted.
                let top = self.overflow.peek().expect("len > 0 and all else empty");
                self.cursor = top.tick();
                let horizon = self.cursor.saturating_add(NUM_BUCKETS as u64);
                while let Some(top) = self.overflow.peek() {
                    let tick = top.tick();
                    if tick >= horizon {
                        break;
                    }
                    let sched = self.overflow.pop().expect("peeked");
                    if tick == self.cursor {
                        self.drain.push_back(sched);
                    } else {
                        self.buckets[(tick & BUCKET_MASK) as usize].push(sched);
                        self.in_buckets += 1;
                    }
                }
                debug_assert!(!self.drain.is_empty());
                return;
            }
            // Slide the window one tick; the tick entering it at the far
            // end may have events waiting in the overflow level.
            self.cursor += 1;
            let horizon = self.cursor.saturating_add(NUM_BUCKETS as u64);
            while let Some(top) = self.overflow.peek() {
                if top.tick() >= horizon {
                    break;
                }
                let sched = self.overflow.pop().expect("peeked");
                let slot = (sched.tick() & BUCKET_MASK) as usize;
                self.buckets[slot].push(sched);
                self.in_buckets += 1;
            }
            let slot = (self.cursor & BUCKET_MASK) as usize;
            if !self.buckets[slot].is_empty() {
                let mut batch = std::mem::take(&mut self.buckets[slot]);
                self.in_buckets -= batch.len();
                // Stable within equal keys is irrelevant: (due, seq) is
                // unique, so an unstable sort is exact.
                batch.sort_unstable_by(|a, b| a.due.cmp(&b.due).then_with(|| a.seq.cmp(&b.seq)));
                self.drain = batch.into();
                return;
            }
        }
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(due, _, event)| (due, event))
    }

    /// Due time of the next pending event without popping it.
    ///
    /// Takes `&mut self` because it may rotate the calendar window
    /// forward to locate the next event (pop order is unaffected).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_front();
        self.drain.front().map(|s| s.due)
    }

    /// `(due, seq)` of the next pending event without popping it — the
    /// merge key a multi-queue executor compares across queues.
    ///
    /// Takes `&mut self` for the same reason as
    /// [`EventQueue::peek_time`].
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.ensure_front();
        self.drain.front().map(|s| (s.due, s.seq))
    }

    /// Pops the next event together with its sequence tag, advancing
    /// the clock to its due time.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        self.ensure_front();
        let sched = self.drain.pop_front()?;
        debug_assert!(sched.due >= self.now);
        self.now = sched.due;
        self.popped += 1;
        self.len -= 1;
        Some((sched.due, sched.seq, sched.event))
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.drain.clear();
        if self.in_buckets > 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
        }
        self.in_buckets = 0;
        self.overflow.clear();
        self.len = 0;
    }
}

/// A serializable snapshot of an [`EventQueue`]: the clock, the
/// counters and every pending event in `(due, seq)` order. Restoring
/// with [`EventQueue::from_snapshot`] yields a queue whose observable
/// behaviour — pop order, clock, tag watermark, processed count — is
/// identical to the snapshotted one (the calendar level an event sits
/// on is internal and may differ).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueSnapshot<E> {
    now: SimTime,
    seq: u64,
    popped: u64,
    /// Pending events, sorted by `(due, seq)`.
    entries: Vec<(SimTime, u64, E)>,
}

impl<E> QueueSnapshot<E> {
    /// Number of pending events captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no events were pending at snapshot time.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<E: Clone> EventQueue<E> {
    /// Captures the queue's pending events and counters for
    /// checkpointing.
    pub fn snapshot(&self) -> QueueSnapshot<E> {
        let mut entries: Vec<(SimTime, u64, E)> = self
            .drain
            .iter()
            .chain(self.buckets.iter().flatten())
            .chain(self.overflow.iter())
            .map(|s| (s.due, s.seq, s.event.clone()))
            .collect();
        // (due, seq) is unique, so an unstable sort is exact.
        entries.sort_unstable_by_key(|&(due, seq, _)| (due, seq));
        QueueSnapshot {
            now: self.now,
            seq: self.seq,
            popped: self.popped,
            entries,
        }
    }

    /// Rebuilds a queue from a snapshot.
    ///
    /// Pending events are replayed in `(due, seq)` order: dues are
    /// nondecreasing and equal-due runs carry increasing seqs, so the
    /// drain buffer's sorted-insert position is exact for every entry —
    /// the same invariant live pushes rely on.
    pub fn from_snapshot(snap: QueueSnapshot<E>) -> Self {
        let mut q = Self::with_capacity(snap.entries.len());
        q.now = snap.now;
        q.cursor = snap.now.as_millis() / TICK_MS;
        for (due, seq, event) in snap.entries {
            q.seq = seq;
            q.push(due, event);
        }
        q.seq = snap.seq;
        q.popped = snap.popped;
        q
    }
}

/// The merge point of a multi-queue executor: given the
/// [`EventQueue::peek_key`] of every queue sharing one globally-tagged
/// event space, returns the index of the queue holding the globally
/// next event and that event's `(due, seq)` key.
///
/// This is the *shard barrier*: everything strictly before the returned
/// key has already been popped, so a batch of same-instant events
/// drained up to the next foreign key can be processed out of line
/// (e.g. shard-parallel) without reordering the global schedule.
pub fn earliest_key(
    keys: impl IntoIterator<Item = Option<(SimTime, u64)>>,
) -> Option<(usize, (SimTime, u64))> {
    keys.into_iter()
        .enumerate()
        .filter_map(|(i, k)| k.map(|k| (i, k)))
        .min_by_key(|&(_, k)| k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), 3);
        q.push(SimTime::from_secs(10), 1);
        q.push(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn push_after_uses_current_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        q.pop();
        q.push_after(SimDuration::from_secs(5), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(e, "b");
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 1);
        q.pop();
        q.push(SimTime::from_secs(10), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), 2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn events_processed_counts() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.push(SimTime::from_secs(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
    }

    #[test]
    fn far_future_events_cross_the_overflow_level() {
        // A month-scale spread: far beyond the bucket window, so these
        // traverse overflow → bucket → drain.
        let mut q = EventQueue::new();
        let day = 86_400u64;
        for d in (0..30).rev() {
            q.push(SimTime::from_secs(d * day), d);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_burst_in_the_far_future_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(40 * 86_400);
        for i in 0..50 {
            q.push(t, i);
        }
        q.push(SimTime::from_secs(1), -1);
        assert_eq!(q.pop().unwrap().1, -1);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pushes_into_the_open_tick_keep_order() {
        // Pop at t, then push events at t and slightly after t that land
        // in the already-open drain buffer.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5000), "a");
        q.push(SimTime::from_millis(5003), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(5000), "b"); // same instant, later push
        q.push(SimTime::from_millis(5001), "b2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["b", "b2", "c"]);
    }

    #[test]
    fn interleaved_push_pop_across_the_window_boundary() {
        // Events exactly at multiples of the window width exercise the
        // jump + migration paths.
        let mut q = EventQueue::new();
        let window_secs = (NUM_BUCKETS as u64 * TICK_MS) / 1000;
        q.push(SimTime::from_secs(window_secs), 1);
        q.push(SimTime::from_secs(2 * window_secs), 2);
        q.push(SimTime::from_secs(3 * window_secs), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_secs(2 * window_secs), 22); // after 2, same instant
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 22);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn tagged_pushes_merge_across_queues_by_global_key() {
        // Two queues sharing one external counter: the merged pop order
        // must equal what a single queue would have produced.
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let t = SimTime::from_secs(3);
        a.push_tagged(t, 0, "a0");
        b.push_tagged(t, 1, "b1");
        a.push_tagged(t, 2, "a2");
        b.push_tagged(SimTime::from_secs(1), 3, "b3");
        let mut order = Vec::new();
        while let Some((idx, _)) = earliest_key([a.peek_key(), b.peek_key()]) {
            let q = if idx == 0 { &mut a } else { &mut b };
            let (_, _, ev) = q.pop_keyed().unwrap();
            order.push(ev);
        }
        assert_eq!(order, vec!["b3", "a0", "b1", "a2"]);
    }

    #[test]
    fn peek_key_matches_pop_keyed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "x");
        q.push(SimTime::from_secs(2), "y");
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(2), 0)));
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(2), 0, "x")));
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(2), 1)));
    }

    #[test]
    fn tagged_push_accepts_out_of_order_tags() {
        // A streamed-arrival block reserves its tags up front, so a
        // small tag can arrive after larger runtime tags entered the
        // queue; pops still come out in exact (due, seq) order.
        let mut q = EventQueue::new();
        q.push_tagged(SimTime::from_secs(1), 5, "runtime");
        q.push_tagged(SimTime::from_secs(1), 3, "pumped arrival");
        q.push_tagged(SimTime::from_secs(2), 4, "later");
        assert_eq!(
            q.pop_keyed(),
            Some((SimTime::from_secs(1), 3, "pumped arrival"))
        );
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(1), 5, "runtime")));
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(2), 4, "later")));
        // Internal tags resume above the largest external tag ever seen.
        q.push(SimTime::from_secs(3), "internal");
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(3), 6, "internal")));
    }

    #[test]
    fn tagged_push_lands_mid_drain_buffer() {
        // The drain buffer is already filled for the tick when a
        // pumped arrival with a mid-range tag lands at the same
        // instant: it must slot between the pending events, not at the
        // tail.
        let mut q = EventQueue::new();
        q.push_tagged(SimTime::from_secs(1), 10, "first");
        q.push_tagged(SimTime::from_secs(1), 20, "last");
        assert_eq!(q.peek_key(), Some((SimTime::from_secs(1), 10)));
        q.push_tagged(SimTime::from_secs(1), 15, "mid");
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(1), 10, "first")));
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(1), 15, "mid")));
        assert_eq!(q.pop_keyed(), Some((SimTime::from_secs(1), 20, "last")));
    }

    #[test]
    fn earliest_key_skips_empty_queues() {
        assert_eq!(earliest_key([None::<(SimTime, u64)>, None]), None);
        let k = (SimTime::from_secs(9), 4);
        assert_eq!(earliest_key([None, Some(k)]), Some((1, k)));
    }

    #[test]
    fn snapshot_restore_is_behaviour_identical() {
        // Events on all three calendar levels: current tick, near
        // future (buckets), far future (overflow) — plus a same-instant
        // run so FIFO order must survive the round trip.
        let mut q = EventQueue::new();
        for i in 0..40u64 {
            q.push(SimTime::from_secs(i * 97 % 50), i);
        }
        q.push(SimTime::from_secs(3), 100);
        q.push(SimTime::from_secs(3), 101);
        q.push(SimTime::from_secs(40 * 86_400), 200);
        for _ in 0..7 {
            q.pop();
        }
        let snap = q.snapshot();
        assert_eq!(snap.len(), q.len());
        let mut r = EventQueue::from_snapshot(snap);
        assert_eq!(r.now(), q.now());
        assert_eq!(r.len(), q.len());
        assert_eq!(r.events_processed(), q.events_processed());
        assert_eq!(r.peek_key(), q.peek_key());
        // Both queues accept the same post-restore pushes and pop the
        // same (due, seq, event) sequence.
        q.push_after(SimDuration::from_secs(5), 300);
        r.push_after(SimDuration::from_secs(5), 300);
        loop {
            let (a, b) = (q.pop_keyed(), r.pop_keyed());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(r.events_processed(), q.events_processed());
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 7u64);
        q.push(SimTime::from_secs(90 * 86_400), 9u64);
        let json = serde_json::to_string(&q.snapshot()).expect("snapshot serializes");
        let snap: QueueSnapshot<u64> = serde_json::from_str(&json).expect("snapshot parses");
        let mut r = EventQueue::from_snapshot(snap);
        assert_eq!(r.pop(), Some((SimTime::from_secs(2), 7)));
        assert_eq!(r.pop(), Some((SimTime::from_secs(90 * 86_400), 9)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn with_capacity_and_reserve_accept_bulk_loads() {
        let mut q = EventQueue::with_capacity(1000);
        q.reserve(1000);
        for i in 0..1000u64 {
            q.push(SimTime::from_secs(i * 3600), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = 0;
        while let Some((_, e)) = q.pop() {
            assert!(e >= last);
            last = e;
        }
    }
}
