//! The event queue: a time-ordered priority queue with deterministic
//! FIFO tie-breaking.
//!
//! Determinism matters here: the Meryn protocols are full of events
//! scheduled at the same instant (e.g. several Cluster Managers answering a
//! bid request "immediately"). A plain binary heap would pop equal-priority
//! items in an unspecified order; this queue tags every insertion with a
//! sequence number so replays are exact.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event together with its due time.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within an
        // instant, the first-inserted) event is popped first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are popped in nondecreasing time order; events scheduled for the
/// same instant are popped in the order they were pushed.
///
/// ```
/// use meryn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), "later");
/// q.push(SimTime::from_secs(1), "first");
/// q.push(SimTime::from_secs(5), "even later");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "later");
/// assert_eq!(q.pop().unwrap().1, "even later");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// The current simulation instant: the due time of the most recently
    /// popped event (or zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress/complexity
    /// metric for benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute instant `due`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation (it would make time run backwards), so this panics if
    /// `due` is earlier than the current instant. Scheduling *at* the
    /// current instant is fine and common (zero-latency hops).
    pub fn push(&mut self, due: SimTime, event: E) {
        assert!(
            due >= self.now,
            "cannot schedule event in the past: due={due:?} now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { due, seq, event });
    }

    /// Schedules `event` after `delay` from the current instant.
    pub fn push_after(&mut self, delay: crate::time::SimDuration, event: E) {
        let due = self.now + delay;
        self.push(due, event);
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let sched = self.heap.pop()?;
        debug_assert!(sched.due >= self.now);
        self.now = sched.due;
        self.popped += 1;
        Some((sched.due, sched.event))
    }

    /// Due time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.due)
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), 3);
        q.push(SimTime::from_secs(10), 1);
        q.push(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn push_after_uses_current_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        q.pop();
        q.push_after(SimDuration::from_secs(5), "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(e, "b");
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), ());
        q.pop();
        q.push(SimTime::from_secs(5), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 1);
        q.pop();
        q.push(SimTime::from_secs(10), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_secs(10), 2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn events_processed_counts() {
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.push(SimTime::from_secs(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.events_processed(), 5);
    }
}
