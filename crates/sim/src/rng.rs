//! Deterministic random-number utilities.
//!
//! Everything stochastic in the reproduction — operation latencies drawn
//! from the paper's measured ranges (Table 1), workload inter-arrivals,
//! heavy-tailed runtimes — flows through [`SimRng`], a seedable PRNG with
//! explicit stream forking. Forking gives each simulated component its own
//! independent stream, so adding a random draw in one component never
//! perturbs another component's sequence (a classic source of accidental
//! non-reproducibility in simulators).
//!
//! The generator is SplitMix64: tiny, fast, passes BigCrush for these
//! purposes, and trivially forkable. Heavier distributions (exponential,
//! bounded Pareto, normal) are implemented by inverse-transform /
//! Box–Muller on top of it rather than pulling in `rand_distr`.

use rand::{Error, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A seedable, forkable PRNG for simulation use.
///
/// Implements [`rand::RngCore`] so it composes with the `rand` ecosystem
/// (`gen_range`, shuffles, proptest interop) while keeping a stable
/// algorithm under our control. The state serializes, so a checkpointed
/// simulation resumes its streams mid-sequence exactly where they were.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a seed. The same seed always yields the
    /// same sequence.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child stream.
    ///
    /// `stream` labels the child (component id, replica index, …); children
    /// with different labels, or forked from different parents, produce
    /// uncorrelated sequences. Forking does not advance the parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut s = self.state ^ stream.wrapping_mul(GOLDEN_GAMMA) ^ 0xD1B5_4A32_D192_ED03;
        // Mix once so adjacent stream ids land far apart.
        let mixed = splitmix64(&mut s);
        SimRng { state: mixed }
    }

    /// Derives the seed of an independent child stream, such that
    /// `SimRng::new(SimRng::stream_seed(base, s))` generates the exact
    /// sequence of `SimRng::new(base).fork(s)`.
    ///
    /// This is how replica sweeps fan one base seed out into per-replica
    /// streams: each replica's randomness is a pure function of
    /// `(base, replica_index)`, so replicas can run in any order — or in
    /// parallel — and still reproduce the sequential sweep exactly.
    pub fn stream_seed(base: u64, stream: u64) -> u64 {
        SimRng::new(base).fork(stream).state
    }

    /// Next raw 64-bit value.
    pub fn next_raw(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo={lo} > hi={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_raw();
        }
        // Rejection-free Lemire-style bounded draw is overkill here; a
        // multiply-shift is unbiased enough for latency jitter, but stay
        // exact with simple rejection sampling on the top bits.
        let bound = span + 1;
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_raw();
            if v < zone {
                return lo + v % bound;
            }
        }
    }

    /// Uniform duration in `[lo, hi]` (inclusive, millisecond resolution).
    ///
    /// This is how the paper's measured ranges ("7~15 s") are sampled.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.uniform_u64(lo.as_millis(), hi.as_millis()))
    }

    /// Exponentially distributed duration with the given mean (inverse
    /// transform). Used for Poisson arrival processes.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Bounded-Pareto distributed duration on `[lo, hi]` with shape
    /// `alpha` (> 0). Classic heavy-tailed job-runtime model for the
    /// "representative data-center workload" experiments.
    pub fn bounded_pareto(&mut self, lo: SimDuration, hi: SimDuration, alpha: f64) -> SimDuration {
        assert!(alpha > 0.0, "bounded_pareto: alpha must be positive");
        let l = lo.as_secs_f64().max(1e-9);
        let h = hi.as_secs_f64().max(l);
        let u = self.next_f64();
        let la = l.powf(alpha);
        let ha = h.powf(alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        SimDuration::from_secs_f64(x.clamp(l, h))
    }

    /// Normally distributed duration (Box–Muller), truncated at zero.
    pub fn normal(&mut self, mean: SimDuration, std_dev: SimDuration) -> SimDuration {
        let (u1, u2) = (self.next_f64().max(f64::MIN_POSITIVE), self.next_f64());
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let v = mean.as_secs_f64() + std_dev.as_secs_f64() * z;
        SimDuration::from_secs_f64(v.max(0.0))
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random index in `[0, len)`. Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index: empty range");
        self.uniform_u64(0, len as u64 - 1) as usize
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SimRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut child1 = parent.fork(3);
        let mut parent2 = parent.clone();
        parent2.next_raw(); // advance a copy of the parent
        let mut child2 = parent.fork(3);
        for _ in 0..100 {
            assert_eq!(child1.next_raw(), child2.next_raw());
        }
    }

    #[test]
    fn stream_seed_matches_fork() {
        for base in [0u64, 42, u64::MAX] {
            for stream in [0u64, 1, 7, 1 << 40] {
                let mut via_seed = SimRng::new(SimRng::stream_seed(base, stream));
                let mut via_fork = SimRng::new(base).fork(stream);
                for _ in 0..100 {
                    assert_eq!(via_seed.next_raw(), via_fork.next_raw());
                }
            }
        }
    }

    #[test]
    fn forked_streams_are_uncorrelated() {
        let parent = SimRng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let equal = (0..1000).filter(|_| c1.next_raw() == c2.next_raw()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn uniform_u64_respects_bounds() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        // Degenerate range.
        assert_eq!(rng.uniform_u64(7, 7), 7);
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 11];
        for _ in 0..10_000 {
            seen[(rng.uniform_u64(0, 10)) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn uniform_duration_matches_paper_ranges() {
        // Table 1: local-vm processing time 7~15 s.
        let mut rng = SimRng::new(11);
        let lo = SimDuration::from_secs(7);
        let hi = SimDuration::from_secs(15);
        for _ in 0..1000 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d <= hi);
        }
    }

    #[test]
    fn exponential_has_roughly_right_mean() {
        let mut rng = SimRng::new(13);
        let mean = SimDuration::from_secs(5);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exponential(mean).as_secs_f64()).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - 5.0).abs() < 0.2,
            "sample mean {sample_mean} too far from 5.0"
        );
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::new(17);
        let lo = SimDuration::from_secs(10);
        let hi = SimDuration::from_secs(1000);
        for _ in 0..5000 {
            let d = rng.bounded_pareto(lo, hi, 1.5);
            assert!(d >= lo && d <= hi, "got {d}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // Most mass should sit near the lower bound for alpha > 1.
        let mut rng = SimRng::new(19);
        let lo = SimDuration::from_secs(10);
        let hi = SimDuration::from_secs(1000);
        let below_100 = (0..10_000)
            .filter(|_| rng.bounded_pareto(lo, hi, 1.5).as_secs() < 100)
            .count();
        assert!(below_100 > 8000, "only {below_100} of 10000 below 100s");
    }

    #[test]
    fn normal_truncates_at_zero() {
        let mut rng = SimRng::new(23);
        let mean = SimDuration::from_secs(1);
        let sd = SimDuration::from_secs(10);
        for _ in 0..2000 {
            // Must not panic (negative draws get clamped).
            let _ = rng.normal(mean, sd);
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = SimRng::new(29);
        let mean = SimDuration::from_secs(100);
        let sd = SimDuration::from_secs(10);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.normal(mean, sd).as_secs_f64()).sum();
        let m = total / n as f64;
        assert!((m - 100.0).abs() < 1.0, "sample mean {m}");
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SimRng::new(31);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }

    #[test]
    fn rngcore_fill_bytes() {
        let mut rng = SimRng::new(37);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn seedable_from_u64() {
        let mut a = SimRng::seed_from_u64(55);
        let mut b = SimRng::new(55);
        assert_eq!(a.next_raw(), b.next_raw());
    }

    #[test]
    fn index_in_range() {
        let mut rng = SimRng::new(41);
        for _ in 0..1000 {
            assert!(rng.index(10) < 10);
        }
    }
}
