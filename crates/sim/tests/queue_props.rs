//! The calendar queue against a naive reference model.
//!
//! The reference is the obvious correct implementation: an unsorted
//! `Vec` popped by minimum `(time, insertion-order)`. The calendar
//! queue must pop in **exactly** the same sequence across random
//! push/pop interleavings — including same-instant bursts, `push_after`
//! from a popped instant, and far-future events that traverse the
//! overflow level.

use meryn_sim::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

/// The sorted-`Vec` reference: push appends, pop removes the minimum
/// `(due, seq)` entry.
#[derive(Default)]
struct ReferenceQueue {
    pending: Vec<(u64, u64, u32)>, // (due_ms, seq, id)
    seq: u64,
    now: u64,
}

impl ReferenceQueue {
    fn push(&mut self, due_ms: u64, id: u32) {
        assert!(due_ms >= self.now, "reference model scheduling in the past");
        self.pending.push((due_ms, self.seq, id));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(due, seq, _))| (due, seq))?
            .0;
        let (due, _, id) = self.pending.remove(best);
        self.now = due;
        Some((due, id))
    }
}

/// One scripted operation, interpreted relative to the current clock.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push at `now + delta` ms. Small deltas exercise the drain buffer
    /// and same-instant FIFO; large ones cross the bucket window into
    /// the overflow level (the window is ~70 simulated minutes).
    Push(u64),
    /// Pop one event.
    Pop,
    /// `push_after` from the current (possibly just-popped) instant.
    PushAfter(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..10, 0u64..400_000_000).prop_map(|(kind, raw)| match kind {
        0..=2 => Op::Push(raw % 4),      // same-instant bursts
        3 | 4 => Op::Push(raw % 20_000), // near future (in-window)
        5 => Op::Push(raw),              // far future (overflow, up to ~4.6 days)
        6 => Op::PushAfter(raw % 10_000),
        _ => Op::Pop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The calendar queue pops the exact `(time, insertion-order)`
    /// sequence of the reference model across random interleavings.
    #[test]
    fn calendar_queue_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut reference = ReferenceQueue::default();
        let mut next_id = 0u32;
        for op in ops {
            match op {
                Op::Push(delta) => {
                    let due = q.now() + SimDuration::from_millis(delta);
                    q.push(due, next_id);
                    reference.push(due.as_millis(), next_id);
                    next_id += 1;
                }
                Op::PushAfter(delta) => {
                    q.push_after(SimDuration::from_millis(delta), next_id);
                    reference.push(q.now().as_millis() + delta, next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    let got = q.pop();
                    let want = reference.pop();
                    prop_assert_eq!(
                        got.map(|(t, id)| (t.as_millis(), id)),
                        want,
                        "pop order diverged from the reference model"
                    );
                }
            }
            prop_assert_eq!(q.len(), reference.pending.len());
        }
        // Drain both completely: every remaining event must match too.
        loop {
            let got = q.pop();
            let want = reference.pop();
            prop_assert_eq!(got.map(|(t, id)| (t.as_millis(), id)), want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Bulk loads (the enqueue-workload pattern): all pushes first, all
    /// pops after, across the full time range.
    #[test]
    fn bulk_enqueue_pops_sorted_and_fifo(
        deltas in prop::collection::vec(0u64..2_000_000_000, 1..300)
    ) {
        let mut q = EventQueue::with_capacity(deltas.len());
        for (i, &d) in deltas.iter().enumerate() {
            q.push(SimTime::from_millis(d), i);
        }
        let mut expected: Vec<(u64, usize)> = deltas.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(d, i)| (d, i));
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_millis(), i));
        }
        prop_assert_eq!(popped, expected);
    }
}
