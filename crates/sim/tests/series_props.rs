//! Property tests for the metrics kernel: step-series integrals are
//! additive and consistent with point queries.

use meryn_sim::metrics::StepSeries;
use meryn_sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ∫[a,c) = ∫[a,b) + ∫[b,c) for any split point.
    #[test]
    fn integral_is_additive(
        points in prop::collection::vec((0u64..1000, -50i32..50), 0..40),
        split in 0u64..1000
    ) {
        let mut sorted = points;
        sorted.sort();
        let mut s = StepSeries::new("x");
        for &(t, v) in &sorted {
            s.record(SimTime::from_secs(t), f64::from(v));
        }
        let a = SimTime::ZERO;
        let b = SimTime::from_secs(split);
        let c = SimTime::from_secs(1000);
        let whole = s.integral(a, c);
        let parts = s.integral(a, b) + s.integral(b, c);
        prop_assert!((whole - parts).abs() < 1e-6, "{whole} vs {parts}");
    }

    /// The integral of a constant-by-parts signal equals the sum of
    /// value_at over unit steps.
    #[test]
    fn integral_matches_riemann_sum(
        points in prop::collection::vec((0u64..50, 0i32..20), 0..10)
    ) {
        let mut sorted = points;
        sorted.sort();
        let mut s = StepSeries::new("x");
        for &(t, v) in &sorted {
            s.record(SimTime::from_secs(t), f64::from(v));
        }
        let until = 50u64;
        let integral = s.integral(SimTime::ZERO, SimTime::from_secs(until));
        let riemann: f64 = (0..until)
            .map(|t| s.value_at(SimTime::from_secs(t)))
            .sum();
        prop_assert!((integral - riemann).abs() < 1e-6);
    }

    /// value_at never exceeds max() nor undercuts min().
    #[test]
    fn extremes_bound_every_query(
        points in prop::collection::vec((0u64..1000, -100i32..100), 1..40),
        queries in prop::collection::vec(0u64..1200, 1..20)
    ) {
        let mut sorted = points;
        sorted.sort();
        let mut s = StepSeries::new("x");
        for &(t, v) in &sorted {
            s.record(SimTime::from_secs(t), f64::from(v));
        }
        for q in queries {
            let v = s.value_at(SimTime::from_secs(q));
            prop_assert!(v <= s.max() && v >= s.min());
        }
    }

    /// Resampling preserves point queries on grid instants.
    #[test]
    fn resample_agrees_with_value_at(
        points in prop::collection::vec((0u64..100, 0i32..50), 0..20),
        step in 1u64..10
    ) {
        let mut sorted = points;
        sorted.sort();
        let mut s = StepSeries::new("x");
        for &(t, v) in &sorted {
            s.record(SimTime::from_secs(t), f64::from(v));
        }
        for (t, v) in s.resample(SimTime::from_secs(100), SimDuration::from_secs(step)) {
            prop_assert_eq!(v, s.value_at(t));
        }
    }
}
