//! The platform facade: deployment, event loop and reporting.
//!
//! The paper's prototype glues its components together with shell
//! scripts over two Snooze installations; here the glue is the sharded
//! discrete-event engine in [`crate::engine`] — a [`VcShard`] state
//! machine per Virtual Cluster, a [`SharedFabric`] for the singletons
//! (pool, clouds, ledger, metrics) and a [`ShardExecutor`] that merges
//! their queues into one deterministic schedule and fans same-instant
//! shard batches out across worker threads.
//!
//! `Platform` keeps the historical surface — `new → run → RunReport` —
//! as a thin veneer over the executor, so drivers, benches and tests
//! are unaffected by the monolith's decomposition.

use std::borrow::Borrow;

use meryn_vmm::{Ledger, PrivatePool, PublicCloud};
use meryn_workloads::Submission;

use crate::app::Application;
use crate::cluster_manager::VirtualCluster;
use crate::config::PlatformConfig;
use crate::engine::{EngineCheckpoint, ShardExecutor, StreamError};
use crate::ids::AppId;
use crate::report::{ReportMode, RunReport};

/// The assembled Meryn platform.
pub struct Platform {
    exec: ShardExecutor,
}

impl Platform {
    /// Deploys the platform described by `cfg` (see
    /// [`ShardExecutor::new`] for the deployment choreography).
    pub fn new(cfg: PlatformConfig) -> Self {
        Platform {
            exec: ShardExecutor::new(cfg),
        }
    }

    /// Sets whether the used-VM step curves are sampled (on by
    /// default). Peaks are tracked either way; only the full
    /// step-series sample vectors are skipped when off.
    pub fn with_series_recording(mut self, on: bool) -> Self {
        self.exec.set_series_recording(on);
        self
    }

    /// Selects the reporting mode (see [`ReportMode`]). In
    /// [`ReportMode::Aggregate`] the engine retires each application as
    /// it completes, folding it into running per-VC totals, so resident
    /// memory stays `O(live applications)` instead of `O(history)` —
    /// the hyperscale configuration. Must be called before any events
    /// are processed.
    pub fn with_report_mode(mut self, mode: ReportMode) -> Self {
        self.exec.set_report_mode(mode);
        self
    }

    /// Restores a platform from a [`checkpoint`](Self::checkpoint)
    /// taken on a run whose workload was fully enqueued up front.
    /// Resuming walks the exact event trajectory of the uninterrupted
    /// run — reports are byte-identical.
    pub fn from_checkpoint(cp: EngineCheckpoint) -> Self {
        Platform {
            exec: ShardExecutor::from_checkpoint(cp),
        }
    }

    /// Restores a platform from a checkpoint taken on a streaming run
    /// ([`Self::stream_workload`]). `workload` must be the same
    /// deterministic submission sequence the original run streamed; the
    /// engine skips the already-consumed prefix using the checkpoint's
    /// cursor.
    pub fn from_checkpoint_streaming<I>(cp: EngineCheckpoint, workload: I) -> Self
    where
        I: IntoIterator<Item = Submission>,
        I::IntoIter: Send + 'static,
    {
        Platform {
            exec: ShardExecutor::from_checkpoint_streaming(cp, workload),
        }
    }

    /// Snapshots the complete engine state — shard state machines,
    /// shared fabric (pool, clouds, ledger, metrics, RNG stream
    /// positions), queues and the streaming cursor — at the current
    /// instant. Serializable with serde; see
    /// [`Self::from_checkpoint`] / [`Self::from_checkpoint_streaming`].
    pub fn checkpoint(&self) -> EngineCheckpoint {
        self.exec.checkpoint()
    }

    /// Enqueues a workload's arrivals. Accepts owned and borrowed
    /// submissions alike (`Vec<Submission>`, `&[Submission]`, any
    /// iterator of either), so drivers never clone a workload to feed
    /// the platform.
    pub fn enqueue_workload<I>(&mut self, workload: I)
    where
        I: IntoIterator,
        I::Item: Borrow<Submission>,
    {
        self.exec.enqueue_workload(workload);
    }

    /// Feeds `count` arrivals lazily from `workload` instead of
    /// enqueueing them up front — the event queue holds only the next
    /// pending arrival, so a 10-million-submission quarter costs O(1)
    /// arrival memory. Byte-identical to [`Self::enqueue_workload`]
    /// with the same submissions. Errs if a stream is already attached
    /// (one streamed workload per run).
    pub fn stream_workload<I>(&mut self, count: u64, workload: I) -> Result<(), StreamError>
    where
        I: IntoIterator<Item = Submission>,
        I::IntoIter: Send + 'static,
    {
        self.exec.stream_workload(count, workload)
    }

    /// Processes one event; `false` when all queues are drained.
    ///
    /// The single-step path is strictly sequential; the batched
    /// [`Self::run_to_completion`] loop produces the same trajectory
    /// (that equivalence is pinned by the engine's determinism tests).
    pub fn step(&mut self) -> bool {
        self.exec.step()
    }

    /// Drains the event queues through the batched, shard-parallel
    /// executor loop.
    pub fn run_to_completion(&mut self) {
        self.exec.run_to_completion();
    }

    /// Runs until the next event is due strictly after `stop`, leaving
    /// the engine on a clean instant boundary (a safe point to
    /// [`checkpoint`](Self::checkpoint)). Returns `true` if events
    /// remain past `stop`, `false` when the queues drained first.
    pub fn run_until(&mut self, stop: meryn_sim::SimTime) -> bool {
        self.exec.run_until(stop)
    }

    /// **The** entry point for external drivers: enqueues `workload`,
    /// drains the event loop and reports. Equivalent to
    /// [`Self::enqueue_workload`] + [`Self::run_to_completion`] +
    /// [`Self::finalize`]; use those pieces directly only when stepping
    /// or inspecting mid-run state.
    pub fn run<I>(mut self, workload: I) -> RunReport
    where
        I: IntoIterator,
        I::Item: Borrow<Submission>,
    {
        self.enqueue_workload(workload);
        self.run_to_completion();
        self.finalize()
    }

    // ---- accessors (used by tests and examples) ---------------------------

    /// The deployed Virtual Clusters, `VcId` order.
    pub fn vcs(&self) -> impl Iterator<Item = &VirtualCluster> {
        self.exec.shards.iter().map(|s| &s.vc)
    }

    /// The private pool.
    pub fn pool(&self) -> &PrivatePool {
        &self.exec.fabric.pool
    }

    /// The public clouds.
    pub fn clouds(&self) -> &[PublicCloud] {
        &self.exec.fabric.clouds
    }

    /// Looks one application up across shards.
    pub fn app(&self, id: AppId) -> Option<&Application> {
        self.exec.app(id)
    }

    /// The billing ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.exec.fabric.ledger
    }

    /// Current simulation instant.
    pub fn now(&self) -> meryn_sim::SimTime {
        self.exec.now()
    }

    /// Same-instant cross-shard event runs the executor fanned out to
    /// worker threads so far.
    pub fn parallel_runs(&self) -> u64 {
        self.exec.parallel_runs()
    }

    /// Audits the shared fabric's conservation invariants: active-VM
    /// counters recounted against VM states, busy counters bounded by
    /// active ones. `Err` carries the first violated invariant. The
    /// checkpoint tests run this after a restore and after a run
    /// drains, where any violation means a snapshot or state-machine
    /// bug rather than a mid-event transient.
    pub fn audit_invariants(&self) -> Result<(), String> {
        self.exec.audit_invariants()
    }

    /// Per-shard processed-event counters as `(vc name, events)` pairs,
    /// plus the control plane under the name `"control"` — the
    /// `scenario --bench` breakdown.
    pub fn shard_event_counts(&self) -> Vec<(String, u64)> {
        let mut counts = vec![("control".to_owned(), self.exec.control_events_processed())];
        counts.extend(
            self.exec
                .shards
                .iter()
                .map(|s| (s.vc.name.clone(), s.events_processed())),
        );
        counts
    }

    /// Builds the final report. Consumes the platform.
    pub fn finalize(self) -> RunReport {
        self.exec.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlatformConfig, VcConfig};
    use meryn_frameworks::{JobSpec, ScalingLaw};
    use meryn_sim::{SimDuration, SimTime};
    use meryn_sla::negotiation::UserStrategy;
    use meryn_sla::Money;
    use meryn_workloads::{Submission, VcTarget};

    fn batch_sub(at_secs: u64, vc: usize, work_secs: u64) -> Submission {
        Submission::new(
            SimTime::from_secs(at_secs),
            VcTarget::Index(vc),
            JobSpec::Batch {
                work: SimDuration::from_secs(work_secs),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            },
            UserStrategy::AcceptCheapest,
        )
    }

    fn small_cfg(policy: &str) -> PlatformConfig {
        let mut cfg = PlatformConfig::paper(policy);
        cfg.private_capacity = 4;
        cfg.vcs = vec![VcConfig::batch("VC1", 2), VcConfig::batch("VC2", 2)];
        cfg
    }

    #[test]
    fn single_app_runs_locally() {
        let cfg = small_cfg("meryn");
        let report = Platform::new(cfg).run([batch_sub(5, 0, 100)]);
        assert_eq!(report.apps.len(), 1);
        let a = &report.apps[0];
        assert_eq!(a.placement, "local-vm");
        assert!(!a.violated);
        // Processing 7–15 s, exec 100 s.
        let p = a.processing.unwrap();
        assert!(p >= SimDuration::from_secs(7) && p <= SimDuration::from_secs(15));
        assert_eq!(a.exec, SimDuration::from_secs(100));
        // Cost: 100 s × 1 VM × 2 u/s.
        assert_eq!(a.cost, Money::from_units(200));
        assert_eq!(report.violations(), 0);
        assert_eq!(report.transfers, 0);
        assert_eq!(report.bursts, 0);
    }

    #[test]
    fn overflow_takes_sibling_idle_vms_in_meryn() {
        let cfg = small_cfg("meryn");
        // Three apps to VC1 (2 slots): the third gets VC2's idle VM.
        let subs = vec![
            batch_sub(5, 0, 500),
            batch_sub(10, 0, 500),
            batch_sub(15, 0, 500),
        ];
        let report = Platform::new(cfg).run(&subs);
        assert_eq!(report.apps.len(), 3);
        assert_eq!(report.transfers, 1);
        assert_eq!(report.bursts, 0);
        let third = &report.apps[2];
        assert_eq!(third.placement, "vc-vm");
        // Transfer path processing: base + stop + boot ≈ 40–58 s.
        let p = third.processing.unwrap();
        assert!(
            p >= SimDuration::from_secs(35) && p <= SimDuration::from_secs(65),
            "vc-vm processing out of calibrated range: {p}"
        );
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn overflow_bursts_to_cloud_in_static() {
        let cfg = small_cfg("static");
        let subs = vec![
            batch_sub(5, 0, 500),
            batch_sub(10, 0, 500),
            batch_sub(15, 0, 500),
        ];
        let report = Platform::new(cfg).run(&subs);
        assert_eq!(report.transfers, 0);
        assert_eq!(report.bursts, 1);
        let third = &report.apps[2];
        assert_eq!(third.placement, "cloud-vm");
        let p = third.processing.unwrap();
        assert!(
            p >= SimDuration::from_secs(60) && p <= SimDuration::from_secs(84),
            "cloud processing out of Table 1 range: {p}"
        );
        // Cloud cost: exec ≈ 500/0.928 ≈ 539 s at 4 u/s.
        assert!(third.cost > Money::from_units(2000));
        assert_eq!(report.violations(), 0);
        assert_eq!(report.peak_cloud, 1.0);
    }

    #[test]
    fn cloud_vms_are_released_after_completion() {
        let cfg = small_cfg("static");
        let subs = vec![
            batch_sub(5, 0, 300),
            batch_sub(10, 0, 300),
            batch_sub(15, 0, 300),
        ];
        let mut platform = Platform::new(cfg);
        platform.enqueue_workload(&subs);
        while platform.step() {}
        assert_eq!(platform.clouds()[0].active_count(), 0);
        let report = platform.finalize();
        assert!(report.cloud_bill > Money::ZERO);
        // The series returns to zero at the end.
        assert_eq!(report.series.get(1).last(), 0.0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let subs: Vec<Submission> = (0..8)
            .map(|i| batch_sub(5 + i * 5, (i % 2) as usize, 400))
            .collect();
        let r1 = Platform::new(small_cfg("meryn")).run(&subs);
        let r2 = Platform::new(small_cfg("meryn")).run(&subs);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn stepped_loop_matches_batched_executor() {
        // The one-event-at-a-time `step` path and the batched
        // shard-parallel `run_to_completion` path must walk the same
        // trajectory.
        let subs: Vec<Submission> = (0..12)
            .map(|i| batch_sub(5 + (i / 4) * 5, (i % 2) as usize, 150 + i * 30))
            .collect();
        let batched = Platform::new(small_cfg("meryn")).run(&subs);
        let mut stepped = Platform::new(small_cfg("meryn"));
        stepped.enqueue_workload(&subs);
        while stepped.step() {}
        let stepped = stepped.finalize();
        assert_eq!(
            serde_json::to_string(&batched).unwrap(),
            serde_json::to_string(&stepped).unwrap()
        );
    }

    #[test]
    fn different_seeds_change_latencies_not_outcomes() {
        let subs = vec![batch_sub(5, 0, 100)];
        let r1 = Platform::new(small_cfg("meryn").with_seed(1)).run(&subs);
        let r2 = Platform::new(small_cfg("meryn").with_seed(2)).run(&subs);
        assert_eq!(r1.apps[0].placement, r2.apps[0].placement);
        assert_eq!(r1.apps[0].exec, r2.apps[0].exec);
        assert_ne!(r1.apps[0].processing, r2.apps[0].processing);
    }

    #[test]
    fn suspension_lending_roundtrip() {
        // One VC, one VM, no clouds. App A (generous deadline) runs;
        // app B arrives and the only option is suspending A. When B
        // finishes, A resumes and completes.
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.private_capacity = 1;
        cfg.vcs = vec![VcConfig::batch("VC1", 1)];
        cfg.clouds.clear();
        let subs = vec![
            Submission::new(
                SimTime::from_secs(5),
                VcTarget::Index(0),
                JobSpec::Batch {
                    work: SimDuration::from_secs(500),
                    nb_vms: 1,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::ImposeDeadline {
                    deadline: SimDuration::from_secs(50_000),
                    concession_pct: 10,
                },
            ),
            batch_sub(40, 0, 100),
        ];
        let report = Platform::new(cfg).run(&subs);
        assert_eq!(report.apps.len(), 2);
        assert_eq!(report.suspensions, 1);
        let a = &report.apps[0];
        let b = &report.apps[1];
        assert_eq!(b.placement, "local-vm after suspension");
        assert_eq!(a.suspensions, 1);
        // Both completed; A's exec time is still ~500 s of work.
        assert!(a.completed.is_some());
        assert!(b.completed.is_some());
        assert_eq!(a.exec, SimDuration::from_secs(500));
        // A had a generous deadline: no violation.
        assert_eq!(report.violations(), 0);
        // B finished before A.
        assert!(b.completed.unwrap() < a.completed.unwrap());
    }

    #[test]
    fn queue_decision_when_no_capacity_anywhere() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.private_capacity = 1;
        cfg.vcs = vec![VcConfig::batch("VC1", 1)];
        cfg.clouds.clear();
        // Use nb_vms = 2 for the second app so nothing can hold it and
        // it queues.
        let subs = vec![
            batch_sub(5, 0, 300),
            Submission::new(
                SimTime::from_secs(10),
                VcTarget::Index(0),
                JobSpec::Batch {
                    work: SimDuration::from_secs(100),
                    nb_vms: 2,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            ),
        ];
        let report = Platform::new(cfg).run(&subs);
        // The 2-VM app can never run (only 1 VM exists) and waits in the
        // framework forever; the run still terminates with it queued.
        assert_eq!(report.apps.len(), 2);
        assert!(report.apps[0].completed.is_some());
        assert!(report.apps[1].completed.is_none());
    }

    #[test]
    fn ledger_matches_app_costs() {
        let cfg = small_cfg("meryn");
        let subs = vec![batch_sub(5, 0, 200), batch_sub(10, 1, 200)];
        let mut platform = Platform::new(cfg);
        platform.enqueue_workload(&subs);
        while platform.step() {}
        let ledger_total = platform.ledger().total();
        let report = platform.finalize();
        assert_eq!(report.total_cost(), ledger_total);
    }

    #[test]
    fn mapreduce_vc_hosts_mapreduce_jobs() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.private_capacity = 4;
        cfg.vcs = vec![VcConfig::batch("batch", 2), VcConfig::mapreduce("mr", 2)];
        let sub = Submission::new(
            SimTime::from_secs(5),
            VcTarget::Index(1),
            JobSpec::MapReduce {
                map_tasks: 8,
                map_work: SimDuration::from_secs(30),
                reduce_tasks: 2,
                reduce_work: SimDuration::from_secs(60),
                nb_vms: 2,
                slots_per_vm: 2,
            },
            UserStrategy::AcceptCheapest,
        );
        let report = Platform::new(cfg).run([sub]);
        assert_eq!(report.apps.len(), 1);
        assert!(report.apps[0].completed.is_some());
        // 8 maps / 4 slots = 2 waves ×30 + 1 reduce wave ×60 = 120 s at
        // reference speed.
        assert_eq!(report.apps[0].exec, SimDuration::from_secs(120));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let cfg = small_cfg("meryn");
        let sub = Submission::new(
            SimTime::from_secs(5),
            VcTarget::Index(0),
            JobSpec::MapReduce {
                map_tasks: 1,
                map_work: SimDuration::from_secs(1),
                reduce_tasks: 0,
                reduce_work: SimDuration::ZERO,
                nb_vms: 1,
                slots_per_vm: 1,
            },
            UserStrategy::AcceptCheapest,
        );
        let report = Platform::new(cfg).run([sub]);
        assert_eq!(report.apps.len(), 0);
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn shard_event_counts_cover_all_events() {
        let cfg = small_cfg("meryn");
        let subs = vec![batch_sub(5, 0, 200), batch_sub(10, 1, 200)];
        let mut platform = Platform::new(cfg);
        platform.enqueue_workload(&subs);
        platform.run_to_completion();
        let counts = platform.shard_event_counts();
        assert_eq!(counts.len(), 3); // control + 2 shards
        assert_eq!(counts[0].0, "control");
        let total: u64 = counts.iter().map(|(_, n)| n).sum();
        let report = platform.finalize();
        assert_eq!(total, report.events_processed);
        assert!(report.events_processed > 0);
    }
}
