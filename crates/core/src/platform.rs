//! The platform driver: deployment, event loop and the choreography of
//! §3.3 (submission), §3.4 (VM exchange) and §3.5 (cloud bursting).
//!
//! The paper's prototype glues its components together with shell
//! scripts over two Snooze installations; here the glue is a
//! discrete-event loop over the same operations, with every latency
//! drawn from the calibrated models in
//! [`Latencies`](crate::config::Latencies).

use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::sync::Arc;

use meryn_frameworks::{BatchFramework, Framework, FrameworkKind, JobId, MapReduceFramework};
use meryn_sim::metrics::{SeriesSet, StepSeries};
use meryn_sim::{EventQueue, SimRng, SimTime};
use meryn_sla::pricing::PricingParams;
use meryn_sla::violation;
use meryn_sla::{AppTimes, Money, VmRate};
use meryn_vmm::{
    CloudId, ImageRegistry, LatencyModel, Ledger, Location, PrivatePool, PublicCloud, VmId,
};
use meryn_workloads::Submission;

use crate::app::{AppPhase, Application};
use crate::bidding::BidRequest;
use crate::client_manager::admit;
use crate::cluster_manager::VirtualCluster;
use crate::config::PlatformConfig;
use crate::events::Event;
use crate::ids::{AppId, Placement, VcId};
use crate::policy::{self, BiddingPolicy, PlacementPolicy};
use crate::protocol::{select_resources, Decision, ProtocolParams};
use crate::report::{AppRecord, RunReport};

/// One execution stint of a job: which VMs, since when, at what cost.
#[derive(Debug, Clone)]
struct Stint {
    started: SimTime,
    vms: Vec<(VmId, Location, VmRate)>,
}

/// Multi-step VM acquisition in flight for an application.
#[derive(Debug, Clone)]
enum PendingAcquisition {
    /// §3.4 transfer: VMs stopping at the source, then booting with the
    /// destination image. `awaiting` counts boots still outstanding.
    Transfer { awaiting: u64, vms: Vec<VmId> },
    /// §3.5 bursting: leases provisioning. Rates were locked at
    /// `begin_lease`. For SLA escalations of an already-submitted job,
    /// `existing_job` carries the framework job to pin-start instead of
    /// submitting a new one.
    CloudLease {
        cloud: CloudId,
        awaiting: u64,
        vms: Vec<(VmId, VmRate)>,
        speed: f64,
        existing_job: Option<JobId>,
    },
}

/// A lending relationship: when the borrower finishes, `victim` (held in
/// `src`) gets its VMs back and resumes.
#[derive(Debug, Clone, Copy)]
struct Lending {
    src: VcId,
    victim: AppId,
}

/// A lent-VM return in flight (stop at borrower, boot at lender).
#[derive(Debug, Clone)]
struct ReturnOp {
    src: VcId,
    victim: AppId,
    awaiting: u64,
    vms: Vec<VmId>,
}

/// The assembled Meryn platform.
pub struct Platform {
    cfg: PlatformConfig,
    placement: Arc<dyn PlacementPolicy>,
    bidding: Arc<dyn BiddingPolicy>,
    queue: EventQueue<Event>,
    pool: PrivatePool,
    clouds: Vec<PublicCloud>,
    #[allow(dead_code)]
    images: ImageRegistry,
    vcs: Vec<VirtualCluster>,
    apps: BTreeMap<AppId, Application>,
    next_app: u64,
    ledger: Ledger,
    stints: BTreeMap<(VcId, JobId), Stint>,
    pending: BTreeMap<AppId, PendingAcquisition>,
    /// Specific slave VMs reserved (Local paths) for an application
    /// whose submission pipeline is still in flight; the pinned submit
    /// claims them.
    acquired: BTreeMap<AppId, Vec<VmId>>,
    lendings: BTreeMap<AppId, Lending>,
    returns: BTreeMap<u64, ReturnOp>,
    next_return: u64,
    // Metrics.
    busy_private: u64,
    busy_cloud: u64,
    /// Running maxima of the busy counters. The report's peak fields
    /// come from these, so peaks survive even when curve recording is
    /// gated off. Same-instant transients are coalesced exactly like
    /// [`StepSeries::record`] coalesces them — only the *final* value
    /// of an instant is observable — via the pending `usage_*` trio.
    peak_busy_private: u64,
    peak_busy_cloud: u64,
    /// Instant of the not-yet-committed usage observation.
    usage_at: SimTime,
    /// Busy counts as of `usage_at` (folded into the peaks once a later
    /// instant is observed, mirroring the series' same-instant
    /// overwrite).
    usage_private: u64,
    usage_cloud: u64,
    /// Whether the used-VM step curves are sampled. Defaults to on; the
    /// scenario runner turns it off when the requested outputs never
    /// read the curves, so a 100k-submission run does not accumulate
    /// samples nobody looks at.
    record_series: bool,
    used_private: StepSeries,
    used_cloud: StepSeries,
    transfers: u64,
    bursts: u64,
    suspensions: u64,
    escalations: u64,
    cloud_bill: Money,
    rejected: usize,
    /// Per-Client-Manager earliest-free instants (empty = unbounded
    /// front-end concurrency).
    cm_free_at: Vec<SimTime>,
    lat_rng: SimRng,
    /// Recycled `VmId` scratch buffers: the acquisition pipeline
    /// (idle-slave collects, transfer sets, lease id lists) takes a
    /// buffer here and returns it when the pinned submit consumes it,
    /// so the steady-state dispatch cycle allocates nothing.
    vm_bufs: Vec<Vec<VmId>>,
    /// Recycled stint buffers (the dispatch→billing cycle's VM lists).
    stint_bufs: Vec<Vec<(VmId, Location, VmRate)>>,
}

impl Platform {
    /// Deploys the platform described by `cfg`: boots the initial VC
    /// slaves on the private pool (deployment precedes the workload, so
    /// initial VMs come up instantly at t = 0) and pre-stages every
    /// framework image in every cloud (§3.5).
    pub fn new(cfg: PlatformConfig) -> Self {
        cfg.validate();
        let placement = policy::placement(&cfg.policy).expect("validated policy resolves");
        let bidding = policy::bidding(&cfg.bidding).expect("validated bidding policy resolves");
        let master = SimRng::new(cfg.seed);
        let mut pool = PrivatePool::with_vm_capacity(
            cfg.private_capacity,
            cfg.vm_spec,
            cfg.latencies.transfer_boot,
            cfg.latencies.transfer_stop,
            1.0,
            master.fork(1),
        );
        let mut images = ImageRegistry::new();
        let pricing =
            PricingParams::new(cfg.vm_price, cfg.penalty_factor).with_bound(cfg.penalty_bound);

        let mut vcs: Vec<VirtualCluster> = Vec::with_capacity(cfg.vcs.len());
        for (i, vc_cfg) in cfg.vcs.iter().enumerate() {
            let image = images.register(format!("{}-image", vc_cfg.name), 4096);
            let framework: Box<dyn Framework> = match vc_cfg.kind {
                FrameworkKind::Batch => {
                    if vc_cfg.backfill {
                        Box::new(BatchFramework::with_backfill())
                    } else {
                        Box::new(BatchFramework::new())
                    }
                }
                FrameworkKind::MapReduce => Box::new(MapReduceFramework::with_locality_penalty(
                    vc_cfg.locality_penalty_pct,
                )),
            };
            vcs.push(VirtualCluster::new(
                VcId(i),
                vc_cfg.name.clone(),
                vc_cfg.kind,
                image,
                framework,
                pricing,
            ));
        }

        let mut clouds = Vec::with_capacity(cfg.clouds.len());
        for (i, c) in cfg.clouds.iter().enumerate() {
            let mut cloud = PublicCloud::new(
                CloudId(i as u16),
                c.name.clone(),
                c.price.clone(),
                cfg.latencies.cloud_provision,
                cfg.latencies.cloud_release,
                c.speed,
                c.quota,
                master.fork(100 + i as u64),
            );
            for vc in &vcs {
                cloud.stage_image(vc.image);
            }
            clouds.push(cloud);
        }

        // Initial deployment: boot each VC's share instantly at t=0.
        for (vc, vc_cfg) in vcs.iter_mut().zip(&cfg.vcs) {
            for _ in 0..vc_cfg.initial_vms {
                let (vm, _boot) = pool
                    .begin_start(vc.image, SimTime::ZERO)
                    .expect("validated initial allocation fits");
                pool.complete_start(vm, SimTime::ZERO)
                    .expect("fresh VM completes start");
                vc.add_slave(vm, 1.0, Location::Private, cfg.private_cost)
                    .expect("fresh slave is unique");
            }
        }

        let lat_rng = master.fork(2);
        let cm_free_at = vec![SimTime::ZERO; cfg.client_managers.unwrap_or(0)];
        // Steady-state pending events scale with the live estate (every
        // busy VM has at most a few lifecycle/completion events in
        // flight); the workload bulk is reserved at enqueue time from
        // the workload's own length.
        let queue = EventQueue::with_capacity(4 * cfg.private_capacity as usize);
        Platform {
            cfg,
            placement,
            bidding,
            queue,
            pool,
            clouds,
            images,
            vcs,
            apps: BTreeMap::new(),
            next_app: 0,
            ledger: Ledger::new(),
            stints: BTreeMap::new(),
            pending: BTreeMap::new(),
            acquired: BTreeMap::new(),
            lendings: BTreeMap::new(),
            returns: BTreeMap::new(),
            next_return: 0,
            busy_private: 0,
            busy_cloud: 0,
            peak_busy_private: 0,
            peak_busy_cloud: 0,
            usage_at: SimTime::ZERO,
            usage_private: 0,
            usage_cloud: 0,
            record_series: true,
            used_private: StepSeries::new("used_private_vms"),
            used_cloud: StepSeries::new("used_cloud_vms"),
            transfers: 0,
            bursts: 0,
            suspensions: 0,
            escalations: 0,
            cloud_bill: Money::ZERO,
            rejected: 0,
            cm_free_at,
            lat_rng,
            vm_bufs: Vec::new(),
            stint_bufs: Vec::new(),
        }
    }

    /// Sets whether the used-VM step curves are sampled (on by
    /// default). Peaks are tracked either way; only the full
    /// [`StepSeries`] sample vectors are skipped when off.
    pub fn with_series_recording(mut self, on: bool) -> Self {
        self.record_series = on;
        self
    }

    /// Enqueues a workload's arrivals. Accepts owned and borrowed
    /// submissions alike (`Vec<Submission>`, `&[Submission]`, any
    /// iterator of either), so drivers never clone a workload to feed
    /// the platform.
    pub fn enqueue_workload<I>(&mut self, workload: I)
    where
        I: IntoIterator,
        I::Item: Borrow<Submission>,
    {
        let workload = workload.into_iter();
        // Pre-size the queue from the workload length (exact for slices
        // and `Vec`s, a lower bound for lazy generators).
        self.queue.reserve(workload.size_hint().0);
        for sub in workload {
            let sub = *sub.borrow();
            self.queue.push(sub.at, Event::Arrival(sub));
        }
    }

    /// Processes one event; `false` when the queue is drained.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.queue.pop() else {
            return false;
        };
        self.handle(now, ev);
        true
    }

    /// Drains the event queue (the `while step() {}` loop external
    /// drivers used to hand-roll).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// **The** entry point for external drivers: enqueues `workload`,
    /// drains the event loop and reports. Equivalent to
    /// [`Self::enqueue_workload`] + [`Self::run_to_completion`] +
    /// [`Self::finalize`]; use those pieces directly only when stepping
    /// or inspecting mid-run state.
    pub fn run<I>(mut self, workload: I) -> RunReport
    where
        I: IntoIterator,
        I::Item: Borrow<Submission>,
    {
        self.enqueue_workload(workload);
        self.run_to_completion();
        self.finalize()
    }

    // ---- accessors (used by tests and examples) ---------------------------

    /// The deployed Virtual Clusters.
    pub fn vcs(&self) -> &[VirtualCluster] {
        &self.vcs
    }

    /// The private pool.
    pub fn pool(&self) -> &PrivatePool {
        &self.pool
    }

    /// The public clouds.
    pub fn clouds(&self) -> &[PublicCloud] {
        &self.clouds
    }

    /// The applications seen so far.
    pub fn apps(&self) -> &BTreeMap<AppId, Application> {
        &self.apps
    }

    /// The billing ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    // ---- event handling ----------------------------------------------------

    fn handle(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival(sub) => self.on_arrival(now, sub),
            Event::SubmitToFramework { app } => self.on_submit(now, app),
            Event::TransferVmStopped { app, vm } => self.on_transfer_stopped(now, app, vm),
            Event::TransferVmBooted { app, vm } => self.on_transfer_booted(now, app, vm),
            Event::CloudVmReady { app, vm } => self.on_cloud_ready(now, app, vm),
            Event::JobFinished { vc, job, epoch } => self.on_job_finished(now, vc, job, epoch),
            Event::ReturnVmStopped { ret, vm } => self.on_return_stopped(now, ret, vm),
            Event::ReturnVmBooted { ret, vm } => self.on_return_booted(now, ret, vm),
            Event::CloudVmReleased { cloud, vm } => self.on_cloud_released(now, cloud, vm),
            Event::ControllerCheck { app } => self.on_controller_check(now, app),
        }
    }

    fn sample(&mut self, model: LatencyModel) -> meryn_sim::SimDuration {
        model.sample(&mut self.lat_rng)
    }

    // ---- scratch buffers ---------------------------------------------------
    //
    // The acquisition→dispatch→return cycle shuttles short VM lists
    // around on every event. Both list kinds are pooled: a consumer
    // that finishes with a buffer hands it back cleared, so steady
    // state performs no allocation at all.

    fn take_vm_buf(&mut self) -> Vec<VmId> {
        self.vm_bufs.pop().unwrap_or_default()
    }

    fn recycle_vm_buf(&mut self, mut buf: Vec<VmId>) {
        buf.clear();
        self.vm_bufs.push(buf);
    }

    fn take_stint_buf(&mut self) -> Vec<(VmId, Location, VmRate)> {
        self.stint_bufs.pop().unwrap_or_default()
    }

    fn recycle_stint_buf(&mut self, mut buf: Vec<(VmId, Location, VmRate)>) {
        buf.clear();
        self.stint_bufs.push(buf);
    }

    /// Front-end delay for one submission: the Client Manager handling
    /// time plus, when Client Managers are a bounded resource, the wait
    /// for one to become free. The busiest-period behaviour §3.2 warns
    /// about emerges when a single CM serializes a burst of arrivals.
    fn cm_delay(
        &mut self,
        now: SimTime,
        handling: meryn_sim::SimDuration,
    ) -> meryn_sim::SimDuration {
        if self.cm_free_at.is_empty() {
            return handling; // unbounded front end
        }
        let idx = self
            .cm_free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one Client Manager");
        let start = self.cm_free_at[idx].max_of(now);
        let done = start + handling;
        self.cm_free_at[idx] = done;
        done.since(now)
    }

    fn on_arrival(&mut self, now: SimTime, sub: Submission) {
        let max_vms = self.cfg.private_capacity;
        let admitted = admit(
            &sub,
            &self.vcs,
            now,
            self.cfg.quote_speed,
            self.cfg.processing_allowance,
            self.cfg.max_negotiation_rounds,
            max_vms,
        );
        let (vc_id, spec, contract, rounds) = match admitted {
            Ok(x) => x,
            Err(_) => {
                self.rejected += 1;
                return;
            }
        };

        let quoted_exec = self.vcs[vc_id.0]
            .framework
            .estimate_exec(&spec, spec.nb_vms(), self.cfg.quote_speed, true)
            .expect("admission type-checked the spec");

        let app_id = AppId(self.next_app);
        self.next_app += 1;

        let req = BidRequest {
            nb_vms: spec.nb_vms(),
            duration: quoted_exec + self.cfg.processing_allowance,
        };
        let decision = select_resources(
            self.placement.as_ref(),
            self.bidding.as_ref(),
            vc_id,
            &self.vcs,
            &self.apps,
            &self.clouds,
            req,
            now,
            ProtocolParams {
                storage_rate: self.cfg.storage_rate,
                suspension_enabled: self.cfg.suspension_enabled,
                private_cost: self.cfg.private_cost,
            },
        );

        let placement = match decision {
            Decision::Local | Decision::Queue => Placement::Local,
            Decision::LocalAfterSuspension { .. } => Placement::LocalAfterSuspension,
            Decision::FromVc { src } => Placement::VcVms { from: src },
            Decision::FromVcAfterSuspension { src, .. } => {
                Placement::VcVmsAfterSuspension { from: src }
            }
            Decision::Cloud { cloud, .. } => Placement::Cloud { cloud },
        };

        self.apps.insert(
            app_id,
            Application {
                id: app_id,
                vc: vc_id,
                spec,
                contract,
                times: AppTimes::submitted(now, quoted_exec, contract.terms.deadline),
                job: None,
                placement,
                phase: AppPhase::Acquiring,
                framework_submitted_at: None,
                cost: Money::ZERO,
                negotiation_rounds: rounds,
                suspensions: 0,
                violation_detected: None,
            },
        );

        let handling = self.sample(self.cfg.latencies.base);
        let base = self.cm_delay(now, handling);
        let nb = spec.nb_vms();

        match decision {
            Decision::Local => {
                let mut vms = self.take_vm_buf();
                self.vcs[vc_id.0]
                    .framework
                    .idle_slaves_into(nb as usize, &mut vms);
                assert_eq!(
                    vms.len() as u64,
                    nb,
                    "Local decision implies enough idle VMs"
                );
                for &vm in &vms {
                    self.vcs[vc_id.0]
                        .framework
                        .reserve_slave(vm)
                        .expect("idle slave is reservable");
                }
                self.acquired.insert(app_id, vms);
                self.queue
                    .push(now + base, Event::SubmitToFramework { app: app_id });
            }
            Decision::Queue => {
                // Nothing can provide VMs now: hand to the framework and
                // let FIFO/backfill handle it when capacity frees up.
                self.queue
                    .push(now + base, Event::SubmitToFramework { app: app_id });
            }
            Decision::LocalAfterSuspension { victim } => {
                let freed = self.suspend_app(now, vc_id, victim);
                assert!(freed.len() as u64 >= nb);
                self.lendings.insert(app_id, Lending { src: vc_id, victim });
                let mut vms = self.take_vm_buf();
                vms.extend(freed.into_iter().take(nb as usize));
                for &vm in &vms {
                    self.vcs[vc_id.0]
                        .framework
                        .reserve_slave(vm)
                        .expect("freed slave is reservable");
                }
                self.acquired.insert(app_id, vms);
                let extra = self.sample(self.cfg.latencies.suspend_local);
                self.queue
                    .push(now + base + extra, Event::SubmitToFramework { app: app_id });
            }
            Decision::FromVc { src } => {
                self.transfers += nb;
                let mut victims = self.take_vm_buf();
                self.vcs[src.0]
                    .framework
                    .idle_slaves_into(nb as usize, &mut victims);
                assert_eq!(victims.len() as u64, nb, "zero bid implies enough idle VMs");
                self.begin_transfer_stops(now, app_id, &victims, base, None);
                self.recycle_vm_buf(victims);
            }
            Decision::FromVcAfterSuspension { src, victim } => {
                let freed = self.suspend_app(now, src, victim);
                assert!(
                    freed.len() as u64 >= nb,
                    "victim must hold at least the requested VMs"
                );
                self.lendings.insert(app_id, Lending { src, victim });
                let extra = self.sample(self.cfg.latencies.suspend_remote);
                let mut take = self.take_vm_buf();
                take.extend(freed.into_iter().take(nb as usize));
                self.begin_transfer_stops(now, app_id, &take, base, Some(extra));
                self.recycle_vm_buf(take);
            }
            Decision::Cloud { cloud, .. } => {
                self.bursts += nb;
                let vc_image = self.vcs[vc_id.0].image;
                let spec_shape = self.cfg.vm_spec;
                let c = &mut self.clouds[cloud.0 as usize];
                let speed = c.speed();
                let mut vms = Vec::with_capacity(nb as usize);
                for _ in 0..nb {
                    let (vm, prov, rate) = c
                        .begin_lease(vc_image, spec_shape, now)
                        .expect("protocol only offers clouds that can lease");
                    self.queue
                        .push(now + base + prov, Event::CloudVmReady { app: app_id, vm });
                    vms.push((vm, rate));
                }
                self.pending.insert(
                    app_id,
                    PendingAcquisition::CloudLease {
                        cloud,
                        awaiting: nb,
                        vms,
                        speed,
                        existing_job: None,
                    },
                );
            }
        }

        if let Some(interval) = self.cfg.controller_check_interval {
            self.queue
                .push(now + interval, Event::ControllerCheck { app: app_id });
        }
    }

    /// Removes `vms` from their VC and begins stopping them in the pool;
    /// each stop chains into a boot with the destination VC's image.
    fn begin_transfer_stops(
        &mut self,
        now: SimTime,
        app: AppId,
        vms: &[VmId],
        base: meryn_sim::SimDuration,
        extra: Option<meryn_sim::SimDuration>,
    ) {
        let src_vc = self.apps[&app].placement;
        let src = match src_vc {
            Placement::VcVms { from } | Placement::VcVmsAfterSuspension { from } => from,
            _ => unreachable!("transfer only for vc placements"),
        };
        let lead = base + extra.unwrap_or(meryn_sim::SimDuration::ZERO);
        for &vm in vms {
            self.vcs[src.0]
                .remove_slave(vm)
                .expect("transfer candidates are idle slaves");
            let stop = self
                .pool
                .begin_stop(vm, now)
                .expect("idle private slave can stop");
            self.queue
                .push(now + lead + stop, Event::TransferVmStopped { app, vm });
        }
        let collect = self.take_vm_buf();
        self.pending.insert(
            app,
            PendingAcquisition::Transfer {
                awaiting: vms.len() as u64,
                vms: collect,
            },
        );
    }

    /// Suspends `victim` (running in `vc`), holding it for later
    /// requeue. Returns the freed VMs.
    fn suspend_app(&mut self, now: SimTime, vc: VcId, victim: AppId) -> Vec<VmId> {
        let job = self.apps[&victim].job.expect("running victim has a job");
        let closed = self.close_stint(now, vc, job);
        self.recycle_stint_buf(closed);
        let freed = self.vcs[vc.0]
            .framework
            .suspend_and_hold(job, now)
            .expect("protocol only suspends running jobs");
        let app = self.apps.get_mut(&victim).expect("victim exists");
        app.times.suspend(now);
        app.suspensions += 1;
        self.suspensions += 1;
        freed
    }

    /// Closes a job's execution stint: bills each VM interval and
    /// updates the used-VM series. Returns the stint's VMs.
    fn close_stint(&mut self, now: SimTime, vc: VcId, job: JobId) -> Vec<(VmId, Location, VmRate)> {
        let stint = self
            .stints
            .remove(&(vc, job))
            .expect("running job has an open stint");
        let app_id = self.vcs[vc.0].app_of(job);
        let mut total = Money::ZERO;
        for &(vm, loc, rate) in &stint.vms {
            total += self.ledger.charge(vm, loc, stint.started, now, rate);
            match loc {
                Location::Private => self.busy_private -= 1,
                Location::Cloud(_) => self.busy_cloud -= 1,
            }
        }
        self.apps.get_mut(&app_id).expect("app exists").cost += total;
        self.record_usage(now);
        stint.vms
    }

    fn record_usage(&mut self, now: SimTime) {
        // Commit the previous instant's *final* values into the peaks
        // before observing a new instant; a same-instant re-record
        // overwrites the pending observation instead, exactly like the
        // step series coalesces same-instant samples. (An intra-instant
        // transient — busy rising then falling within one event
        // cascade — must not register as a peak.)
        if now > self.usage_at {
            self.peak_busy_private = self.peak_busy_private.max(self.usage_private);
            self.peak_busy_cloud = self.peak_busy_cloud.max(self.usage_cloud);
            self.usage_at = now;
        }
        self.usage_private = self.busy_private;
        self.usage_cloud = self.busy_cloud;
        if self.record_series {
            self.used_private.record(now, self.busy_private as f64);
            self.used_cloud.record(now, self.busy_cloud as f64);
        }
    }

    fn on_submit(&mut self, now: SimTime, app_id: AppId) {
        match self.acquired.remove(&app_id) {
            Some(vms) => self.submit_pinned_now(now, app_id, vms),
            None => self.submit_queued(now, app_id),
        }
    }

    /// Hands the job to the framework queue (Queue decisions: no VMs
    /// were acquired for it; it waits its FIFO turn).
    fn submit_queued(&mut self, now: SimTime, app_id: AppId) {
        let (vc_id, spec) = {
            let app = &self.apps[&app_id];
            (app.vc, app.spec)
        };
        let job = self.vcs[vc_id.0]
            .framework
            .submit(spec, now)
            .expect("admission type-checked the spec");
        self.vcs[vc_id.0].job_to_app.insert(job, app_id);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.job = Some(job);
        app.framework_submitted_at = Some(now);
        app.phase = AppPhase::Submitted;
        self.dispatch(now, vc_id);
    }

    /// Starts the job immediately on the exact VMs Algorithm 1 acquired
    /// for it — transferred, lent, leased or locally reserved VMs are
    /// dedicated to the requesting application.
    fn submit_pinned_now(&mut self, now: SimTime, app_id: AppId, vms: Vec<VmId>) {
        let (vc_id, spec) = {
            let app = &self.apps[&app_id];
            (app.vc, app.spec)
        };
        let (job, dispatch) = self.vcs[vc_id.0]
            .framework
            .submit_pinned(spec, &vms, now)
            .expect("acquired VMs are idle slaves of the right framework");
        self.recycle_vm_buf(vms);
        self.vcs[vc_id.0].job_to_app.insert(job, app_id);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.job = Some(job);
        app.framework_submitted_at = Some(now);
        app.phase = AppPhase::Submitted;
        self.register_dispatch(now, vc_id, dispatch);
    }

    /// Lets a VC's framework start whatever fits and schedules the
    /// predicted completions.
    fn dispatch(&mut self, now: SimTime, vc_id: VcId) {
        let dispatches = self.vcs[vc_id.0].framework.try_dispatch(now);
        for d in dispatches {
            self.register_dispatch(now, vc_id, d);
        }
    }

    /// Records one job start: billing stint, used-VM series, Fig. 4
    /// times, and the predicted completion event.
    fn register_dispatch(&mut self, now: SimTime, vc_id: VcId, d: meryn_frameworks::Dispatch) {
        let app_id = self.vcs[vc_id.0].app_of(d.job);
        let mut vms = self.take_stint_buf();
        vms.extend(d.vms.iter().map(|vm| {
            let meta = self.vcs[vc_id.0]
                .slave_meta
                .get(vm)
                .expect("dispatched slave has meta");
            (*vm, meta.location, meta.cost_rate)
        }));
        for &(_, loc, _) in &vms {
            match loc {
                Location::Private => self.busy_private += 1,
                Location::Cloud(_) => self.busy_cloud += 1,
            }
        }
        self.record_usage(now);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.times.start(now);
        let done = app.times.progress_t(now);
        app.times.set_exec_t(done + d.exec_total);
        self.stints
            .insert((vc_id, d.job), Stint { started: now, vms });
        self.queue.push(
            d.finish_at,
            Event::JobFinished {
                vc: vc_id,
                job: d.job,
                epoch: d.epoch,
            },
        );
    }

    fn on_transfer_stopped(&mut self, now: SimTime, app: AppId, vm: VmId) {
        self.pool
            .complete_stop(vm, now)
            .expect("transfer stop completes");
        let image = self.vcs[self.apps[&app].vc.0].image;
        let (new_vm, boot) = self
            .pool
            .begin_start(image, now)
            .expect("the slot just freed");
        self.queue
            .push(now + boot, Event::TransferVmBooted { app, vm: new_vm });
    }

    fn on_transfer_booted(&mut self, now: SimTime, app: AppId, vm: VmId) {
        self.pool
            .complete_start(vm, now)
            .expect("transfer boot completes");
        let done = {
            let pending = self.pending.get_mut(&app).expect("transfer in flight");
            match pending {
                PendingAcquisition::Transfer { awaiting, vms } => {
                    vms.push(vm);
                    *awaiting -= 1;
                    *awaiting == 0
                }
                _ => unreachable!("transfer event for non-transfer pending"),
            }
        };
        if done {
            let Some(PendingAcquisition::Transfer { vms, .. }) = self.pending.remove(&app) else {
                unreachable!("just matched")
            };
            let vc_id = self.apps[&app].vc;
            let rate = self.cfg.private_cost;
            for &vm in &vms {
                self.vcs[vc_id.0]
                    .add_slave(vm, 1.0, Location::Private, rate)
                    .expect("fresh transferred slave is unique");
            }
            self.submit_pinned_now(now, app, vms);
        }
    }

    fn on_cloud_ready(&mut self, now: SimTime, app: AppId, vm: VmId) {
        let done = {
            let pending = self.pending.get_mut(&app).expect("lease in flight");
            match pending {
                PendingAcquisition::CloudLease {
                    cloud, awaiting, ..
                } => {
                    let c = &mut self.clouds[cloud.0 as usize];
                    c.complete_lease(vm, now).expect("lease completes");
                    *awaiting -= 1;
                    *awaiting == 0
                }
                _ => unreachable!("cloud event for non-cloud pending"),
            }
        };
        if done {
            let Some(PendingAcquisition::CloudLease {
                cloud,
                vms,
                speed,
                existing_job,
                ..
            }) = self.pending.remove(&app)
            else {
                unreachable!("just matched")
            };
            let vc_id = self.apps[&app].vc;
            let mut ids = self.take_vm_buf();
            ids.extend(vms.iter().map(|&(vm, _)| vm));
            for (vm, rate) in vms {
                self.vcs[vc_id.0]
                    .add_slave(vm, speed, Location::Cloud(cloud), rate)
                    .expect("fresh leased slave is unique");
            }
            match existing_job {
                None => self.submit_pinned_now(now, app, ids),
                Some(job) => {
                    // SLA escalation: the job already exists and was
                    // withdrawn from the queue; start it on the leases.
                    let dispatch = self.vcs[vc_id.0]
                        .framework
                        .start_withdrawn_pinned(job, &ids, now)
                        .expect("withdrawn job starts on its leases");
                    self.recycle_vm_buf(ids);
                    self.register_dispatch(now, vc_id, dispatch);
                }
            }
        }
    }

    fn on_job_finished(&mut self, now: SimTime, vc_id: VcId, job: JobId, epoch: u64) {
        let done = self.vcs[vc_id.0]
            .framework
            .on_finished(job, epoch, now)
            .expect("job known to its framework");
        if done.is_none() {
            return; // stale completion: the job was suspended meanwhile
        }
        let app_id = self.vcs[vc_id.0].app_of(job);
        let stint_vms = self.close_stint(now, vc_id, job);

        {
            let app = self.apps.get_mut(&app_id).expect("app exists");
            // Bank the final stint's progress, then mark completion.
            app.times.suspend(now);
            app.phase = AppPhase::Completed { at: now };
        }

        match self.apps[&app_id].placement {
            Placement::Cloud { cloud } => {
                for (vm, _, _) in &stint_vms {
                    self.vcs[vc_id.0]
                        .remove_slave(*vm)
                        .expect("finished job's slaves are idle");
                    let rel = self.clouds[cloud.0 as usize]
                        .begin_release(*vm, now)
                        .expect("leased VM can release");
                    self.queue
                        .push(now + rel, Event::CloudVmReleased { cloud, vm: *vm });
                }
            }
            Placement::LocalAfterSuspension => {
                let lending = self
                    .lendings
                    .remove(&app_id)
                    .expect("local suspension recorded a lending");
                let victim_job = self.apps[&lending.victim]
                    .job
                    .expect("held victim has a job");
                self.vcs[vc_id.0]
                    .framework
                    .requeue_held(victim_job)
                    .expect("victim was held");
            }
            Placement::VcVmsAfterSuspension { from } => {
                let lending = self
                    .lendings
                    .remove(&app_id)
                    .expect("vc suspension recorded a lending");
                debug_assert_eq!(lending.src, from);
                let ret = self.next_return;
                self.next_return += 1;
                for (vm, _, _) in &stint_vms {
                    self.vcs[vc_id.0]
                        .remove_slave(*vm)
                        .expect("finished job's slaves are idle");
                    let stop = self
                        .pool
                        .begin_stop(*vm, now)
                        .expect("borrowed private VM can stop");
                    self.queue
                        .push(now + stop, Event::ReturnVmStopped { ret, vm: *vm });
                }
                self.returns.insert(
                    ret,
                    ReturnOp {
                        src: from,
                        victim: lending.victim,
                        awaiting: stint_vms.len() as u64,
                        vms: Vec::with_capacity(stint_vms.len()),
                    },
                );
            }
            Placement::Local | Placement::VcVms { .. } => {}
        }
        self.recycle_stint_buf(stint_vms);
        self.dispatch(now, vc_id);
    }

    fn on_return_stopped(&mut self, now: SimTime, ret: u64, vm: VmId) {
        self.pool
            .complete_stop(vm, now)
            .expect("return stop completes");
        let src = self.returns[&ret].src;
        let image = self.vcs[src.0].image;
        let (new_vm, boot) = self
            .pool
            .begin_start(image, now)
            .expect("the slot just freed");
        self.queue
            .push(now + boot, Event::ReturnVmBooted { ret, vm: new_vm });
    }

    fn on_return_booted(&mut self, now: SimTime, ret: u64, vm: VmId) {
        self.pool
            .complete_start(vm, now)
            .expect("return boot completes");
        let done = {
            let op = self.returns.get_mut(&ret).expect("return in flight");
            op.vms.push(vm);
            op.awaiting -= 1;
            op.awaiting == 0
        };
        if done {
            let op = self.returns.remove(&ret).expect("just checked");
            let rate = self.cfg.private_cost;
            for vm in op.vms {
                self.vcs[op.src.0]
                    .add_slave(vm, 1.0, Location::Private, rate)
                    .expect("fresh returned slave is unique");
            }
            let victim_job = self.apps[&op.victim].job.expect("held victim has a job");
            self.vcs[op.src.0]
                .framework
                .requeue_held(victim_job)
                .expect("victim was held");
            self.dispatch(now, op.src);
        }
    }

    fn on_cloud_released(&mut self, now: SimTime, cloud: CloudId, vm: VmId) {
        let close = self.clouds[cloud.0 as usize]
            .complete_release(vm, now)
            .expect("release completes");
        self.cloud_bill += close.cost;
    }

    /// Attempts the [`ViolationPolicy::EscalateToCloud`] action: pull the
    /// application's waiting job out of the framework queue and burst it
    /// to the cheapest cloud. Returns `false` when the application is
    /// not actually waiting in a queue (still acquiring, running, held
    /// for lending, or already escalated) or no cloud can serve it.
    fn try_escalate_to_cloud(&mut self, now: SimTime, app_id: AppId) -> bool {
        let (vc_id, spec, job) = {
            let app = &self.apps[&app_id];
            (app.vc, app.spec, app.job)
        };
        let Some(job) = job else {
            return false; // submission pipeline still in flight
        };
        if self.pending.contains_key(&app_id) {
            return false; // an acquisition (or escalation) is in flight
        }
        let nb = spec.nb_vms();
        let offer = self
            .clouds
            .iter()
            .filter(|c| c.can_lease(nb))
            .map(|c| (c.id, c.price_at(now)))
            .min_by_key(|&(_, r)| r);
        let Some((cloud, _)) = offer else {
            return false;
        };
        // `withdraw` fails exactly when the job is not waiting in the
        // queue — running, held for lending, or done.
        if self.vcs[vc_id.0].framework.withdraw(job).is_err() {
            return false;
        }
        self.bursts += nb;
        self.escalations += 1;
        let image = self.vcs[vc_id.0].image;
        let shape = self.cfg.vm_spec;
        let c = &mut self.clouds[cloud.0 as usize];
        let speed = c.speed();
        let mut vms = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            let (vm, prov, rate) = c
                .begin_lease(image, shape, now)
                .expect("can_lease checked above");
            self.queue
                .push(now + prov, Event::CloudVmReady { app: app_id, vm });
            vms.push((vm, rate));
        }
        self.pending.insert(
            app_id,
            PendingAcquisition::CloudLease {
                cloud,
                awaiting: nb,
                vms,
                speed,
                existing_job: Some(job),
            },
        );
        self.apps.get_mut(&app_id).expect("app exists").placement = Placement::Cloud { cloud };
        true
    }

    fn on_controller_check(&mut self, now: SimTime, app_id: AppId) {
        let Some(interval) = self.cfg.controller_check_interval else {
            return;
        };
        let app = self.apps.get_mut(&app_id).expect("app exists");
        if app.is_completed() {
            return; // controller retires with its application
        }
        let status = violation::check(&app.contract, &app.times, now);
        if status.needs_attention()
            && self.cfg.violation_policy == crate::config::ViolationPolicy::EscalateToCloud
            && self.try_escalate_to_cloud(now, app_id)
        {
            // Escalated: a fresh completion prediction is coming; keep
            // monitoring.
            self.queue
                .push(now + interval, Event::ControllerCheck { app: app_id });
            return;
        }
        let app = self.apps.get_mut(&app_id).expect("app exists");
        if status.is_violated() {
            // Report once and retire: the violation is now the Cluster
            // Manager's problem (§3.3) — and a never-completing job must
            // not keep the event loop alive forever.
            if app.violation_detected.is_none() {
                app.violation_detected = Some(now);
            }
            return;
        }
        self.queue
            .push(now + interval, Event::ControllerCheck { app: app_id });
    }

    // ---- reporting ---------------------------------------------------------

    /// Builds the final report. Consumes the platform.
    pub fn finalize(self) -> RunReport {
        let mut records = Vec::with_capacity(self.apps.len());
        let mut completion = SimTime::ZERO;
        for app in self.apps.values() {
            if let Some(at) = app.completed_at() {
                completion = completion.max_of(at);
            }
            records.push(AppRecord {
                id: app.id,
                vc: app.vc,
                vc_name: self.vcs[app.vc.0].name.clone(),
                placement: app.placement.table1_case().to_owned(),
                submitted: app.contract.agreed_at,
                framework_submitted: app.framework_submitted_at,
                completed: app.completed_at(),
                processing: app.processing_time(),
                exec: app.exec_duration(),
                cost: app.cost,
                price: app.contract.terms.price,
                revenue: app.revenue().unwrap_or(Money::ZERO),
                penalty: app.penalty().unwrap_or(Money::ZERO),
                violated: app.violated(),
                suspensions: app.suspensions,
                negotiation_rounds: app.negotiation_rounds,
            });
        }
        // Fold the still-pending last observation into the peaks.
        let peak_private = self.peak_busy_private.max(self.usage_private) as f64;
        let peak_cloud = self.peak_busy_cloud.max(self.usage_cloud) as f64;
        let mut series = SeriesSet::new();
        series.add(self.used_private);
        series.add(self.used_cloud);
        RunReport {
            mode: self.cfg.policy.clone(),
            seed: self.cfg.seed,
            apps: records,
            rejected: self.rejected,
            completion_time: completion,
            series,
            peak_private,
            peak_cloud,
            transfers: self.transfers,
            bursts: self.bursts,
            suspensions: self.suspensions,
            escalations: self.escalations,
            cloud_bill: self.cloud_bill,
            events_processed: self.queue.events_processed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlatformConfig, VcConfig};
    use meryn_frameworks::{JobSpec, ScalingLaw};
    use meryn_sim::SimDuration;
    use meryn_sla::negotiation::UserStrategy;
    use meryn_workloads::{Submission, VcTarget};

    fn batch_sub(at_secs: u64, vc: usize, work_secs: u64) -> Submission {
        Submission::new(
            SimTime::from_secs(at_secs),
            VcTarget::Index(vc),
            JobSpec::Batch {
                work: SimDuration::from_secs(work_secs),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            },
            UserStrategy::AcceptCheapest,
        )
    }

    fn small_cfg(policy: &str) -> PlatformConfig {
        let mut cfg = PlatformConfig::paper(policy);
        cfg.private_capacity = 4;
        cfg.vcs = vec![VcConfig::batch("VC1", 2), VcConfig::batch("VC2", 2)];
        cfg
    }

    #[test]
    fn single_app_runs_locally() {
        let cfg = small_cfg("meryn");
        let report = Platform::new(cfg).run([batch_sub(5, 0, 100)]);
        assert_eq!(report.apps.len(), 1);
        let a = &report.apps[0];
        assert_eq!(a.placement, "local-vm");
        assert!(!a.violated);
        // Processing 7–15 s, exec 100 s.
        let p = a.processing.unwrap();
        assert!(p >= SimDuration::from_secs(7) && p <= SimDuration::from_secs(15));
        assert_eq!(a.exec, SimDuration::from_secs(100));
        // Cost: 100 s × 1 VM × 2 u/s.
        assert_eq!(a.cost, Money::from_units(200));
        assert_eq!(report.violations(), 0);
        assert_eq!(report.transfers, 0);
        assert_eq!(report.bursts, 0);
    }

    #[test]
    fn overflow_takes_sibling_idle_vms_in_meryn() {
        let cfg = small_cfg("meryn");
        // Three apps to VC1 (2 slots): the third gets VC2's idle VM.
        let subs = vec![
            batch_sub(5, 0, 500),
            batch_sub(10, 0, 500),
            batch_sub(15, 0, 500),
        ];
        let report = Platform::new(cfg).run(&subs);
        assert_eq!(report.apps.len(), 3);
        assert_eq!(report.transfers, 1);
        assert_eq!(report.bursts, 0);
        let third = &report.apps[2];
        assert_eq!(third.placement, "vc-vm");
        // Transfer path processing: base + stop + boot ≈ 40–58 s.
        let p = third.processing.unwrap();
        assert!(
            p >= SimDuration::from_secs(35) && p <= SimDuration::from_secs(65),
            "vc-vm processing out of calibrated range: {p}"
        );
        assert_eq!(report.violations(), 0);
    }

    #[test]
    fn overflow_bursts_to_cloud_in_static() {
        let cfg = small_cfg("static");
        let subs = vec![
            batch_sub(5, 0, 500),
            batch_sub(10, 0, 500),
            batch_sub(15, 0, 500),
        ];
        let report = Platform::new(cfg).run(&subs);
        assert_eq!(report.transfers, 0);
        assert_eq!(report.bursts, 1);
        let third = &report.apps[2];
        assert_eq!(third.placement, "cloud-vm");
        let p = third.processing.unwrap();
        assert!(
            p >= SimDuration::from_secs(60) && p <= SimDuration::from_secs(84),
            "cloud processing out of Table 1 range: {p}"
        );
        // Cloud cost: exec ≈ 500/0.928 ≈ 539 s at 4 u/s.
        assert!(third.cost > Money::from_units(2000));
        assert_eq!(report.violations(), 0);
        assert_eq!(report.peak_cloud, 1.0);
    }

    #[test]
    fn cloud_vms_are_released_after_completion() {
        let cfg = small_cfg("static");
        let subs = vec![
            batch_sub(5, 0, 300),
            batch_sub(10, 0, 300),
            batch_sub(15, 0, 300),
        ];
        let mut platform = Platform::new(cfg);
        platform.enqueue_workload(&subs);
        while platform.step() {}
        assert_eq!(platform.clouds()[0].active_count(), 0);
        let report = platform.finalize();
        assert!(report.cloud_bill > Money::ZERO);
        // The series returns to zero at the end.
        assert_eq!(report.series.get(1).last(), 0.0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let subs: Vec<Submission> = (0..8)
            .map(|i| batch_sub(5 + i * 5, (i % 2) as usize, 400))
            .collect();
        let r1 = Platform::new(small_cfg("meryn")).run(&subs);
        let r2 = Platform::new(small_cfg("meryn")).run(&subs);
        assert_eq!(
            serde_json::to_string(&r1).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    #[test]
    fn different_seeds_change_latencies_not_outcomes() {
        let subs = vec![batch_sub(5, 0, 100)];
        let r1 = Platform::new(small_cfg("meryn").with_seed(1)).run(&subs);
        let r2 = Platform::new(small_cfg("meryn").with_seed(2)).run(&subs);
        assert_eq!(r1.apps[0].placement, r2.apps[0].placement);
        assert_eq!(r1.apps[0].exec, r2.apps[0].exec);
        assert_ne!(r1.apps[0].processing, r2.apps[0].processing);
    }

    #[test]
    fn suspension_lending_roundtrip() {
        // One VC, one VM, no clouds. App A (generous deadline) runs;
        // app B arrives and the only option is suspending A. When B
        // finishes, A resumes and completes.
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.private_capacity = 1;
        cfg.vcs = vec![VcConfig::batch("VC1", 1)];
        cfg.clouds.clear();
        let subs = vec![
            Submission::new(
                SimTime::from_secs(5),
                VcTarget::Index(0),
                JobSpec::Batch {
                    work: SimDuration::from_secs(500),
                    nb_vms: 1,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::ImposeDeadline {
                    deadline: SimDuration::from_secs(50_000),
                    concession_pct: 10,
                },
            ),
            batch_sub(40, 0, 100),
        ];
        let report = Platform::new(cfg).run(&subs);
        assert_eq!(report.apps.len(), 2);
        assert_eq!(report.suspensions, 1);
        let a = &report.apps[0];
        let b = &report.apps[1];
        assert_eq!(b.placement, "local-vm after suspension");
        assert_eq!(a.suspensions, 1);
        // Both completed; A's exec time is still ~500 s of work.
        assert!(a.completed.is_some());
        assert!(b.completed.is_some());
        assert_eq!(a.exec, SimDuration::from_secs(500));
        // A had a generous deadline: no violation.
        assert_eq!(report.violations(), 0);
        // B finished before A.
        assert!(b.completed.unwrap() < a.completed.unwrap());
    }

    #[test]
    fn queue_decision_when_no_capacity_anywhere() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.private_capacity = 1;
        cfg.vcs = vec![VcConfig::batch("VC1", 1)];
        cfg.clouds.clear();
        // Two tight-deadline apps: suspension of the first would be
        // pointless (no bid beats... there is no cloud, but suspension
        // bid exists) — use nb_vms = 2 for the second so nothing can
        // hold it and it queues.
        let subs = vec![
            batch_sub(5, 0, 300),
            Submission::new(
                SimTime::from_secs(10),
                VcTarget::Index(0),
                JobSpec::Batch {
                    work: SimDuration::from_secs(100),
                    nb_vms: 2,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            ),
        ];
        let report = Platform::new(cfg).run(&subs);
        // The 2-VM app can never run (only 1 VM exists) and waits in the
        // framework forever; the run still terminates with it queued.
        assert_eq!(report.apps.len(), 2);
        assert!(report.apps[0].completed.is_some());
        assert!(report.apps[1].completed.is_none());
    }

    #[test]
    fn ledger_matches_app_costs() {
        let cfg = small_cfg("meryn");
        let subs = vec![batch_sub(5, 0, 200), batch_sub(10, 1, 200)];
        let mut platform = Platform::new(cfg);
        platform.enqueue_workload(&subs);
        while platform.step() {}
        let ledger_total = platform.ledger().total();
        let report = platform.finalize();
        assert_eq!(report.total_cost(), ledger_total);
    }

    #[test]
    fn mapreduce_vc_hosts_mapreduce_jobs() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.private_capacity = 4;
        cfg.vcs = vec![VcConfig::batch("batch", 2), VcConfig::mapreduce("mr", 2)];
        let sub = Submission::new(
            SimTime::from_secs(5),
            VcTarget::Index(1),
            JobSpec::MapReduce {
                map_tasks: 8,
                map_work: SimDuration::from_secs(30),
                reduce_tasks: 2,
                reduce_work: SimDuration::from_secs(60),
                nb_vms: 2,
                slots_per_vm: 2,
            },
            UserStrategy::AcceptCheapest,
        );
        let report = Platform::new(cfg).run([sub]);
        assert_eq!(report.apps.len(), 1);
        assert!(report.apps[0].completed.is_some());
        // 8 maps / 4 slots = 2 waves ×30 + 1 reduce wave ×60 = 120 s at
        // reference speed.
        assert_eq!(report.apps[0].exec, SimDuration::from_secs(120));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let cfg = small_cfg("meryn");
        let sub = Submission::new(
            SimTime::from_secs(5),
            VcTarget::Index(0),
            JobSpec::MapReduce {
                map_tasks: 1,
                map_work: SimDuration::from_secs(1),
                reduce_tasks: 0,
                reduce_work: SimDuration::ZERO,
                nb_vms: 1,
                slots_per_vm: 1,
            },
            UserStrategy::AcceptCheapest,
        );
        let report = Platform::new(cfg).run([sub]);
        assert_eq!(report.apps.len(), 0);
        assert_eq!(report.rejected, 1);
    }
}
