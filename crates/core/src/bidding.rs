//! Algorithm 2 — bid computation.
//!
//! When another Cluster Manager requests `nb_vms` for `duration`, a VC
//! answers with a **bid**: zero if it has idle VMs to spare, otherwise
//! the smallest estimated loss of revenue from suspending one of its
//! running applications for the duration. The loss is a minimal
//! suspension cost (data kept in storage while the VMs are lent) plus
//! the delay penalty of eq. 3 if the suspension eats through the
//! application's free time (Fig. 4).
//!
//! The computation uses only the VC's own SLA contracts and performance
//! models — this is the decentralization the paper leans on: no central
//! component ever needs a framework's internals.

use meryn_sim::{SimDuration, SimTime};
use meryn_sla::{Money, VmRate};

use crate::app::{AppMap, Application};
use crate::cluster_manager::VirtualCluster;
use crate::ids::AppId;

/// A request for VMs, as circulated by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BidRequest {
    /// VMs needed.
    pub nb_vms: u64,
    /// "The period during which the VMs are used and possibly given
    /// back" — we use the requester's conservative deadline horizon.
    pub duration: SimDuration,
}

/// A VC's answer to a bid request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bid {
    /// The VC has enough idle VMs: it can provide them at no cost.
    Free,
    /// The VC would have to suspend `victim`; doing so costs `cost` in
    /// expected lost revenue.
    Suspension {
        /// The cheapest application to suspend.
        victim: AppId,
        /// Estimated loss of revenue.
        cost: Money,
    },
    /// The VC cannot provide the requested VMs at all (no idle VMs and
    /// no running application holds enough).
    Unable,
}

impl Bid {
    /// The monetary amount of the bid; `None` when unable.
    pub fn amount(&self) -> Option<Money> {
        match self {
            Bid::Free => Some(Money::ZERO),
            Bid::Suspension { cost, .. } => Some(*cost),
            Bid::Unable => None,
        }
    }

    /// True for the zero bid.
    pub fn is_free(&self) -> bool {
        matches!(self, Bid::Free)
    }
}

/// Computes this VC's bid for `req` (paper Algorithm 2).
///
/// `storage_rate` prices the minimal suspension cost: keeping one VM's
/// worth of application data staged for the lending duration.
pub fn compute_bid(
    vc: &VirtualCluster,
    apps: &AppMap,
    req: BidRequest,
    now: SimTime,
    storage_rate: VmRate,
) -> Bid {
    // "if available_vms > nb_vms then bid = 0"
    if vc.available() >= req.nb_vms {
        return Bid::Free;
    }
    let mut best: Option<(AppId, Money)> = None;
    for job in vc.framework.running_jobs() {
        // "selects only the running applications that hold a number of
        // VMs greater or equal to the requested VMs".
        if job.nb_vms() < req.nb_vms {
            continue;
        }
        let app_id = vc.app_of(job.id);
        let app = &apps[&app_id];
        // Cloud-hosted applications are never suspension victims:
        // their VMs are leased, so "freeing" them provides no private
        // capacity and keeps the meter running on idle leases.
        if !app.placement.is_private() {
            continue;
        }
        let cost = suspension_cost(app, req, now, storage_rate);
        let better = match best {
            None => true,
            Some((_, c)) => cost < c,
        };
        if better {
            best = Some((app_id, cost));
        }
    }
    match best {
        Some((victim, cost)) => Bid::Suspension { victim, cost },
        None => Bid::Unable,
    }
}

/// The estimated cost of suspending `app` for `req.duration` starting
/// now: minimal suspension cost plus (if the free time is shorter than
/// the duration) the eq. 3 delay penalty.
pub fn suspension_cost(
    app: &Application,
    req: BidRequest,
    now: SimTime,
    storage_rate: VmRate,
) -> Money {
    let min_suspension = storage_rate.cost_for(req.duration);
    let free = app.times.free_t(now);
    if free > req.duration {
        return min_suspension;
    }
    let delay = app.times.delay_if_suspended(now, req.duration);
    let penalty = app.contract.pricing.delay_penalty(
        delay,
        app.contract.terms.nb_vms,
        app.contract.terms.price,
    );
    min_suspension + penalty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppPhase;
    use crate::ids::{Placement, VcId};
    use meryn_frameworks::{BatchFramework, FrameworkKind, JobSpec, ScalingLaw};
    use meryn_sla::pricing::PricingParams;
    use meryn_sla::{AppTimes, SlaContract, SlaTerms};
    use meryn_vmm::{HostTag, ImageId, Location, VmId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    fn pricing() -> PricingParams {
        PricingParams::new(VmRate::per_vm_second(4), 1)
    }

    /// A VC with `slaves` slave VMs and one running app per entry in
    /// `running`, each holding (nb_vms, deadline_secs) and started at 0.
    fn vc_with_running(slaves: u64, running: &[(u64, u64)]) -> (VirtualCluster, AppMap) {
        let mut vc = VirtualCluster::new(
            VcId(1),
            "VC2",
            FrameworkKind::Batch,
            ImageId(0),
            Box::new(BatchFramework::new()),
            pricing(),
        );
        for i in 0..slaves {
            vc.add_slave(vid(i), 1.0, Location::Private, VmRate::per_vm_second(2))
                .unwrap();
        }
        let mut apps = AppMap::default();
        for (i, &(nb_vms, deadline)) in running.iter().enumerate() {
            let spec = JobSpec::Batch {
                work: d(1000),
                nb_vms,
                scaling: ScalingLaw::Fixed,
            };
            let job = vc.framework.submit(spec, t(0)).unwrap();
            let dispatched = vc.framework.try_dispatch(t(0));
            assert!(
                dispatched.iter().any(|x| x.job == job),
                "fixture job must start"
            );
            let app_id = AppId(i as u64);
            vc.job_to_app.insert(job, app_id);
            let terms = SlaTerms::new(d(deadline), Money::from_units(4000), nb_vms);
            let mut times = AppTimes::submitted(t(0), d(1000), d(deadline));
            times.start(t(0));
            apps.insert(
                app_id,
                Application {
                    id: app_id,
                    vc: VcId(1),
                    spec,
                    contract: SlaContract::sign(terms, t(0), pricing()),
                    times,
                    job: Some(job),
                    placement: Placement::Local,
                    phase: AppPhase::Submitted,
                    framework_submitted_at: Some(t(0)),
                    cost: Money::ZERO,
                    negotiation_rounds: 1,
                    suspensions: 0,
                    violation_detected: None,
                },
            );
        }
        (vc, apps)
    }

    const STORAGE: VmRate = VmRate::from_micro(500_000);

    #[test]
    fn idle_vms_bid_zero() {
        let (vc, apps) = vc_with_running(3, &[(1, 2000)]);
        // 3 slaves, 1 busy → 2 idle ≥ 1 requested.
        let bid = compute_bid(
            &vc,
            &apps,
            BidRequest {
                nb_vms: 1,
                duration: d(500),
            },
            t(100),
            STORAGE,
        );
        assert!(bid.is_free());
        assert_eq!(bid.amount(), Some(Money::ZERO));
    }

    #[test]
    fn reservation_blocks_free_bid() {
        let (mut vc, apps) = vc_with_running(3, &[(1, 2000)]);
        vc.reserved = 2;
        let bid = compute_bid(
            &vc,
            &apps,
            BidRequest {
                nb_vms: 1,
                duration: d(500),
            },
            t(100),
            STORAGE,
        );
        assert!(!bid.is_free(), "reserved VMs must not be re-promised");
    }

    #[test]
    fn generous_deadline_means_cheap_suspension() {
        // App with deadline 10000 s: free time ≈ 10000−1000 = 9000 s
        // at t=0, far above a 500 s lending → only storage cost.
        let (vc, apps) = vc_with_running(1, &[(1, 10_000)]);
        let req = BidRequest {
            nb_vms: 1,
            duration: d(500),
        };
        let bid = compute_bid(&vc, &apps, req, t(100), STORAGE);
        match bid {
            Bid::Suspension { victim, cost } => {
                assert_eq!(victim, AppId(0));
                assert_eq!(cost, STORAGE.cost_for(d(500))); // 250 u
            }
            other => panic!("expected suspension bid, got {other:?}"),
        }
    }

    #[test]
    fn tight_deadline_adds_delay_penalty() {
        // Deadline 1100 s: free ≈ 100 s at t=0; lending 500 s delays by
        // 400 s → penalty 400×1×4/1 = 1600 u + storage 250 u.
        let (vc, apps) = vc_with_running(1, &[(1, 1100)]);
        let req = BidRequest {
            nb_vms: 1,
            duration: d(500),
        };
        let bid = compute_bid(&vc, &apps, req, t(0), STORAGE);
        match bid {
            Bid::Suspension { cost, .. } => {
                assert_eq!(cost, Money::from_units(1600 + 250));
            }
            other => panic!("expected suspension bid, got {other:?}"),
        }
    }

    #[test]
    fn picks_cheapest_victim() {
        // Two candidates: tight deadline (expensive) and loose (cheap).
        let (vc, apps) = vc_with_running(2, &[(1, 1100), (1, 9000)]);
        let req = BidRequest {
            nb_vms: 1,
            duration: d(500),
        };
        let bid = compute_bid(&vc, &apps, req, t(0), STORAGE);
        match bid {
            Bid::Suspension { victim, .. } => assert_eq!(victim, AppId(1)),
            other => panic!("expected suspension bid, got {other:?}"),
        }
    }

    #[test]
    fn small_holders_cannot_serve_large_requests() {
        // One running app holding 1 VM; request needs 2 → unable.
        let (vc, apps) = vc_with_running(1, &[(1, 2000)]);
        let bid = compute_bid(
            &vc,
            &apps,
            BidRequest {
                nb_vms: 2,
                duration: d(500),
            },
            t(0),
            STORAGE,
        );
        assert_eq!(bid, Bid::Unable);
        assert_eq!(bid.amount(), None);
    }

    #[test]
    fn multi_vm_holder_serves_smaller_request() {
        let (vc, apps) = vc_with_running(4, &[(4, 9000)]);
        let bid = compute_bid(
            &vc,
            &apps,
            BidRequest {
                nb_vms: 2,
                duration: d(100),
            },
            t(0),
            STORAGE,
        );
        assert!(matches!(bid, Bid::Suspension { .. }));
    }

    #[test]
    fn longer_duration_never_cheapens_the_bid() {
        let (vc, apps) = vc_with_running(1, &[(1, 1500)]);
        let mut last = Money::ZERO;
        for dur in [100u64, 400, 800, 1600, 3200] {
            let bid = compute_bid(
                &vc,
                &apps,
                BidRequest {
                    nb_vms: 1,
                    duration: d(dur),
                },
                t(0),
                STORAGE,
            );
            let amount = bid.amount().unwrap();
            assert!(amount >= last, "bid should grow with duration");
            last = amount;
        }
    }
}
