//! # meryn-core — the Meryn PaaS
//!
//! Reproduction of *"Meryn: Open, SLA-driven, Cloud Bursting PaaS"*
//! (Dib, Parlavantzas, Morin — ORMaCloud/HPDC 2013). Meryn shares a fixed
//! pool of private VMs between elastic, framework-owned Virtual Clusters,
//! negotiates (deadline, price) SLAs with users, and places every arriving
//! application on the cheapest of three options — the VC's own VMs, VMs
//! borrowed from sibling VCs, or freshly leased public-cloud VMs — using a
//! decentralized, auction-inspired protocol (paper Algorithm 1) whose VC
//! bids price the revenue lost by suspending a running application (paper
//! Algorithm 2).
//!
//! ## Crate layout
//!
//! | module | paper section |
//! |---|---|
//! | [`client_manager`] | §3.2 Client Manager: routing + negotiation front door |
//! | [`cluster_manager`] | §3.2 Cluster Manager: VC state, quoting, reservations |
//! | [`app`] / [`ids`] | §3.2 Application Controllers: per-app records |
//! | [`bidding`] | §4.2.2 Algorithm 2: bid computation |
//! | [`policy`] | pluggable placement/bidding strategies + the string-keyed registry |
//! | [`protocol`] | §4.1 Algorithm 1: resource selection |
//! | [`engine`] | the sharded executor: per-VC shard state machines, the shared fabric, typed effects |
//! | [`platform`] | the historical `Platform` facade over the engine |
//! | [`config`] | deployment knobs; [`config::PlatformConfig::paper`] reproduces the evaluation setup |
//! | [`report`] | the measurements behind Figures 5–6 and Table 1 |
//!
//! ## Quick example
//!
//! ```
//! use meryn_core::config::PlatformConfig;
//! use meryn_core::platform::Platform;
//! use meryn_workloads::{paper_workload, PaperWorkloadParams};
//!
//! // Policies are named; "meryn" and "static" are the paper's two.
//! let cfg = PlatformConfig::paper("meryn");
//! let report = Platform::new(cfg).run(&paper_workload(PaperWorkloadParams::default()));
//! assert_eq!(report.apps.len(), 65);
//! assert_eq!(report.violations(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod bidding;
pub mod client_manager;
pub mod cluster_manager;
pub mod config;
pub mod engine;
pub mod events;
pub mod ids;
pub mod platform;
pub mod policy;
pub mod protocol;
pub mod report;

pub use config::PlatformConfig;
pub use engine::EngineCheckpoint;
pub use ids::{AppId, Placement, VcId};
pub use platform::Platform;
pub use report::{ReportMode, RunReport};
