//! Run reports — the measurements behind Table 1 and Figures 5–6.

use std::collections::BTreeMap;

use meryn_sim::metrics::SeriesSet;
use meryn_sim::stats::{improvement_pct, OnlineStats, Summary};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::Money;
use serde::{Deserialize, Serialize};

use crate::ids::{AppId, VcId};

/// One completed (or rejected) application's measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRecord {
    /// The application.
    pub id: AppId,
    /// Hosting VC.
    pub vc: VcId,
    /// Hosting VC's name.
    pub vc_name: String,
    /// Placement case (Table 1 row label).
    pub placement: String,
    /// Submission instant.
    pub submitted: SimTime,
    /// Framework hand-off instant.
    pub framework_submitted: Option<SimTime>,
    /// Completion instant.
    pub completed: Option<SimTime>,
    /// Table 1 processing time.
    pub processing: Option<SimDuration>,
    /// Actual execution duration (Fig. 6(a) quantity).
    pub exec: SimDuration,
    /// Provider cost (Fig. 6(b) quantity).
    pub cost: Money,
    /// Agreed price.
    pub price: Money,
    /// Revenue (price − penalty).
    pub revenue: Money,
    /// Delay penalty paid.
    pub penalty: Money,
    /// Whether the deadline was missed.
    pub violated: bool,
    /// Times the app was suspended to lend its VMs.
    pub suspensions: u32,
    /// Negotiation rounds to sign.
    pub negotiation_rounds: u32,
}

/// Aggregates over a group of applications (a VC, or all of them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Number of applications.
    pub count: usize,
    /// Mean execution time in seconds.
    pub avg_exec_secs: f64,
    /// Mean provider cost in units.
    pub avg_cost_units: f64,
    /// Total provider cost.
    pub total_cost: Money,
    /// Total revenue.
    pub total_revenue: Money,
    /// Deadline violations.
    pub violations: usize,
}

/// How much per-application detail a run keeps.
///
/// [`ReportMode::Full`] (the default) records one [`AppRecord`] per
/// submission — O(history) memory, required for per-app outputs like
/// Table 1 and the placement listings. [`ReportMode::Aggregate`] folds
/// every application into per-VC running statistics the moment it
/// completes and retires its records from the engine, keeping memory
/// O(live) — the only mode that survives hyperscale submission counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReportMode {
    /// Keep every per-application record (the default).
    #[default]
    Full,
    /// Fold completed applications into aggregates; `apps` stays empty.
    Aggregate,
}

/// One VC's running aggregates, folded in canonical completion order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VcAggregate {
    /// Applications folded in.
    pub count: u64,
    /// Execution-time statistics [s].
    pub exec_secs: OnlineStats,
    /// Provider-cost statistics [units].
    pub cost_units: OnlineStats,
    /// Total provider cost.
    pub total_cost: Money,
    /// Total revenue.
    pub total_revenue: Money,
    /// Total delay penalties paid.
    pub total_penalty: Money,
    /// Deadline violations.
    pub violations: u64,
    /// Placement histogram (case label → count).
    pub placements: BTreeMap<String, u64>,
}

impl VcAggregate {
    /// Folds one completed application in.
    pub fn push(&mut self, rec: &AppRecord) {
        self.count += 1;
        self.exec_secs.push(rec.exec.as_secs_f64());
        self.cost_units.push(rec.cost.as_units_f64());
        self.total_cost += rec.cost;
        self.total_revenue += rec.revenue;
        self.total_penalty += rec.penalty;
        self.violations += u64::from(rec.violated);
        *self.placements.entry(rec.placement.clone()).or_default() += 1;
    }

    /// Merges another aggregate in (used when combining per-shard
    /// tallies; callers must merge in a canonical order).
    pub fn merge(&mut self, other: &VcAggregate) {
        self.count += other.count;
        self.exec_secs.merge(&other.exec_secs);
        self.cost_units.merge(&other.cost_units);
        self.total_cost += other.total_cost;
        self.total_revenue += other.total_revenue;
        self.total_penalty += other.total_penalty;
        self.violations += other.violations;
        for (k, v) in &other.placements {
            *self.placements.entry(k.clone()).or_default() += v;
        }
    }
}

/// The aggregate-only substitute for `RunReport::apps`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AggregateReport {
    /// Per-VC aggregates, indexed by `VcId`.
    pub per_vc: Vec<VcAggregate>,
    /// Submission processing-time statistics [s] across all apps.
    pub processing_secs: OnlineStats,
}

impl AggregateReport {
    /// Creates aggregates for `vcs` virtual clusters.
    pub fn new(vcs: usize) -> Self {
        AggregateReport {
            per_vc: (0..vcs).map(|_| VcAggregate::default()).collect(),
            processing_secs: OnlineStats::new(),
        }
    }

    /// Folds one completed application in.
    pub fn push(&mut self, rec: &AppRecord) {
        self.per_vc[rec.vc.0].push(rec);
        if let Some(p) = rec.processing {
            self.processing_secs.push(p.as_secs_f64());
        }
    }

    /// Group stats over all VCs (`None`) or one VC.
    pub fn group(&self, vc: Option<VcId>) -> GroupStats {
        let mut folded = VcAggregate::default();
        let agg = match vc {
            Some(v) => self.per_vc.get(v.0).unwrap_or(&folded),
            None => {
                for a in &self.per_vc {
                    folded.merge(a);
                }
                &folded
            }
        };
        GroupStats {
            count: agg.count as usize,
            avg_exec_secs: agg.exec_secs.mean(),
            avg_cost_units: agg.cost_units.mean(),
            total_cost: agg.total_cost,
            total_revenue: agg.total_revenue,
            violations: agg.violations as usize,
        }
    }
}

/// Fault-plane tallies: what the seeded failure processes injected and
/// what the recovery machinery absorbed. Present in a report exactly
/// when the run's [`crate::config::FaultSpec`] armed a failure process
/// — faults-off reports serialize byte-identically to pre-fault-plane
/// ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Slave VMs crashed mid-stint.
    pub vm_crashes: u64,
    /// Crash victims on the private pool (each booted a replacement).
    pub crashed_private: u64,
    /// Crash victims on cloud leases (the lease batch tore down).
    pub crashed_cloud: u64,
    /// Jobs whose stint was discarded and re-executed from scratch.
    pub jobs_reexecuted: u64,
    /// Cloud-lease admissions refused (outage window or transient
    /// rejection), on the arrival and escalation paths alike.
    pub lease_rejections: u64,
    /// Backed-off escalation retries armed.
    pub lease_retries: u64,
    /// Backoff chains that ran out of budget and degraded to the
    /// private pool for good.
    pub retries_exhausted: u64,
    /// Faults the recovery machinery absorbed without giving up: every
    /// crash re-executes, and every rejection short of an exhausted
    /// backoff chain was retried or degraded gracefully.
    pub masked_faults: u64,
}

/// Everything one platform run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy label (`"meryn"` / `"static"`).
    pub mode: String,
    /// Seed the run used.
    pub seed: u64,
    /// Per-application records, submission order.
    pub apps: Vec<AppRecord>,
    /// Rejected submissions (negotiation/routing failures).
    pub rejected: usize,
    /// Instant the last application completed.
    pub completion_time: SimTime,
    /// Used-VM step series: `used_private_vms`, `used_cloud_vms`
    /// (Figure 5).
    pub series: SeriesSet,
    /// Peak concurrent private VMs in use.
    pub peak_private: f64,
    /// Peak concurrent cloud VMs in use (the paper's headline: 15 for
    /// Meryn vs 25 for static).
    pub peak_cloud: f64,
    /// Zero-bid VM transfers performed.
    pub transfers: u64,
    /// Cloud VMs leased.
    pub bursts: u64,
    /// Application suspensions performed.
    pub suspensions: u64,
    /// Queued jobs escalated to the cloud by the violation policy.
    pub escalations: u64,
    /// What the cloud actually billed for the leases (boot-to-release).
    pub cloud_bill: Money,
    /// Events the simulation processed.
    pub events_processed: u64,
    /// Fault-plane tallies; `Some` exactly when the run's
    /// [`crate::config::FaultSpec`] armed a failure process. Skipped
    /// entirely when absent so faults-off reports — and every
    /// pre-fault-plane golden — serialize byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultStats>,
    /// Aggregate-only tallies; `Some` exactly when the run used
    /// [`ReportMode::Aggregate`] (and `apps` is then empty).
    #[serde(default)]
    pub aggregate: Option<AggregateReport>,
}

impl RunReport {
    /// Aggregates over all apps (`None`) or one VC's apps, folded in a
    /// single pass with no intermediate allocation.
    pub fn group(&self, vc: Option<VcId>) -> GroupStats {
        if let Some(agg) = &self.aggregate {
            return agg.group(vc);
        }
        let mut count = 0usize;
        let mut exec = Summary::new();
        let mut cost = Summary::new();
        let mut total_cost = Money::ZERO;
        let mut total_revenue = Money::ZERO;
        let mut violations = 0usize;
        for a in self.apps.iter().filter(|a| vc.is_none_or(|v| a.vc == v)) {
            count += 1;
            exec.push(a.exec.as_secs_f64());
            cost.push(a.cost.as_units_f64());
            total_cost += a.cost;
            total_revenue += a.revenue;
            violations += usize::from(a.violated);
        }
        GroupStats {
            count,
            avg_exec_secs: exec.mean(),
            avg_cost_units: cost.mean(),
            total_cost,
            total_revenue,
            violations,
        }
    }

    /// Admitted applications (record count in full mode, fold count in
    /// aggregate mode).
    pub fn apps_count(&self) -> usize {
        match &self.aggregate {
            Some(agg) => agg.per_vc.iter().map(|a| a.count as usize).sum(),
            None => self.apps.len(),
        }
    }

    /// Total provider cost across all applications.
    pub fn total_cost(&self) -> Money {
        match &self.aggregate {
            Some(agg) => agg.per_vc.iter().map(|a| a.total_cost).sum(),
            None => self.apps.iter().map(|a| a.cost).sum(),
        }
    }

    /// Total revenue across all applications.
    pub fn total_revenue(&self) -> Money {
        match &self.aggregate {
            Some(agg) => agg.per_vc.iter().map(|a| a.total_revenue).sum(),
            None => self.apps.iter().map(|a| a.revenue).sum(),
        }
    }

    /// Total delay penalties paid across all applications.
    pub fn total_penalty(&self) -> Money {
        match &self.aggregate {
            Some(agg) => agg.per_vc.iter().map(|a| a.total_penalty).sum(),
            None => self.apps.iter().map(|a| a.penalty).sum(),
        }
    }

    /// Provider profit: revenue − cost.
    pub fn profit(&self) -> Money {
        self.total_revenue() - self.total_cost()
    }

    /// Number of deadline violations.
    pub fn violations(&self) -> usize {
        match &self.aggregate {
            Some(agg) => agg.per_vc.iter().map(|a| a.violations as usize).sum(),
            None => self.apps.iter().filter(|a| a.violated).count(),
        }
    }

    /// Workload completion time (the Fig. 6(a) "Workload" bar).
    pub fn completion_secs(&self) -> f64 {
        self.completion_time.as_secs_f64()
    }

    /// Processing-time summary for one Table 1 case label. Requires
    /// full mode (aggregate runs keep no per-case samples).
    pub fn processing_summary(&self, case: &str) -> Summary {
        let mut s = Summary::new();
        for a in &self.apps {
            if a.placement == case {
                if let Some(p) = a.processing {
                    s.push(p.as_secs_f64());
                }
            }
        }
        s
    }

    /// Mean and worst submission processing time [s], in either mode.
    pub fn processing_mean_max_secs(&self) -> (f64, f64) {
        match &self.aggregate {
            Some(agg) => {
                let s = &agg.processing_secs;
                (s.mean(), if s.count() == 0 { 0.0 } else { s.max() })
            }
            None => {
                let mut s = Summary::new();
                for a in &self.apps {
                    if let Some(p) = a.processing {
                        s.push(p.as_secs_f64());
                    }
                }
                (s.mean(), if s.is_empty() { 0.0 } else { s.max() })
            }
        }
    }

    /// Placement histogram: (case label, count), label order.
    pub fn placement_counts(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<&str, usize> = Default::default();
        match &self.aggregate {
            Some(agg) => {
                for vc_agg in &agg.per_vc {
                    for (case, n) in &vc_agg.placements {
                        *counts.entry(case.as_str()).or_default() += *n as usize;
                    }
                }
            }
            None => {
                for a in &self.apps {
                    *counts.entry(a.placement.as_str()).or_default() += 1;
                }
            }
        }
        counts.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
    }
}

/// Side-by-side comparison of two runs (the shape of Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// Completion-time improvement of the first run over the second, %.
    pub completion_improvement_pct: f64,
    /// All-apps mean-cost improvement, %.
    pub cost_improvement_pct: f64,
    /// Total cost saved (second minus first).
    pub cost_saved: Money,
    /// Peak cloud VMs: first run.
    pub peak_cloud_a: f64,
    /// Peak cloud VMs: second run.
    pub peak_cloud_b: f64,
}

/// Compares run `a` (typically Meryn) against `b` (typically static).
pub fn compare(a: &RunReport, b: &RunReport) -> Comparison {
    Comparison {
        completion_improvement_pct: improvement_pct(b.completion_secs(), a.completion_secs()),
        cost_improvement_pct: improvement_pct(
            b.group(None).avg_cost_units,
            a.group(None).avg_cost_units,
        ),
        cost_saved: b.total_cost() - a.total_cost(),
        peak_cloud_a: a.peak_cloud,
        peak_cloud_b: b.peak_cloud,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(vc: usize, exec: u64, cost: i64, violated: bool) -> AppRecord {
        AppRecord {
            id: AppId(0),
            vc: VcId(vc),
            vc_name: format!("VC{vc}"),
            placement: "local-vm".into(),
            submitted: SimTime::ZERO,
            framework_submitted: Some(SimTime::from_secs(10)),
            completed: Some(SimTime::from_secs(exec + 10)),
            processing: Some(SimDuration::from_secs(10)),
            exec: SimDuration::from_secs(exec),
            cost: Money::from_units(cost),
            price: Money::from_units(cost * 2),
            revenue: Money::from_units(cost * 2),
            penalty: Money::ZERO,
            violated,
            suspensions: 0,
            negotiation_rounds: 1,
        }
    }

    fn report(apps: Vec<AppRecord>) -> RunReport {
        RunReport {
            mode: "meryn".into(),
            seed: 0,
            apps,
            rejected: 0,
            completion_time: SimTime::from_secs(2000),
            series: SeriesSet::new(),
            peak_private: 50.0,
            peak_cloud: 15.0,
            transfers: 10,
            bursts: 15,
            suspensions: 0,
            escalations: 0,
            cloud_bill: Money::ZERO,
            events_processed: 100,
            faults: None,
            aggregate: None,
        }
    }

    #[test]
    fn group_stats_split_by_vc() {
        let r = report(vec![
            record(0, 1550, 3100, false),
            record(0, 1670, 6680, false),
            record(1, 1550, 3100, true),
        ]);
        let all = r.group(None);
        assert_eq!(all.count, 3);
        assert_eq!(all.violations, 1);
        let vc0 = r.group(Some(VcId(0)));
        assert_eq!(vc0.count, 2);
        assert!((vc0.avg_exec_secs - 1610.0).abs() < 1e-9);
        assert!((vc0.avg_cost_units - 4890.0).abs() < 1e-9);
        let vc1 = r.group(Some(VcId(1)));
        assert_eq!(vc1.count, 1);
        assert_eq!(vc1.total_cost, Money::from_units(3100));
    }

    #[test]
    fn aggregate_mode_answers_the_same_headlines() {
        let records = vec![
            record(0, 1550, 3100, false),
            record(0, 1670, 6680, true),
            record(1, 1550, 3100, false),
        ];
        let full = report(records.clone());
        let mut agg = AggregateReport::new(2);
        for r in &records {
            agg.push(r);
        }
        let mut lean = report(Vec::new());
        lean.aggregate = Some(agg);

        assert_eq!(lean.apps_count(), full.apps.len());
        assert_eq!(lean.total_cost(), full.total_cost());
        assert_eq!(lean.total_revenue(), full.total_revenue());
        assert_eq!(lean.profit(), full.profit());
        assert_eq!(lean.violations(), full.violations());
        assert_eq!(lean.placement_counts(), full.placement_counts());
        for vc in [None, Some(VcId(0)), Some(VcId(1))] {
            let a = lean.group(vc);
            let b = full.group(vc);
            assert_eq!(a.count, b.count);
            assert_eq!(a.total_cost, b.total_cost);
            assert_eq!(a.total_revenue, b.total_revenue);
            assert_eq!(a.violations, b.violations);
            assert!((a.avg_exec_secs - b.avg_exec_secs).abs() < 1e-9);
            assert!((a.avg_cost_units - b.avg_cost_units).abs() < 1e-9);
        }
        let (mean, max) = lean.processing_mean_max_secs();
        assert_eq!((mean, max), full.processing_mean_max_secs());
        assert_eq!(mean, 10.0);
        assert_eq!(max, 10.0);
    }

    #[test]
    fn profit_is_revenue_minus_cost() {
        let r = report(vec![record(0, 100, 500, false)]);
        assert_eq!(r.total_cost(), Money::from_units(500));
        assert_eq!(r.total_revenue(), Money::from_units(1000));
        assert_eq!(r.profit(), Money::from_units(500));
    }

    #[test]
    fn processing_summary_filters_by_case() {
        let mut a = record(0, 100, 100, false);
        a.placement = "cloud-vm".into();
        a.processing = Some(SimDuration::from_secs(70));
        let r = report(vec![a, record(0, 100, 100, false)]);
        let s = r.processing_summary("cloud-vm");
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 70.0);
        assert_eq!(r.processing_summary("vc-vm").count(), 0);
    }

    #[test]
    fn placement_counts() {
        let mut b = record(0, 1, 1, false);
        b.placement = "cloud-vm".into();
        let r = report(vec![record(0, 1, 1, false), b.clone(), b]);
        let counts = r.placement_counts();
        assert!(counts.contains(&("cloud-vm".to_owned(), 2)));
        assert!(counts.contains(&("local-vm".to_owned(), 1)));
    }

    #[test]
    fn comparison_matches_paper_shape() {
        // Meryn-like vs static-like.
        let meryn = report(vec![record(0, 1550, 4174, false)]);
        let mut stat = report(vec![record(0, 1610, 4890, false)]);
        stat.peak_cloud = 25.0;
        stat.completion_time = SimTime::from_secs(2091);
        let mut meryn = meryn;
        meryn.completion_time = SimTime::from_secs(2021);
        let c = compare(&meryn, &stat);
        assert!(c.completion_improvement_pct > 3.0);
        assert!(c.cost_improvement_pct > 14.0);
        assert_eq!(c.cost_saved, Money::from_units(716));
        assert_eq!(c.peak_cloud_a, 15.0);
        assert_eq!(c.peak_cloud_b, 25.0);
    }
}
