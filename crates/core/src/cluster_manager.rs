//! The Cluster Manager: per-VC state and SLA quoting.
//!
//! Each Virtual Cluster is "managed by a specific programming framework"
//! and fronted by a Cluster Manager whose *generic* part decides when to
//! scale (that logic lives in [`crate::protocol`]) and whose
//! *framework-specific* part proposes SLAs from the framework's
//! performance model — implemented here as [`VcQuoter`].

use meryn_frameworks::{Framework, FrameworkKind, FrameworkSnapshot, JobId, JobSpec};
use meryn_sim::{DetHashMap, SimDuration};
use meryn_sla::negotiation::{Quote, Quoter};
use meryn_sla::pricing::PricingParams;
use meryn_sla::{Money, VmRate};
use meryn_vmm::{ImageId, Location, VmId};
use serde::{Deserialize, Serialize};

use crate::ids::{AppId, VcId};

/// A read-only window onto one VC shard: the cluster and the
/// applications it hosts.
///
/// This is the *shard context* the scheduling entry points
/// ([`crate::client_manager::admit`], [`crate::protocol::select_resources`],
/// [`crate::policy::PlacementContext`]) receive instead of whole-platform
/// borrows: each shard owns its `VirtualCluster` and its application map,
/// and a decision that spans shards (routing, bidding) sees exactly one
/// view per shard, in `VcId` order.
#[derive(Clone, Copy)]
pub struct VcView<'a> {
    /// The shard's cluster (framework, slaves, pricing).
    pub vc: &'a VirtualCluster,
    /// The applications hosted by this shard, by id.
    pub apps: &'a crate::app::AppMap,
}

/// Billing metadata the VC keeps for each of its slave VMs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaveMeta {
    /// Where the VM runs.
    pub location: Location,
    /// What one second of it costs the provider.
    pub cost_rate: VmRate,
}

/// One Virtual Cluster: a framework master plus its slave bookkeeping.
pub struct VirtualCluster {
    /// The VC's id.
    pub id: VcId,
    /// Display name.
    pub name: String,
    /// Hosted application type.
    pub kind: FrameworkKind,
    /// The framework disk image slaves boot from.
    pub image: ImageId,
    /// The framework master daemon (simulated).
    pub framework: Box<dyn Framework>,
    /// VMs promised to applications still in their processing pipeline;
    /// subtracted from availability so concurrent arrivals cannot claim
    /// the same idle slave twice.
    pub reserved: u64,
    /// Framework job → platform application mapping.
    pub job_to_app: DetHashMap<JobId, AppId>,
    /// Billing metadata per slave.
    pub slave_meta: DetHashMap<VmId, SlaveMeta>,
    /// Pricing regime this VC signs contracts under.
    pub pricing: PricingParams,
}

impl std::fmt::Debug for VirtualCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualCluster")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("slaves", &self.framework.slave_count())
            .field("idle", &self.framework.idle_count())
            .field("reserved", &self.reserved)
            .finish()
    }
}

impl VirtualCluster {
    /// Creates a VC around a framework master.
    pub fn new(
        id: VcId,
        name: impl Into<String>,
        kind: FrameworkKind,
        image: ImageId,
        framework: Box<dyn Framework>,
        pricing: PricingParams,
    ) -> Self {
        VirtualCluster {
            id,
            name: name.into(),
            kind,
            image,
            framework,
            reserved: 0,
            job_to_app: DetHashMap::default(),
            slave_meta: DetHashMap::default(),
            pricing,
        }
    }

    /// Idle slaves not yet promised to an in-flight submission — the
    /// "local available VMs" Algorithm 1 checks first.
    pub fn available(&self) -> u64 {
        self.framework.idle_count().saturating_sub(self.reserved)
    }

    /// Registers a slave with both the framework and the billing map.
    pub fn add_slave(
        &mut self,
        vm: VmId,
        speed: f64,
        location: Location,
        cost_rate: VmRate,
    ) -> Result<(), meryn_frameworks::FrameworkError> {
        self.framework
            .add_slave(vm, speed, !location.is_private())?;
        self.slave_meta.insert(
            vm,
            SlaveMeta {
                location,
                cost_rate,
            },
        );
        Ok(())
    }

    /// Unregisters a slave from both maps.
    pub fn remove_slave(
        &mut self,
        vm: VmId,
    ) -> Result<SlaveMeta, meryn_frameworks::FrameworkError> {
        self.framework.remove_slave(vm)?;
        Ok(self
            .slave_meta
            .remove(&vm)
            .expect("slave meta tracked for every framework slave"))
    }

    /// The application behind a framework job.
    pub fn app_of(&self, job: JobId) -> AppId {
        *self
            .job_to_app
            .get(&job)
            .expect("every framework job belongs to an application")
    }

    /// Captures the cluster's full state for a checkpoint. The
    /// framework master — a trait object — serializes through its
    /// concrete-typed [`FrameworkSnapshot`].
    pub fn snapshot(&self) -> VcSnapshot {
        VcSnapshot {
            id: self.id,
            name: self.name.clone(),
            kind: self.kind,
            image: self.image,
            framework: self.framework.snapshot(),
            reserved: self.reserved,
            job_to_app: self.job_to_app.clone(),
            slave_meta: self.slave_meta.clone(),
            pricing: self.pricing,
        }
    }
}

/// A [`VirtualCluster`]'s serializable state (checkpoint form): the
/// trait-object framework master is captured as a concrete-typed
/// [`FrameworkSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VcSnapshot {
    /// The VC's id.
    pub id: VcId,
    /// Display name.
    pub name: String,
    /// Hosted application type.
    pub kind: FrameworkKind,
    /// The framework disk image slaves boot from.
    pub image: ImageId,
    /// The framework master's full state.
    pub framework: FrameworkSnapshot,
    /// VMs promised to in-flight submissions.
    pub reserved: u64,
    /// Framework job → platform application mapping.
    pub job_to_app: DetHashMap<JobId, AppId>,
    /// Billing metadata per slave.
    pub slave_meta: DetHashMap<VmId, SlaveMeta>,
    /// Pricing regime.
    pub pricing: PricingParams,
}

impl VcSnapshot {
    /// Rebuilds the live cluster this snapshot was taken from.
    pub fn into_cluster(self) -> VirtualCluster {
        VirtualCluster {
            id: self.id,
            name: self.name,
            kind: self.kind,
            image: self.image,
            framework: self.framework.into_framework(),
            reserved: self.reserved,
            job_to_app: self.job_to_app,
            slave_meta: self.slave_meta,
            pricing: self.pricing,
        }
    }
}

/// The framework-specific SLA quoting front end (§3.2: the Cluster
/// Manager part that "consists in proposing SLAs and negotiating them
/// with users").
///
/// Quotes are conservative: execution time is estimated at
/// `quote_speed` (the slowest hardware the app might land on — the paper
/// quotes with the measured *cloud* execution time) and the deadline
/// adds the worst-case processing allowance.
pub struct VcQuoter<'a> {
    /// The framework whose performance model prices the quotes.
    pub framework: &'a dyn Framework,
    /// The application description being negotiated.
    pub spec: JobSpec,
    /// Pricing regime.
    pub pricing: PricingParams,
    /// Conservative speed for execution-time estimates.
    pub quote_speed: f64,
    /// Worst-case submission processing time added to deadlines (eq. 1).
    pub allowance: SimDuration,
    /// Largest VM allocation the VC will offer.
    pub max_vms: u64,
}

impl VcQuoter<'_> {
    /// Candidate allocations: the user's requested size and power-of-two
    /// multiples of it, capped at `max_vms`.
    fn allocation_options(&self) -> Vec<u64> {
        let base = self.spec.nb_vms().max(1);
        let mut ks: Vec<u64> = [1u64, 2, 4]
            .iter()
            .map(|m| base * m)
            .filter(|&k| k <= self.max_vms.max(base))
            .collect();
        if ks.is_empty() {
            ks.push(base);
        }
        ks.dedup();
        ks
    }

    fn quote_for(&self, k: u64) -> Option<Quote> {
        let spec = self.spec.with_nb_vms(k);
        let exec = self
            .framework
            .estimate_exec(&spec, k, self.quote_speed, true)
            .ok()?;
        Some(Quote {
            deadline: self.pricing.deadline(exec, self.allowance),
            price: self.pricing.price(exec, k),
            nb_vms: k,
        })
    }
}

impl Quoter for VcQuoter<'_> {
    fn proposals(&self) -> Vec<Quote> {
        self.allocation_options()
            .into_iter()
            .filter_map(|k| self.quote_for(k))
            .collect()
    }

    fn quote_for_deadline(&self, deadline: SimDuration) -> Option<Quote> {
        let best = self
            .proposals()
            .into_iter()
            .filter(|q| q.deadline <= deadline)
            .min_by_key(|q| q.price)?;
        // The user granted us until `deadline`; sign the slack into the
        // contract rather than promising tighter than asked.
        Some(Quote { deadline, ..best })
    }

    fn quote_for_price(&self, price: Money) -> Option<Quote> {
        self.proposals()
            .into_iter()
            .filter(|q| q.price <= price)
            .min_by_key(|q| q.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meryn_frameworks::{BatchFramework, ScalingLaw};
    use meryn_sim::SimTime;
    use meryn_vmm::HostTag;

    fn vc() -> VirtualCluster {
        VirtualCluster::new(
            VcId(0),
            "VC1",
            FrameworkKind::Batch,
            ImageId(0),
            Box::new(BatchFramework::new()),
            PricingParams::new(VmRate::per_vm_second(4), 1),
        )
    }

    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    #[test]
    fn availability_subtracts_reservations() {
        let mut vc = vc();
        for i in 0..3 {
            vc.add_slave(vid(i), 1.0, Location::Private, VmRate::per_vm_second(2))
                .unwrap();
        }
        assert_eq!(vc.available(), 3);
        vc.reserved = 2;
        assert_eq!(vc.available(), 1);
        vc.reserved = 5;
        assert_eq!(vc.available(), 0, "must saturate, not underflow");
    }

    #[test]
    fn add_remove_slave_keeps_meta_in_sync() {
        let mut vc = vc();
        vc.add_slave(vid(0), 1.0, Location::Private, VmRate::per_vm_second(2))
            .unwrap();
        assert!(vc.framework.has_slave(vid(0)));
        let meta = vc.remove_slave(vid(0)).unwrap();
        assert_eq!(meta.cost_rate, VmRate::per_vm_second(2));
        assert!(!vc.framework.has_slave(vid(0)));
        assert!(vc.slave_meta.is_empty());
    }

    fn quoter_for(vc: &VirtualCluster, spec: JobSpec) -> VcQuoter<'_> {
        VcQuoter {
            framework: vc.framework.as_ref(),
            spec,
            pricing: vc.pricing,
            quote_speed: 1550.0 / 1670.0,
            allowance: SimDuration::from_secs(84),
            max_vms: 25,
        }
    }

    #[test]
    fn pascal_quote_matches_paper_deadline_and_price() {
        let vc = vc();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(1550),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        };
        let q = quoter_for(&vc, spec);
        let proposals = q.proposals();
        // Fixed scaling: every allocation has the same exec time, so the
        // cheapest is 1 VM: deadline 1670+84, price 1670×1×4.
        let cheapest = proposals.iter().min_by_key(|p| p.price).unwrap();
        assert_eq!(cheapest.nb_vms, 1);
        assert_eq!(cheapest.deadline, SimDuration::from_secs(1754));
        assert_eq!(cheapest.price, Money::from_units(6680));
    }

    #[test]
    fn linear_jobs_offer_speed_price_tradeoff() {
        let vc = vc();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(1600),
            nb_vms: 1,
            scaling: ScalingLaw::Linear,
        };
        let q = quoter_for(&vc, spec);
        let proposals = q.proposals();
        assert_eq!(proposals.len(), 3); // 1, 2, 4 VMs
                                        // Linear + location-independent price: all cost the same (up to
                                        // millisecond rounding of the per-allocation estimate), faster
                                        // with more VMs.
        assert!(proposals[2].deadline < proposals[0].deadline);
        let diff = (proposals[0].price - proposals[1].price).as_micro().abs();
        assert!(diff < 10_000, "prices differ by {diff} micro-units");
    }

    #[test]
    fn quote_for_deadline_signs_the_user_slack() {
        let vc = vc();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(1550),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        };
        let q = quoter_for(&vc, spec);
        let quote = q
            .quote_for_deadline(SimDuration::from_secs(10_000))
            .unwrap();
        assert_eq!(quote.deadline, SimDuration::from_secs(10_000));
        // Infeasible deadline: none.
        assert!(q.quote_for_deadline(SimDuration::from_secs(100)).is_none());
    }

    #[test]
    fn quote_for_price_picks_fastest_within_budget() {
        let vc = vc();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(1600),
            nb_vms: 1,
            scaling: ScalingLaw::Linear,
        };
        let q = quoter_for(&vc, spec);
        let quote = q.quote_for_price(Money::from_units(99_999)).unwrap();
        assert_eq!(quote.nb_vms, 4, "same price, so fastest wins");
        assert!(q.quote_for_price(Money::from_units(1)).is_none());
    }

    #[test]
    fn allocation_options_capped_by_max_vms() {
        let vc = vc();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(100),
            nb_vms: 10,
            scaling: ScalingLaw::Linear,
        };
        let mut q = quoter_for(&vc, spec);
        q.max_vms = 25;
        assert_eq!(q.allocation_options(), vec![10, 20]);
        q.max_vms = 5; // smaller than the request: still offer the request
        assert_eq!(q.allocation_options(), vec![10]);
    }

    #[test]
    #[should_panic(expected = "belongs to an application")]
    fn app_of_unknown_job_panics() {
        let vc = vc();
        vc.app_of(JobId(7));
    }

    #[test]
    fn submit_while_negotiating_uses_job_map() {
        let mut vc = vc();
        vc.add_slave(vid(0), 1.0, Location::Private, VmRate::per_vm_second(2))
            .unwrap();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(10),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        };
        let job = vc.framework.submit(spec, SimTime::ZERO).unwrap();
        vc.job_to_app.insert(job, AppId(42));
        assert_eq!(vc.app_of(job), AppId(42));
    }
}
