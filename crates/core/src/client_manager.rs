//! The Client Manager: routing and negotiation front door (§3.2–3.3).
//!
//! "It is the entry point of the system … responsible for receiving
//! submission requests and transferring them to the corresponding
//! Cluster Manager." Routing is by explicit VC index or by application
//! type; negotiation delegates to the target VC's
//! [`crate::cluster_manager::VcQuoter`].

use std::fmt;

use meryn_frameworks::{FrameworkKind, JobSpec};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::{negotiate, NegotiationFailure, UserStrategy};
use meryn_sla::{SlaContract, SlaTerms};
use meryn_workloads::{Submission, VcTarget};

use crate::cluster_manager::{VcQuoter, VcView, VirtualCluster};
use crate::ids::VcId;

/// Why a submission could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The explicit VC index does not exist.
    UnknownVc(usize),
    /// No deployed VC hosts this application type.
    NoVcForKind,
    /// The job description does not match the target VC's type.
    TypeMismatch,
    /// SLA negotiation failed.
    Negotiation(NegotiationFailure),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownVc(i) => write!(f, "no VC with index {i}"),
            AdmissionError::NoVcForKind => write!(f, "no VC hosts this application type"),
            AdmissionError::TypeMismatch => {
                write!(f, "job description does not match the target VC's type")
            }
            AdmissionError::Negotiation(e) => write!(f, "negotiation failed: {e:?}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Resolves a submission's routing target against the deployed VC
/// kinds alone (declaration order; the first VC of a kind wins, like
/// the view-based [`route`]). Routing is a pure function of the
/// deployment config, which is what lets the executor pre-route
/// arrivals into shard queues without touching any shard state.
pub fn route_kinds(target: VcTarget, kinds: &[FrameworkKind]) -> Result<VcId, AdmissionError> {
    match target {
        VcTarget::Index(i) => {
            if i < kinds.len() {
                Ok(VcId(i))
            } else {
                Err(AdmissionError::UnknownVc(i))
            }
        }
        VcTarget::Kind(kind) => kinds
            .iter()
            .position(|k| *k == kind)
            .map(VcId)
            .ok_or(AdmissionError::NoVcForKind),
    }
}

/// Resolves a submission's routing target to a VC id.
pub fn route(target: VcTarget, shards: &[VcView<'_>]) -> Result<VcId, AdmissionError> {
    let kinds: Vec<FrameworkKind> = shards.iter().map(|s| s.vc.kind).collect();
    route_kinds(target, &kinds)
}

/// Negotiates an already-routed submission against its target VC:
/// type-checks, runs the negotiation rounds and signs the contract.
/// Needs nothing beyond the one VC, so it runs in-shard.
pub fn admit_routed(
    sub: &Submission,
    vc: &VirtualCluster,
    now: SimTime,
    quote_speed: f64,
    allowance: SimDuration,
    max_rounds: u32,
    max_vms: u64,
) -> Result<(JobSpec, SlaContract, u32), AdmissionError> {
    if sub.spec.type_name() != vc.kind.type_name() {
        return Err(AdmissionError::TypeMismatch);
    }
    let quoter = VcQuoter {
        framework: vc.framework.as_ref(),
        spec: sub.spec,
        pricing: vc.pricing,
        quote_speed,
        allowance,
        max_vms,
    };
    let outcome =
        negotiate(&quoter, sub.strategy, max_rounds).map_err(AdmissionError::Negotiation)?;
    let spec = sub.spec.with_nb_vms(outcome.quote.nb_vms);
    let terms = SlaTerms::from(outcome.quote);
    let contract = SlaContract::sign(terms, now, vc.pricing);
    Ok((spec, contract, outcome.rounds))
}

/// Routes and negotiates a submission: returns the target VC, the
/// (possibly re-allocated) job spec and the signed contract.
pub fn admit(
    sub: &Submission,
    shards: &[VcView<'_>],
    now: SimTime,
    quote_speed: f64,
    allowance: SimDuration,
    max_rounds: u32,
    max_vms: u64,
) -> Result<(VcId, JobSpec, SlaContract, u32), AdmissionError> {
    let vc_id = route(sub.target, shards)?;
    let (spec, contract, rounds) = admit_routed(
        sub,
        shards[vc_id.0].vc,
        now,
        quote_speed,
        allowance,
        max_rounds,
        max_vms,
    )?;
    Ok((vc_id, spec, contract, rounds))
}

/// How a user strategy applies to the paper's workload users.
pub fn default_strategy() -> UserStrategy {
    UserStrategy::AcceptCheapest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_manager::VirtualCluster;
    use meryn_frameworks::{BatchFramework, FrameworkKind, MapReduceFramework, ScalingLaw};
    use meryn_sla::pricing::PricingParams;
    use meryn_sla::{Money, VmRate};
    use meryn_vmm::ImageId;

    fn views(vcs: &[VirtualCluster]) -> Vec<VcView<'_>> {
        // Tests negotiate only; an empty shared app map per view is fine.
        use std::sync::OnceLock;
        static EMPTY: OnceLock<crate::app::AppMap> = OnceLock::new();
        let apps = EMPTY.get_or_init(crate::app::AppMap::default);
        vcs.iter().map(|vc| VcView { vc, apps }).collect()
    }

    fn vcs() -> Vec<VirtualCluster> {
        let pricing = PricingParams::new(VmRate::per_vm_second(4), 1);
        vec![
            VirtualCluster::new(
                VcId(0),
                "VC1",
                FrameworkKind::Batch,
                ImageId(0),
                Box::new(BatchFramework::new()),
                pricing,
            ),
            VirtualCluster::new(
                VcId(1),
                "MR",
                FrameworkKind::MapReduce,
                ImageId(1),
                Box::new(MapReduceFramework::new()),
                pricing,
            ),
        ]
    }

    fn batch_spec() -> JobSpec {
        JobSpec::Batch {
            work: SimDuration::from_secs(1550),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        }
    }

    #[test]
    fn route_by_index_and_kind() {
        let vcs = vcs();
        let views = views(&vcs);
        assert_eq!(route(VcTarget::Index(1), &views), Ok(VcId(1)));
        assert_eq!(
            route(VcTarget::Kind(FrameworkKind::MapReduce), &views),
            Ok(VcId(1))
        );
        assert_eq!(
            route(VcTarget::Index(5), &views),
            Err(AdmissionError::UnknownVc(5))
        );
    }

    #[test]
    fn route_missing_kind_fails() {
        let vcs: Vec<VirtualCluster> = vcs().into_iter().take(1).collect();
        assert_eq!(
            route(VcTarget::Kind(FrameworkKind::MapReduce), &views(&vcs)),
            Err(AdmissionError::NoVcForKind)
        );
    }

    #[test]
    fn admit_signs_paper_contract() {
        let vcs = vcs();
        let sub = Submission::new(
            SimTime::from_secs(5),
            VcTarget::Index(0),
            batch_spec(),
            UserStrategy::AcceptCheapest,
        );
        let (vc, spec, contract, rounds) = admit(
            &sub,
            &views(&vcs),
            SimTime::from_secs(5),
            1550.0 / 1670.0,
            SimDuration::from_secs(84),
            8,
            25,
        )
        .unwrap();
        assert_eq!(vc, VcId(0));
        assert_eq!(spec.nb_vms(), 1);
        assert_eq!(rounds, 1);
        assert_eq!(contract.terms.deadline, SimDuration::from_secs(1754));
        assert_eq!(contract.terms.price, Money::from_units(6680));
        assert_eq!(contract.agreed_at, SimTime::from_secs(5));
    }

    #[test]
    fn admit_rejects_type_mismatch() {
        let vcs = vcs();
        let sub = Submission::new(
            SimTime::ZERO,
            VcTarget::Index(1), // MapReduce VC
            batch_spec(),
            UserStrategy::AcceptCheapest,
        );
        let err = admit(
            &sub,
            &views(&vcs),
            SimTime::ZERO,
            1.0,
            SimDuration::from_secs(84),
            8,
            25,
        )
        .unwrap_err();
        assert_eq!(err, AdmissionError::TypeMismatch);
    }

    #[test]
    fn admit_negotiation_failure_propagates() {
        let vcs = vcs();
        let sub = Submission::new(
            SimTime::ZERO,
            VcTarget::Index(0),
            batch_spec(),
            UserStrategy::ImposePrice {
                cap: Money::from_units(1),
                concession_pct: 1,
            },
        );
        let err = admit(
            &sub,
            &views(&vcs),
            SimTime::ZERO,
            1.0,
            SimDuration::from_secs(84),
            2,
            25,
        )
        .unwrap_err();
        assert!(matches!(err, AdmissionError::Negotiation(_)));
        assert!(err.to_string().contains("negotiation failed"));
    }

    #[test]
    fn default_strategy_is_cheapest() {
        assert_eq!(default_strategy(), UserStrategy::AcceptCheapest);
    }
}
