//! Pluggable placement and bidding policies.
//!
//! The paper evaluates exactly two behaviours — the full Meryn protocol
//! and a static-partition baseline — and earlier revisions hard-coded
//! that choice as an enum branched on inside the protocol. This module
//! replaces the enum with two small traits and a string-keyed registry:
//!
//! * [`PlacementPolicy`] — Algorithm 1's seat: given a
//!   [`PlacementContext`] (the requesting VC, its siblings, the cloud
//!   market and the request), decide where the application runs;
//! * [`BiddingPolicy`] — Algorithm 2's seat: how a VC answers a bid
//!   request from a sibling Cluster Manager.
//!
//! A [`crate::config::PlatformConfig`] names its policies
//! (`policy: "meryn"`, `bidding: "standard"`), the platform resolves
//! them through the [registry](placement) at deployment, and new
//! policies slot in via [`register_placement`]/[`register_bidding`]
//! without touching the platform driver. Scenario files (see
//! `meryn-scenario`) select policies the same way, by name.
//!
//! Built-in placement policies:
//!
//! | name | behaviour |
//! |---|---|
//! | `meryn` | the paper's Algorithm 1: local → zero bids → cheapest of {local suspension, VC suspension, cloud} |
//! | `static` | the paper's baseline: local if free, otherwise burst — VCs never exchange VMs |
//! | `never-burst` | Algorithm 1 with the cloud market removed: exchange or queue, never lease |
//! | `always-burst` | lease from the cheapest cloud whenever one can serve; private VMs only when no cloud exists |
//! | `cost-greedy` | price *every* option in money (free VMs at the private cost rate, suspensions at bid + private cost, clouds at market rate) and take the global minimum |
//!
//! Built-in bidding policies: `standard` (Algorithm 2, honouring the
//! `suspension_enabled` knob) and `free-only` (zero bids only — a VC
//! never offers to suspend a tenant).

use std::collections::BTreeMap;
use std::sync::{Arc, LazyLock, RwLock};

use meryn_sim::SimTime;
use meryn_sla::{Money, VmRate};
use meryn_vmm::{CloudId, PublicCloud};

use crate::app::AppMap;
use crate::bidding::{compute_bid, Bid, BidRequest};
use crate::cluster_manager::{VcView, VirtualCluster};
use crate::ids::{AppId, VcId};
use crate::protocol::{Decision, ProtocolParams};

/// Everything a placement policy may consult: the paper's protocol
/// inputs plus the bidding policy the platform runs.
///
/// Since the engine sharded, policies no longer see one platform-wide
/// application map: every deployed VC appears as a [`VcView`] — the
/// cluster plus the applications *that shard* hosts — in `VcId` order.
pub struct PlacementContext<'a> {
    /// The requesting ("local") VC.
    pub local: VcId,
    /// One view per deployed VC shard, including the local one, in
    /// `VcId` order.
    pub shards: &'a [VcView<'a>],
    /// The public cloud market.
    pub clouds: &'a [PublicCloud],
    /// The circulating VM request.
    pub req: BidRequest,
    /// Decision instant.
    pub now: SimTime,
    /// Protocol-wide knobs from the platform configuration.
    pub params: ProtocolParams,
    /// The bidding policy VCs answer with.
    pub bidding: &'a dyn BiddingPolicy,
}

impl<'a> PlacementContext<'a> {
    /// The requesting shard's view.
    pub fn local_view(&self) -> &VcView<'a> {
        &self.shards[self.local.0]
    }

    /// The requesting VC.
    pub fn local_vc(&self) -> &VirtualCluster {
        self.local_view().vc
    }

    /// Whether the local VC can serve the request from idle VMs.
    pub fn local_has_capacity(&self) -> bool {
        self.local_vc().available() >= self.req.nb_vms
    }

    /// A shard's answer to the request, through the bidding policy.
    pub fn bid_of(&self, shard: &VcView<'_>) -> Bid {
        self.bidding
            .bid(shard.vc, shard.apps, self.req, self.now, &self.params)
    }

    /// Bids from every sibling VC, in VC-id order ("request all Cluster
    /// Managers to propose a bid").
    pub fn sibling_bids(&self) -> Vec<(VcId, Bid)> {
        self.shards
            .iter()
            .filter(|s| s.vc.id != self.local)
            .map(|s| (s.vc.id, self.bid_of(s)))
            .collect()
    }

    /// The cheapest cloud able to serve the request: `(cloud, locked
    /// rate, total cost for the requested VMs over the duration)`.
    pub fn cheapest_cloud(&self) -> Option<(CloudId, VmRate, Money)> {
        self.clouds
            .iter()
            .filter(|c| c.can_lease(self.req.nb_vms))
            .map(|c| {
                let rate = c.price_at(self.now);
                (
                    c.id,
                    rate,
                    rate.cost_for_vms(self.req.nb_vms, self.req.duration),
                )
            })
            .min_by_key(|&(_, _, cost)| cost)
    }
}

/// Algorithm 1's seat: where does a new application run?
pub trait PlacementPolicy: Send + Sync {
    /// Registry name (lowercase, kebab-case).
    fn name(&self) -> &'static str;
    /// Decides a placement for the request in `ctx`.
    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision;
}

/// Algorithm 2's seat: how a VC answers a sibling's bid request.
pub trait BiddingPolicy: Send + Sync {
    /// Registry name (lowercase, kebab-case).
    fn name(&self) -> &'static str;
    /// Computes `vc`'s bid for `req`.
    fn bid(
        &self,
        vc: &VirtualCluster,
        apps: &AppMap,
        req: BidRequest,
        now: SimTime,
        params: &ProtocolParams,
    ) -> Bid;
}

// ---- built-in bidding policies -----------------------------------------

/// Algorithm 2 as published, honouring the platform's
/// `suspension_enabled` switch (a disabled platform answers `Unable`
/// where it would have offered a suspension).
pub struct StandardBidding;

impl BiddingPolicy for StandardBidding {
    fn name(&self) -> &'static str {
        "standard"
    }

    fn bid(
        &self,
        vc: &VirtualCluster,
        apps: &AppMap,
        req: BidRequest,
        now: SimTime,
        params: &ProtocolParams,
    ) -> Bid {
        match compute_bid(vc, apps, req, now, params.storage_rate) {
            Bid::Suspension { .. } if !params.suspension_enabled => Bid::Unable,
            bid => bid,
        }
    }
}

/// Zero bids only: a VC lends idle VMs for free but never offers to
/// suspend a running tenant, whatever the knobs say.
pub struct FreeOnlyBidding;

impl BiddingPolicy for FreeOnlyBidding {
    fn name(&self) -> &'static str {
        "free-only"
    }

    fn bid(
        &self,
        vc: &VirtualCluster,
        _apps: &AppMap,
        req: BidRequest,
        _now: SimTime,
        _params: &ProtocolParams,
    ) -> Bid {
        if vc.available() >= req.nb_vms {
            Bid::Free
        } else {
            Bid::Unable
        }
    }
}

// ---- built-in placement policies ---------------------------------------

/// The paper's five-outcome selection (Algorithm 1), with the cloud
/// market optionally masked out (`never-burst` reuses the same core).
fn meryn_decision(ctx: &PlacementContext<'_>, allow_cloud: bool) -> Decision {
    // Option 1: enough local VMs.
    if ctx.local_has_capacity() {
        return Decision::Local;
    }

    let cloud_offer = if allow_cloud {
        ctx.cheapest_cloud()
    } else {
        None
    };

    // "Request all Cluster Managers to propose a bid."
    let vc_bids = ctx.sibling_bids();

    // Option 2: any zero bid wins immediately.
    if let Some(&(src, _)) = vc_bids.iter().find(|(_, b)| b.is_free()) {
        return Decision::FromVc { src };
    }

    // Local bid, "in the same way as the other Cluster Managers".
    let local_bid = ctx.bid_of(ctx.local_view());

    // Smallest remote suspension bid.
    let best_vc: Option<(VcId, AppId, Money)> = vc_bids
        .iter()
        .filter_map(|&(src, bid)| match bid {
            Bid::Suspension { victim, cost } => Some((src, victim, cost)),
            _ => None,
        })
        .min_by_key(|&(_, _, cost)| cost);

    // Assemble the three candidate amounts; ties prefer local, then VC,
    // then cloud (cheapest operationally at equal money).
    let local_amount = local_bid.amount();
    let vc_amount = best_vc.map(|(_, _, c)| c);
    let cloud_amount = cloud_offer.map(|(_, _, c)| c);

    let min_amount = [local_amount, vc_amount, cloud_amount]
        .into_iter()
        .flatten()
        .min();

    match min_amount {
        None => Decision::Queue,
        Some(min) => {
            if local_amount == Some(min) {
                match local_bid {
                    Bid::Suspension { victim, .. } => Decision::LocalAfterSuspension { victim },
                    // The built-in bidding policies only answer `Free`
                    // when option 1 already fired, but a registered
                    // custom policy may bid zero here — honour it as a
                    // plain local placement (the platform's own
                    // capacity assertions still guard against lies).
                    Bid::Free => Decision::Local,
                    // `Unable` has no amount, so it can never be `min`.
                    Bid::Unable => unreachable!("Unable bids carry no amount"),
                }
            } else if vc_amount == Some(min) {
                let (src, victim, _) = best_vc.expect("vc amount implies a bid");
                Decision::FromVcAfterSuspension { src, victim }
            } else {
                let (cloud, rate, _) = cloud_offer.expect("cloud amount implies an offer");
                Decision::Cloud { cloud, rate }
            }
        }
    }
}

/// The full Meryn resource selection protocol (paper Algorithm 1).
pub struct MerynPolicy;

impl PlacementPolicy for MerynPolicy {
    fn name(&self) -> &'static str {
        "meryn"
    }

    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision {
        meryn_decision(ctx, true)
    }
}

/// The paper's baseline: static VC partitions; a VC may only burst to
/// public clouds, never exchange VMs with siblings.
pub struct StaticPolicy;

impl PlacementPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision {
        if ctx.local_has_capacity() {
            return Decision::Local;
        }
        match ctx.cheapest_cloud() {
            Some((cloud, rate, _)) => Decision::Cloud { cloud, rate },
            None => Decision::Queue,
        }
    }
}

/// Algorithm 1 with the cloud market removed: exchange VMs or queue,
/// never lease (a private-only deployment policy).
pub struct NeverBurstPolicy;

impl PlacementPolicy for NeverBurstPolicy {
    fn name(&self) -> &'static str {
        "never-burst"
    }

    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision {
        meryn_decision(ctx, false)
    }
}

/// Burst-first: lease from the cheapest cloud whenever one can serve
/// the request; private capacity is only used when no cloud exists (or
/// all quotas are full).
pub struct AlwaysBurstPolicy;

impl PlacementPolicy for AlwaysBurstPolicy {
    fn name(&self) -> &'static str {
        "always-burst"
    }

    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision {
        if let Some((cloud, rate, _)) = ctx.cheapest_cloud() {
            return Decision::Cloud { cloud, rate };
        }
        if ctx.local_has_capacity() {
            return Decision::Local;
        }
        Decision::Queue
    }
}

/// Prices every option in money — free private VMs at the provider's
/// private cost rate, suspensions at bid + private cost, clouds at the
/// market rate — and takes the global minimum. Unlike `meryn`, a free
/// local VM does *not* automatically win: an unusually cheap cloud can
/// outbid the private estate.
pub struct CostGreedyPolicy;

impl PlacementPolicy for CostGreedyPolicy {
    fn name(&self) -> &'static str {
        "cost-greedy"
    }

    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision {
        let private = ctx
            .params
            .private_cost
            .cost_for_vms(ctx.req.nb_vms, ctx.req.duration);
        // Candidates in tie-break order (cheapest operationally first).
        let mut candidates: Vec<(Money, Decision)> = Vec::new();
        if ctx.local_has_capacity() {
            candidates.push((private, Decision::Local));
        }
        let vc_bids = ctx.sibling_bids();
        if let Some(&(src, _)) = vc_bids.iter().find(|(_, b)| b.is_free()) {
            candidates.push((private, Decision::FromVc { src }));
        }
        if let Bid::Suspension { victim, cost } = ctx.bid_of(ctx.local_view()) {
            candidates.push((cost + private, Decision::LocalAfterSuspension { victim }));
        }
        if let Some((src, victim, cost)) = vc_bids
            .iter()
            .filter_map(|&(src, bid)| match bid {
                Bid::Suspension { victim, cost } => Some((src, victim, cost)),
                _ => None,
            })
            .min_by_key(|&(_, _, cost)| cost)
        {
            candidates.push((
                cost + private,
                Decision::FromVcAfterSuspension { src, victim },
            ));
        }
        if let Some((cloud, rate, cost)) = ctx.cheapest_cloud() {
            candidates.push((cost, Decision::Cloud { cloud, rate }));
        }
        candidates
            .into_iter()
            .enumerate()
            .min_by_key(|&(order, (cost, _))| (cost, order))
            .map(|(_, (_, decision))| decision)
            .unwrap_or(Decision::Queue)
    }
}

// ---- registry ----------------------------------------------------------

struct Registry {
    placements: BTreeMap<String, Arc<dyn PlacementPolicy>>,
    biddings: BTreeMap<String, Arc<dyn BiddingPolicy>>,
}

static REGISTRY: LazyLock<RwLock<Registry>> = LazyLock::new(|| {
    let mut placements: BTreeMap<String, Arc<dyn PlacementPolicy>> = BTreeMap::new();
    for policy in [
        Arc::new(MerynPolicy) as Arc<dyn PlacementPolicy>,
        Arc::new(StaticPolicy),
        Arc::new(NeverBurstPolicy),
        Arc::new(AlwaysBurstPolicy),
        Arc::new(CostGreedyPolicy),
    ] {
        placements.insert(policy.name().to_owned(), policy);
    }
    let mut biddings: BTreeMap<String, Arc<dyn BiddingPolicy>> = BTreeMap::new();
    for policy in [
        Arc::new(StandardBidding) as Arc<dyn BiddingPolicy>,
        Arc::new(FreeOnlyBidding),
    ] {
        biddings.insert(policy.name().to_owned(), policy);
    }
    RwLock::new(Registry {
        placements,
        biddings,
    })
});

/// Registers (or replaces) a placement policy under its own name.
pub fn register_placement(policy: Arc<dyn PlacementPolicy>) {
    REGISTRY
        .write()
        .expect("policy registry poisoned")
        .placements
        .insert(policy.name().to_owned(), policy);
}

/// Registers (or replaces) a bidding policy under its own name.
pub fn register_bidding(policy: Arc<dyn BiddingPolicy>) {
    REGISTRY
        .write()
        .expect("policy registry poisoned")
        .biddings
        .insert(policy.name().to_owned(), policy);
}

/// Looks up a placement policy by name.
pub fn placement(name: &str) -> Option<Arc<dyn PlacementPolicy>> {
    REGISTRY
        .read()
        .expect("policy registry poisoned")
        .placements
        .get(name)
        .cloned()
}

/// Looks up a bidding policy by name.
pub fn bidding(name: &str) -> Option<Arc<dyn BiddingPolicy>> {
    REGISTRY
        .read()
        .expect("policy registry poisoned")
        .biddings
        .get(name)
        .cloned()
}

/// Registered placement-policy names, sorted.
pub fn placement_names() -> Vec<String> {
    REGISTRY
        .read()
        .expect("policy registry poisoned")
        .placements
        .keys()
        .cloned()
        .collect()
}

/// Registered bidding-policy names, sorted.
pub fn bidding_names() -> Vec<String> {
    REGISTRY
        .read()
        .expect("policy registry poisoned")
        .biddings
        .keys()
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        for name in [
            "meryn",
            "static",
            "never-burst",
            "always-burst",
            "cost-greedy",
        ] {
            let p = placement(name).unwrap_or_else(|| panic!("{name} registered"));
            assert_eq!(p.name(), name);
        }
        for name in ["standard", "free-only"] {
            let b = bidding(name).unwrap_or_else(|| panic!("{name} registered"));
            assert_eq!(b.name(), name);
        }
        assert!(placement("no-such-policy").is_none());
        assert!(bidding("no-such-bidding").is_none());
    }

    #[test]
    fn names_are_sorted_and_complete() {
        let names = placement_names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.len() >= 5);
        assert!(bidding_names().contains(&"standard".to_owned()));
    }

    #[test]
    fn custom_policies_can_be_registered() {
        struct QueueEverything;
        impl PlacementPolicy for QueueEverything {
            fn name(&self) -> &'static str {
                "queue-everything"
            }
            fn decide(&self, _ctx: &PlacementContext<'_>) -> Decision {
                Decision::Queue
            }
        }
        register_placement(Arc::new(QueueEverything));
        let p = placement("queue-everything").expect("registered");
        assert_eq!(p.name(), "queue-everything");
    }
}
