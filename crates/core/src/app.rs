//! Per-application records and the Application Controller state.
//!
//! The paper instantiates one Application Controller per submitted
//! application (§3.2); it "monitors the execution progress of its
//! associated application and the satisfaction of its agreed SLA". Here
//! the controller's state is the [`Application`] record; the periodic
//! check lives in the platform's event loop.

use meryn_frameworks::{JobId, JobSpec};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::{AppTimes, Money, SlaContract};
use serde::{Deserialize, Serialize};

use crate::ids::{AppId, Placement, VcId};

/// A shard's application table.
///
/// Keyed lookups on every hot path; iterated only when assembling the
/// final report (which sorts by [`AppId`] afterwards), so the
/// deterministic hash map's unordered iteration never reaches
/// simulation state. The fixed-seed hashing keeps two runs of the same
/// binary bit-identical — see [`meryn_sim::hash`].
pub type AppMap = meryn_sim::DetHashMap<AppId, Application>;

/// Coarse lifecycle of an application inside the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppPhase {
    /// Between arrival and framework submission: negotiating, acquiring
    /// VMs (the "processing time" the paper's Table 1 measures).
    Acquiring,
    /// Handed to the framework (queued, running or suspended there).
    Submitted,
    /// Finished; results delivered.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
}

/// Everything the platform knows about one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    /// Platform-wide id.
    pub id: AppId,
    /// The VC hosting it.
    pub vc: VcId,
    /// Framework job description (post-negotiation allocation).
    pub spec: JobSpec,
    /// The signed SLA.
    pub contract: SlaContract,
    /// Figure 4 time accounting.
    pub times: AppTimes,
    /// Framework job id, once submitted.
    pub job: Option<JobId>,
    /// Where Algorithm 1 placed it.
    pub placement: Placement,
    /// Lifecycle phase.
    pub phase: AppPhase,
    /// When the framework received the job (processing-time endpoint).
    pub framework_submitted_at: Option<SimTime>,
    /// Provider-side cost accrued so far (execution stints × VM rates).
    pub cost: Money,
    /// Negotiation rounds it took to sign.
    pub negotiation_rounds: u32,
    /// Times this application was suspended to lend its VMs.
    pub suspensions: u32,
    /// First instant the controller saw the SLA violated, if ever.
    pub violation_detected: Option<SimTime>,
}

impl Application {
    /// The Table 1 processing time: submission to framework hand-off.
    pub fn processing_time(&self) -> Option<SimDuration> {
        self.framework_submitted_at
            .map(|t| t.since(self.contract.agreed_at))
    }

    /// Completion instant, if finished.
    pub fn completed_at(&self) -> Option<SimTime> {
        match self.phase {
            AppPhase::Completed { at } => Some(at),
            _ => None,
        }
    }

    /// True once finished.
    pub fn is_completed(&self) -> bool {
        matches!(self.phase, AppPhase::Completed { .. })
    }

    /// Actual execution duration accumulated across stints (the quantity
    /// averaged in Figure 6(a)).
    pub fn exec_duration(&self) -> SimDuration {
        let asof = self.completed_at().unwrap_or(SimTime::MAX);
        self.times.progress_t(asof)
    }

    /// Provider revenue (price − delay penalty) as of completion;
    /// `None` while unfinished.
    pub fn revenue(&self) -> Option<Money> {
        self.completed_at().map(|at| self.contract.revenue_at(at))
    }

    /// Delay penalty paid, if any.
    pub fn penalty(&self) -> Option<Money> {
        self.completed_at().map(|at| self.contract.penalty_at(at))
    }

    /// True when the deadline was missed.
    pub fn violated(&self) -> bool {
        self.completed_at()
            .map(|at| self.contract.violated_at(at))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meryn_frameworks::ScalingLaw;
    use meryn_sla::pricing::PricingParams;
    use meryn_sla::{SlaTerms, VmRate};

    fn app() -> Application {
        let pricing = PricingParams::new(VmRate::per_vm_second(4), 1);
        let terms = SlaTerms::new(SimDuration::from_secs(1754), Money::from_units(6680), 1);
        let submit = SimTime::from_secs(5);
        Application {
            id: AppId(0),
            vc: VcId(0),
            spec: JobSpec::Batch {
                work: SimDuration::from_secs(1550),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            },
            contract: SlaContract::sign(terms, submit, pricing),
            times: AppTimes::submitted(
                submit,
                SimDuration::from_secs(1670),
                SimDuration::from_secs(1754),
            ),
            job: None,
            placement: Placement::Local,
            phase: AppPhase::Acquiring,
            framework_submitted_at: None,
            cost: Money::ZERO,
            negotiation_rounds: 1,
            suspensions: 0,
            violation_detected: None,
        }
    }

    #[test]
    fn processing_time_measures_submission_pipeline() {
        let mut a = app();
        assert_eq!(a.processing_time(), None);
        a.framework_submitted_at = Some(SimTime::from_secs(17));
        assert_eq!(a.processing_time(), Some(SimDuration::from_secs(12)));
    }

    #[test]
    fn lifecycle_queries() {
        let mut a = app();
        assert!(!a.is_completed());
        assert_eq!(a.revenue(), None);
        a.times.start(SimTime::from_secs(20));
        a.times.set_exec_t(SimDuration::from_secs(1550));
        a.phase = AppPhase::Completed {
            at: SimTime::from_secs(1570),
        };
        assert!(a.is_completed());
        assert_eq!(a.exec_duration(), SimDuration::from_secs(1550));
        assert_eq!(a.revenue(), Some(Money::from_units(6680)));
        assert_eq!(a.penalty(), Some(Money::ZERO));
        assert!(!a.violated());
    }

    #[test]
    fn late_completion_is_violated() {
        let mut a = app();
        a.times.start(SimTime::from_secs(20));
        a.phase = AppPhase::Completed {
            at: SimTime::from_secs(5000),
        };
        assert!(a.violated());
        assert!(a.penalty().unwrap() > Money::ZERO);
        assert!(a.revenue().unwrap() < Money::from_units(6680));
    }
}
