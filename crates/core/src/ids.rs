//! Platform-level identifiers and placement taxonomy.

use std::fmt;

use meryn_vmm::CloudId;
use serde::{Deserialize, Serialize};

/// Identifier of an application across the whole platform.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u64);

impl fmt::Debug for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of a Virtual Cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VcId(pub usize);

impl fmt::Debug for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Where an application's VMs came from — the five outcomes of
/// Algorithm 1, which are also the five rows of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// The VC's own free private VMs.
    Local,
    /// The VC's own VMs, freed by suspending a running application.
    LocalAfterSuspension,
    /// VMs transferred from another VC that had them idle (bid = 0);
    /// the transfer is permanent — VCs are elastic.
    VcVms {
        /// The lending VC.
        from: VcId,
    },
    /// VMs lent by another VC after suspending one of its applications;
    /// they are given back when this application completes.
    VcVmsAfterSuspension {
        /// The lending VC.
        from: VcId,
    },
    /// VMs leased from a public cloud (cloud bursting).
    Cloud {
        /// The chosen cloud.
        cloud: CloudId,
    },
}

impl Placement {
    /// The Table 1 row this placement corresponds to.
    pub fn table1_case(&self) -> &'static str {
        match self {
            Placement::Local => "local-vm",
            Placement::LocalAfterSuspension => "local-vm after suspension",
            Placement::VcVms { .. } => "vc-vm",
            Placement::VcVmsAfterSuspension { .. } => "vc-vm after suspension",
            Placement::Cloud { .. } => "cloud-vm",
        }
    }

    /// True when the VMs are private-pool VMs.
    pub fn is_private(&self) -> bool {
        !matches!(self, Placement::Cloud { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(AppId(3).to_string(), "app3");
        assert_eq!(VcId(1).to_string(), "vc1");
    }

    #[test]
    fn table1_rows() {
        assert_eq!(Placement::Local.table1_case(), "local-vm");
        assert_eq!(Placement::VcVms { from: VcId(1) }.table1_case(), "vc-vm");
        assert_eq!(
            Placement::Cloud { cloud: CloudId(0) }.table1_case(),
            "cloud-vm"
        );
        assert_eq!(
            Placement::LocalAfterSuspension.table1_case(),
            "local-vm after suspension"
        );
        assert_eq!(
            Placement::VcVmsAfterSuspension { from: VcId(0) }.table1_case(),
            "vc-vm after suspension"
        );
    }

    #[test]
    fn privateness() {
        assert!(Placement::Local.is_private());
        assert!(Placement::VcVms { from: VcId(0) }.is_private());
        assert!(!Placement::Cloud { cloud: CloudId(1) }.is_private());
    }
}
