//! Algorithm 1 — the resource selection protocol.
//!
//! "The objective of the resource selection protocol is to find the VMs
//! with the cheapest cost to run a new application." The five outcomes,
//! in the paper's order:
//!
//! 1. the local VC has enough free VMs → run on *local-vms*;
//! 2. some other VC bids **zero** (it has idle VMs) → take its *vc-vms*;
//! 3. the local suspension bid is the global minimum → suspend a local
//!    application and reuse its VMs;
//! 4. another VC's suspension bid is the minimum → that VC suspends and
//!    lends;
//! 5. the cheapest cloud offer is the minimum → lease *cloud-vms*.
//!
//! This module owns the protocol's *vocabulary* — the [`Decision`] the
//! platform executes and the [`ProtocolParams`] knobs threaded from the
//! configuration. The *strategies* that produce decisions (the paper's
//! Algorithm 1, its static baseline, and any registered alternative)
//! live in [`crate::policy`]; [`select_resources`] runs one of them.

use meryn_sim::SimTime;
use meryn_sla::VmRate;
use meryn_vmm::{CloudId, PublicCloud};

use crate::bidding::BidRequest;
use crate::cluster_manager::VcView;
use crate::ids::{AppId, VcId};
use crate::policy::{BiddingPolicy, PlacementContext, PlacementPolicy};

/// What the placement policy decided for a new application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run on the local VC's free VMs (option 1).
    Local,
    /// Suspend `victim` locally and reuse its VMs (option 3).
    LocalAfterSuspension {
        /// The application to suspend.
        victim: AppId,
    },
    /// Take idle VMs from `src` at zero cost (option 2).
    FromVc {
        /// The providing VC.
        src: VcId,
    },
    /// Have `src` suspend `victim` and lend its VMs (option 4).
    FromVcAfterSuspension {
        /// The providing VC.
        src: VcId,
        /// The application it suspends.
        victim: AppId,
    },
    /// Lease from the cheapest cloud (option 5).
    Cloud {
        /// The chosen cloud.
        cloud: CloudId,
        /// Its current market rate (locked for the lease).
        rate: VmRate,
    },
    /// Nothing can provide the VMs now: queue in the local framework and
    /// wait for capacity (not in the paper's pseudocode, which assumes a
    /// cloud is always available; needed for cloudless deployments).
    Queue,
}

/// Protocol-wide knobs threaded from the platform configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolParams {
    /// Rate pricing Algorithm 2's minimal suspension cost.
    pub storage_rate: VmRate,
    /// When `false`, the standard bidding policy answers `Unable` where
    /// it would have offered a suspension — the platform never suspends
    /// (ablation A3's hard off switch).
    pub suspension_enabled: bool,
    /// What a private VM costs the provider per VM-second; policies that
    /// price the private estate (e.g. `cost-greedy`) read it here.
    pub private_cost: VmRate,
}

impl ProtocolParams {
    /// Default knobs with the given storage rate, suspension on and the
    /// paper's private VM cost (2 units/VM·s).
    pub fn new(storage_rate: VmRate) -> Self {
        ProtocolParams {
            storage_rate,
            suspension_enabled: true,
            private_cost: VmRate::per_vm_second(2),
        }
    }

    /// Replaces the private VM cost rate.
    pub fn with_private_cost(mut self, rate: VmRate) -> Self {
        self.private_cost = rate;
        self
    }
}

/// Runs `placement` for a request by VC `local` (the "local cluster
/// manager") at instant `now`, with VC shards answering through
/// `bidding`.
///
/// `shards` is one [`VcView`] per deployed VC in `VcId` order — the
/// shard context the sharded engine hands out instead of whole-platform
/// borrows.
#[allow(clippy::too_many_arguments)] // mirrors the paper's protocol inputs
pub fn select_resources(
    placement: &dyn PlacementPolicy,
    bidding: &dyn BiddingPolicy,
    local: VcId,
    shards: &[VcView<'_>],
    clouds: &[PublicCloud],
    req: BidRequest,
    now: SimTime,
    params: ProtocolParams,
) -> Decision {
    placement.decide(&PlacementContext {
        local,
        shards,
        clouds,
        req,
        now,
        params,
        bidding,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppMap, AppPhase, Application};
    use crate::cluster_manager::VirtualCluster;
    use crate::ids::Placement;
    use crate::policy::{self, StandardBidding};
    use meryn_frameworks::{BatchFramework, FrameworkKind, JobSpec, ScalingLaw};
    use meryn_sim::{SimDuration, SimRng};
    use meryn_sla::pricing::PricingParams;
    use meryn_sla::{AppTimes, Money, SlaContract, SlaTerms};
    use meryn_vmm::{HostTag, ImageId, LatencyModel, Location, PriceModel, VmId};

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    const STORAGE: VmRate = VmRate::from_micro(500_000);

    fn pricing() -> PricingParams {
        PricingParams::new(VmRate::per_vm_second(4), 1)
    }

    /// One view per VC, all sharing the test's single app map (a
    /// superset of each shard's own applications is fine for reads).
    fn views<'a>(vcs: &'a [VirtualCluster], apps: &'a AppMap) -> Vec<VcView<'a>> {
        vcs.iter().map(|vc| VcView { vc, apps }).collect()
    }

    /// Runs the named registered placement policy with standard bidding.
    fn decide(
        policy_name: &str,
        local: VcId,
        vcs: &[VirtualCluster],
        apps: &AppMap,
        clouds: &[PublicCloud],
        req: BidRequest,
        now: SimTime,
    ) -> Decision {
        let placement = policy::placement(policy_name).expect("policy registered");
        select_resources(
            placement.as_ref(),
            &StandardBidding,
            local,
            &views(vcs, apps),
            clouds,
            req,
            now,
            ProtocolParams::new(STORAGE),
        )
    }

    /// Builds a VC with `idle` idle slaves and `running` one-VM apps
    /// with the given deadlines. Returns the VC; apps are appended to
    /// the shared map with sequential ids starting at `next_app`.
    fn build_vc(
        id: usize,
        idle: u64,
        running_deadlines: &[u64],
        apps: &mut AppMap,
        next_app: &mut u64,
    ) -> VirtualCluster {
        let mut vc = VirtualCluster::new(
            VcId(id),
            format!("VC{id}"),
            FrameworkKind::Batch,
            ImageId(0),
            Box::new(BatchFramework::new()),
            pricing(),
        );
        let total = idle + running_deadlines.len() as u64;
        for i in 0..total {
            vc.add_slave(
                VmId::new(HostTag(id as u16 + 10), i),
                1.0,
                Location::Private,
                VmRate::per_vm_second(2),
            )
            .unwrap();
        }
        for &deadline in running_deadlines {
            let spec = JobSpec::Batch {
                work: d(1000),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            };
            let job = vc.framework.submit(spec, t(0)).unwrap();
            assert!(!vc.framework.try_dispatch(t(0)).is_empty());
            let app_id = AppId(*next_app);
            *next_app += 1;
            vc.job_to_app.insert(job, app_id);
            let mut times = AppTimes::submitted(t(0), d(1000), d(deadline));
            times.start(t(0));
            apps.insert(
                app_id,
                Application {
                    id: app_id,
                    vc: VcId(id),
                    spec,
                    contract: SlaContract::sign(
                        // Price high enough that the AtPrice penalty cap
                        // never interferes with bid comparisons here.
                        SlaTerms::new(d(deadline), Money::from_units(10_000), 1),
                        t(0),
                        pricing(),
                    ),
                    times,
                    job: Some(job),
                    placement: Placement::Local,
                    phase: AppPhase::Submitted,
                    framework_submitted_at: Some(t(0)),
                    cost: Money::ZERO,
                    negotiation_rounds: 1,
                    suspensions: 0,
                    violation_detected: None,
                },
            );
        }
        vc
    }

    fn cloud(price_units: i64) -> PublicCloud {
        let mut c = PublicCloud::new(
            CloudId(0),
            "test-cloud",
            PriceModel::Static(VmRate::per_vm_second(price_units)),
            LatencyModel::ZERO,
            LatencyModel::ZERO,
            1.0,
            None,
            SimRng::new(1),
        );
        c.stage_image(ImageId(0));
        c
    }

    fn req(nb: u64, dur: u64) -> BidRequest {
        BidRequest {
            nb_vms: nb,
            duration: d(dur),
        }
    }

    #[test]
    fn option1_local_vms_win_when_free() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 2, &[], &mut apps, &mut n),
            build_vc(1, 0, &[], &mut apps, &mut n),
        ];
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(4)],
            req(1, 1000),
            t(10),
        );
        assert_eq!(dec, Decision::Local);
    }

    #[test]
    fn option2_zero_bid_from_sibling() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[], &mut apps, &mut n),
            build_vc(1, 3, &[], &mut apps, &mut n),
        ];
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(4)],
            req(1, 1000),
            t(10),
        );
        assert_eq!(dec, Decision::FromVc { src: VcId(1) });
    }

    #[test]
    fn option3_local_suspension_when_cheapest() {
        // Local running app has a huge deadline (cheap to suspend);
        // sibling is empty-handed; cloud is expensive.
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[100_000], &mut apps, &mut n),
            build_vc(1, 0, &[], &mut apps, &mut n),
        ];
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(40)],
            req(1, 1000),
            t(10),
        );
        assert_eq!(dec, Decision::LocalAfterSuspension { victim: AppId(0) });
    }

    #[test]
    fn option4_sibling_suspension_when_cheapest() {
        // Local app is tight (expensive), sibling app is slack (cheap),
        // cloud expensive.
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[1_050], &mut apps, &mut n),
            build_vc(1, 0, &[100_000], &mut apps, &mut n),
        ];
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(40)],
            req(1, 1000),
            t(10),
        );
        assert_eq!(
            dec,
            Decision::FromVcAfterSuspension {
                src: VcId(1),
                victim: AppId(1)
            }
        );
    }

    #[test]
    fn option5_cloud_when_cheapest() {
        // Both VCs full with tight deadlines; cheap cloud.
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[1_050], &mut apps, &mut n),
            build_vc(1, 0, &[1_050], &mut apps, &mut n),
        ];
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(1)],
            req(1, 1000),
            t(10),
        );
        match dec {
            Decision::Cloud { rate, .. } => assert_eq!(rate, VmRate::per_vm_second(1)),
            other => panic!("expected cloud, got {other:?}"),
        }
    }

    #[test]
    fn cheapest_cloud_is_selected() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![build_vc(0, 0, &[], &mut apps, &mut n)];
        let mut c0 = cloud(8);
        let mut c1 = PublicCloud::new(
            CloudId(1),
            "cheap",
            PriceModel::Static(VmRate::per_vm_second(3)),
            LatencyModel::ZERO,
            LatencyModel::ZERO,
            1.0,
            None,
            SimRng::new(2),
        );
        c1.stage_image(ImageId(0));
        c0.stage_image(ImageId(0));
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[c0, c1],
            req(2, 1000),
            t(10),
        );
        assert_eq!(
            dec,
            Decision::Cloud {
                cloud: CloudId(1),
                rate: VmRate::per_vm_second(3)
            }
        );
    }

    #[test]
    fn static_mode_never_exchanges() {
        // Sibling has plenty of idle VMs, but static must burst.
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[], &mut apps, &mut n),
            build_vc(1, 10, &[], &mut apps, &mut n),
        ];
        let dec = decide(
            "static",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(4)],
            req(1, 1000),
            t(10),
        );
        assert!(matches!(dec, Decision::Cloud { .. }));
    }

    #[test]
    fn static_mode_still_uses_local_vms() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![build_vc(0, 1, &[], &mut apps, &mut n)];
        let dec = decide(
            "static",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(4)],
            req(1, 1000),
            t(10),
        );
        assert_eq!(dec, Decision::Local);
    }

    #[test]
    fn queue_when_nothing_available() {
        // No idle VMs, no running apps to suspend, no clouds.
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[], &mut apps, &mut n),
            build_vc(1, 0, &[], &mut apps, &mut n),
        ];
        for policy in [
            "meryn",
            "static",
            "never-burst",
            "always-burst",
            "cost-greedy",
        ] {
            let dec = decide(policy, VcId(0), &vcs, &apps, &[], req(1, 1000), t(10));
            assert_eq!(dec, Decision::Queue, "{policy}");
        }
    }

    #[test]
    fn paper_scenario_no_suspension_cloud_wins() {
        // Reproduces the evaluation's decision point: both VCs full of
        // near-deadline apps (free ≈ 200 s), cloud at 4 u/s, duration
        // 1754 s. Suspension bids ≈ storage 877 + (1754−200)×4 ≈ 7093;
        // cloud = 1754×4 = 7016 → cloud wins, no suspension.
        let mut apps = AppMap::default();
        let mut n = 0;
        // deadline 1200 on exec 1000 started at 0 → free = 200 at t=0.
        let vcs = vec![
            build_vc(0, 0, &[1200], &mut apps, &mut n),
            build_vc(1, 0, &[1200], &mut apps, &mut n),
        ];
        let dec = decide(
            "meryn",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(4)],
            req(1, 1754),
            t(0),
        );
        assert!(
            matches!(dec, Decision::Cloud { .. }),
            "suspension must be costlier than bursting here, got {dec:?}"
        );
    }

    #[test]
    fn never_burst_ignores_the_cloud() {
        // Sibling suspension is possible but pricey; a dirt-cheap cloud
        // exists — never-burst must still pick the suspension.
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[], &mut apps, &mut n),
            build_vc(1, 0, &[100_000], &mut apps, &mut n),
        ];
        let dec = decide(
            "never-burst",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(1)],
            req(1, 1000),
            t(10),
        );
        assert!(
            matches!(dec, Decision::FromVcAfterSuspension { .. }),
            "got {dec:?}"
        );
    }

    #[test]
    fn always_burst_leases_even_with_free_local_vms() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![build_vc(0, 5, &[], &mut apps, &mut n)];
        let dec = decide(
            "always-burst",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(4)],
            req(1, 1000),
            t(10),
        );
        assert!(matches!(dec, Decision::Cloud { .. }), "got {dec:?}");
        // Without a cloud it falls back to the free local VMs.
        let dec = decide(
            "always-burst",
            VcId(0),
            &vcs,
            &apps,
            &[],
            req(1, 1000),
            t(10),
        );
        assert_eq!(dec, Decision::Local);
    }

    #[test]
    fn cost_greedy_lets_a_cheap_cloud_outbid_free_local_vms() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![build_vc(0, 5, &[], &mut apps, &mut n)];
        // Cloud at 1 u/s beats the private cost of 2 u/s.
        let dec = decide(
            "cost-greedy",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(1)],
            req(1, 1000),
            t(10),
        );
        assert!(matches!(dec, Decision::Cloud { .. }), "got {dec:?}");
        // At an equal 2 u/s, the tie prefers the local option.
        let dec = decide(
            "cost-greedy",
            VcId(0),
            &vcs,
            &apps,
            &[cloud(2)],
            req(1, 1000),
            t(10),
        );
        assert_eq!(dec, Decision::Local);
    }

    #[test]
    fn free_only_bidding_never_offers_suspension() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[], &mut apps, &mut n),
            build_vc(1, 0, &[100_000], &mut apps, &mut n),
        ];
        let placement = policy::placement("meryn").unwrap();
        let bidding = policy::bidding("free-only").unwrap();
        // With standard bidding the sibling's cheap suspension would win
        // over the expensive cloud; free-only forces the burst.
        let dec = select_resources(
            placement.as_ref(),
            bidding.as_ref(),
            VcId(0),
            &views(&vcs, &apps),
            &[cloud(40)],
            req(1, 1000),
            t(10),
            ProtocolParams::new(STORAGE),
        );
        assert!(matches!(dec, Decision::Cloud { .. }), "got {dec:?}");
    }

    #[test]
    fn suspension_disabled_knob_downgrades_standard_bids() {
        let mut apps = AppMap::default();
        let mut n = 0;
        let vcs = vec![
            build_vc(0, 0, &[], &mut apps, &mut n),
            build_vc(1, 0, &[100_000], &mut apps, &mut n),
        ];
        let placement = policy::placement("meryn").unwrap();
        let mut params = ProtocolParams::new(STORAGE);
        params.suspension_enabled = false;
        let dec = select_resources(
            placement.as_ref(),
            &StandardBidding,
            VcId(0),
            &views(&vcs, &apps),
            &[cloud(40)],
            req(1, 1000),
            t(10),
            params,
        );
        assert!(matches!(dec, Decision::Cloud { .. }), "got {dec:?}");
    }
}
