//! The platform's discrete events.
//!
//! Every paper interaction with a real-world latency becomes one event
//! variant: submissions arriving, the Cluster Manager finishing its
//! processing pipeline, VM transfer steps (§3.4), cloud VM provisioning
//! (§3.5), job completions predicted by the frameworks, lent-VM returns
//! and Application Controller checks.

use meryn_frameworks::JobId;
use meryn_vmm::{CloudId, VmId};
use meryn_workloads::Submission;
use serde::{Deserialize, Serialize};

use crate::ids::{AppId, VcId};

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A user submission reaches the Client Manager.
    Arrival(Submission),
    /// The Cluster Manager finished processing the submission: the job
    /// enters the framework (possibly after suspension/transfer delays
    /// already elapsed).
    SubmitToFramework {
        /// The application being submitted.
        app: AppId,
    },
    /// One VM of an inbound transfer finished shutting down at the
    /// source (§3.4: source CM removes VMs, Resource Manager stops them).
    TransferVmStopped {
        /// The acquiring application.
        app: AppId,
        /// The stopped VM.
        vm: VmId,
    },
    /// One replacement VM finished booting with the destination VC's
    /// image (§3.4: destination CM starts and configures new VMs).
    TransferVmBooted {
        /// The acquiring application.
        app: AppId,
        /// The freshly booted VM.
        vm: VmId,
    },
    /// One leased cloud VM finished provisioning (§3.5).
    CloudVmReady {
        /// The acquiring application.
        app: AppId,
        /// The leased VM.
        vm: VmId,
    },
    /// A framework predicted this completion when it dispatched the job;
    /// stale epochs are dropped.
    JobFinished {
        /// The hosting VC.
        vc: VcId,
        /// The framework job.
        job: JobId,
        /// Dispatch epoch at scheduling time.
        epoch: u64,
    },
    /// One VM of a lent-VM return finished stopping at the borrower.
    ReturnVmStopped {
        /// Return choreography id.
        ret: u64,
        /// The stopped VM.
        vm: VmId,
    },
    /// One VM of a lent-VM return finished booting at the lender.
    ReturnVmBooted {
        /// Return choreography id.
        ret: u64,
        /// The freshly booted VM.
        vm: VmId,
    },
    /// A cloud VM finished releasing; the lease closes and is billed.
    CloudVmReleased {
        /// The cloud it belonged to.
        cloud: CloudId,
        /// The released VM.
        vm: VmId,
    },
    /// Periodic Application Controller SLA check.
    ControllerCheck {
        /// The monitored application.
        app: AppId,
    },
}

/// Which state machine owns an event under the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOwner {
    /// The executor's sequential control plane: arrivals (which read
    /// cross-shard state) and every choreography step that touches the
    /// shared fabric's pools and RNG streams.
    Control,
    /// A specific VC shard's local state machine.
    Shard(VcId),
    /// The shard hosting the given application (the executor resolves
    /// the `AppId → VcId` mapping it maintains).
    AppShard(AppId),
}

impl Event {
    /// Routes the event to its owning state machine.
    ///
    /// Shard-owned events are exactly those whose handlers mutate only
    /// their VC's framework, applications and stints — everything they
    /// need from the shared fabric travels back as typed
    /// [`crate::engine::Effect`]s, which is what makes the per-instant
    /// shard batches safe to process in parallel.
    pub fn owner(&self) -> EventOwner {
        match *self {
            Event::JobFinished { vc, .. } => EventOwner::Shard(vc),
            Event::SubmitToFramework { app } | Event::ControllerCheck { app } => {
                EventOwner::AppShard(app)
            }
            Event::Arrival(_)
            | Event::TransferVmStopped { .. }
            | Event::TransferVmBooted { .. }
            | Event::CloudVmReady { .. }
            | Event::ReturnVmStopped { .. }
            | Event::ReturnVmBooted { .. }
            | Event::CloudVmReleased { .. } => EventOwner::Control,
        }
    }
}
