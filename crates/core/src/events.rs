//! The platform's discrete events.
//!
//! Every paper interaction with a real-world latency becomes one event
//! variant: submissions arriving, the Cluster Manager finishing its
//! processing pipeline, VM transfer steps (§3.4), cloud VM provisioning
//! (§3.5), job completions predicted by the frameworks, lent-VM returns
//! and Application Controller checks.
//!
//! Choreography events are **coalesced**: one event marks the instant a
//! whole batch of per-VM stop/boot/provision ticks finishes (the batch
//! completes when its *slowest* member does — latencies are drawn per
//! VM, the event lands at the maximum). Each coalesced event expands
//! locally in its owning shard, so the sequential control plane owns
//! only arrivals and cloud-lease closes.

use meryn_frameworks::JobId;
use meryn_vmm::{CloudId, VmId};
use meryn_workloads::Submission;
use serde::{Deserialize, Serialize};

use crate::ids::{AppId, VcId};

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A user submission reaches its Client Manager. The executor
    /// resolves the target VC (and pre-assigns the `AppId`) from the
    /// deployment config at enqueue/stream-dispatch time, so the event
    /// lands directly in the owning shard's queue: type-checking,
    /// negotiation rounds and app registration all run in-shard, and
    /// only the cross-shard placement (Algorithm 1) travels back to the
    /// executor as an [`crate::engine::Effect`].
    Arrival {
        /// The pre-assigned application id (routing order).
        app: AppId,
        /// The user submission.
        sub: Submission,
    },
    /// The Cluster Manager finished processing the submission: the job
    /// enters the framework (possibly after suspension/transfer delays
    /// already elapsed).
    SubmitToFramework {
        /// The application being submitted.
        app: AppId,
    },
    /// Every VM of an inbound transfer finished shutting down at the
    /// source (§3.4: source CM removes VMs, Resource Manager stops
    /// them). The destination shard expands this into the replacement
    /// boots.
    TransferStopsDone {
        /// The acquiring application.
        app: AppId,
    },
    /// Every replacement VM finished booting with the destination VC's
    /// image (§3.4: destination CM starts and configures new VMs); the
    /// acquisition completes and the job starts pinned.
    TransferReady {
        /// The acquiring application.
        app: AppId,
    },
    /// Every leased cloud VM finished provisioning (§3.5); the
    /// acquisition completes and the job starts pinned.
    CloudVmsReady {
        /// The acquiring application.
        app: AppId,
    },
    /// A framework predicted this completion when it dispatched the job;
    /// stale epochs are dropped.
    JobFinished {
        /// The hosting VC.
        vc: VcId,
        /// The framework job.
        job: JobId,
        /// Dispatch epoch at scheduling time.
        epoch: u64,
    },
    /// Every VM of a lent-VM return finished stopping at the borrower;
    /// the lender's shard expands this into the reboots with its image.
    ReturnStopsDone {
        /// The lending VC.
        src: VcId,
        /// The suspended application awaiting its VMs.
        victim: AppId,
        /// The stopped VMs, stint order.
        vms: Vec<VmId>,
    },
    /// Every returned VM finished booting at the lender; the held
    /// victim requeues and the lender dispatches.
    ReturnReady {
        /// The lending VC.
        src: VcId,
        /// The suspended application awaiting its VMs.
        victim: AppId,
        /// The freshly booted VMs.
        vms: Vec<VmId>,
    },
    /// Every cloud VM of a finished application's lease batch completed
    /// releasing; the leases close and are billed.
    CloudReleased {
        /// The cloud they belonged to.
        cloud: CloudId,
        /// The released VMs.
        vms: Vec<VmId>,
    },
    /// Periodic Application Controller SLA check.
    ControllerCheck {
        /// The monitored application.
        app: AppId,
    },
    /// A slave VM of a running stint crashes (fault plane, seeded from
    /// the shard's dedicated fault stream at dispatch time). Stale
    /// epochs are dropped exactly like [`Event::JobFinished`]: if the
    /// stint completed or was torn down first, the crash never existed.
    VmCrash {
        /// The hosting VC.
        vc: VcId,
        /// The framework job whose stint the victim serves.
        job: JobId,
        /// Dispatch epoch at scheduling time.
        epoch: u64,
        /// Index of the victim within the stint's VM batch.
        slot: u32,
    },
    /// A replacement VM finished booting after a private-pool crash;
    /// the shard re-adds it as a slave and dispatches.
    CrashReplacementReady {
        /// The VC regaining capacity.
        vc: VcId,
        /// The freshly booted replacement VMs.
        vms: Vec<VmId>,
    },
    /// A deferred retry of a refused cloud escalation (fault plane):
    /// the backoff timer elapsed, re-run the SLA verdict and — if the
    /// application still needs the cloud — re-attempt the lease.
    LeaseRetry {
        /// The application whose escalation was refused.
        app: AppId,
        /// Which attempt this is (1-based; drives the backoff cap and
        /// the retry budget).
        attempt: u32,
    },
}

/// Which state machine owns an event under the sharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOwner {
    /// The executor's sequential control plane: cloud-lease closes
    /// (pure fabric billing, no shard state at all). Arrivals moved
    /// shard-side in PR 10; only streamed-arrival cursor advancement
    /// and lease closes remain control-plane.
    Control,
    /// A specific VC shard's local state machine.
    Shard(VcId),
    /// The shard hosting the given application (the executor resolves
    /// the `AppId → VcId` mapping it maintains).
    AppShard(AppId),
}

impl Event {
    /// Routes the event to its owning state machine.
    ///
    /// Shard-owned events are exactly those whose handlers mutate only
    /// their VC's framework, applications and stints — everything they
    /// need from the shared fabric travels back as typed
    /// [`crate::engine::Effect`]s, which is what makes the per-instant
    /// shard batches safe to process in parallel.
    pub fn owner(&self) -> EventOwner {
        match *self {
            Event::JobFinished { vc, .. }
            | Event::ReturnStopsDone { src: vc, .. }
            | Event::ReturnReady { src: vc, .. }
            | Event::VmCrash { vc, .. }
            | Event::CrashReplacementReady { vc, .. } => EventOwner::Shard(vc),
            Event::Arrival { app, .. }
            | Event::SubmitToFramework { app }
            | Event::ControllerCheck { app }
            | Event::TransferStopsDone { app }
            | Event::TransferReady { app }
            | Event::CloudVmsReady { app }
            | Event::LeaseRetry { app, .. } => EventOwner::AppShard(app),
            Event::CloudReleased { .. } => EventOwner::Control,
        }
    }
}
