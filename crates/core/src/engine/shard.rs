//! One Virtual Cluster's shard: its framework, applications, stints and
//! local event queue.
//!
//! A shard's handlers are the *framework-local* half of the old
//! platform loop: framework submission and dispatch, job completion
//! bookkeeping, SLA checks. They mutate only shard-owned state and emit
//! [`Effect`]s for everything else (billing, usage metrics, VM
//! tear-downs, follow-up events) — which is exactly what makes a batch
//! of same-instant events from *different* shards safe to process on
//! different worker threads.

use std::collections::BTreeMap;

use meryn_frameworks::{Dispatch, JobId};
use meryn_sim::{EventQueue, QueueSnapshot, SimDuration, SimRng, SimTime};
use meryn_sla::{Money, VmRate};
use meryn_vmm::{CloudId, LatencyModel, Location, VmId};
use serde::{Deserialize, Serialize};

use crate::app::{AppMap, AppPhase, Application};
use crate::client_manager::admit_routed;
use crate::cluster_manager::{VcSnapshot, VcView, VirtualCluster};
use crate::config::ViolationPolicy;
use crate::engine::effects::{Effect, EffectSink, SequencedEffect};
use crate::events::Event;
use crate::ids::{AppId, Placement, VcId};
use meryn_sla::AppTimes;
use meryn_workloads::Submission;

/// Aligns the next Application Controller check onto the global check
/// grid: the first multiple of `interval` strictly after `now`. All
/// live applications therefore check on shared instants — which is what
/// turns SLA monitoring into wide same-instant cross-shard runs the
/// executor can fan out, instead of one-event instants scattered by
/// arrival phase.
pub(crate) fn next_check(now: SimTime, interval: SimDuration) -> SimTime {
    let step = interval.as_millis().max(1);
    SimTime::from_millis((now.as_millis() / step + 1) * step)
}

/// One execution stint of a job: which VMs, since when, at what cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Stint {
    pub(crate) started: SimTime,
    pub(crate) vms: Vec<(VmId, Location, VmRate)>,
    /// Dispatch epoch the stint belongs to — the stale-guard for fault
    /// events: a crash drawn for this stint is dropped if the job was
    /// suspended and redispatched (new epoch) before it fired.
    pub(crate) epoch: u64,
}

/// Multi-step VM acquisition in flight for an application.
///
/// The per-VM ticks are coalesced: one event marks each batch boundary
/// (stops done, boots done, leases ready), so no outstanding-count is
/// tracked — `vms` holds the whole batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum PendingAcquisition {
    /// §3.4 transfer: VMs stopping at the source, then booting with the
    /// destination image. Holds the stopping VMs until the stop batch
    /// completes, then the booting replacements.
    Transfer { vms: Vec<VmId> },
    /// §3.5 bursting: leases provisioning. Rates were locked at
    /// `begin_lease`. For SLA escalations of an already-submitted job,
    /// `existing_job` carries the framework job to pin-start instead of
    /// submitting a new one.
    CloudLease {
        cloud: CloudId,
        vms: Vec<(VmId, VmRate)>,
        speed: f64,
        existing_job: Option<JobId>,
    },
}

/// The slice of the platform config a shard acts on locally: how SLA
/// verdicts are handled, the check cadence, and the private-VM rate
/// freshly booted slaves are added at.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardPolicy {
    pub(crate) violation_policy: ViolationPolicy,
    pub(crate) check_interval: Option<SimDuration>,
    pub(crate) private_cost: VmRate,
    /// [`crate::report::ReportMode::Aggregate`]: a finished job emits
    /// [`Effect::Retire`] so the executor folds the application into
    /// the run's aggregates and drops its per-app state (O(live)
    /// memory instead of O(history)).
    pub(crate) retire_on_completion: bool,
    /// Fault plane: mean time between failures of one slave VM, if VM
    /// crashes are enabled. Each dispatch draws the stint's first crash
    /// from the shard's dedicated fault stream.
    pub(crate) vm_mtbf: Option<SimDuration>,
    /// Quote-time slave speed assumption (SLA negotiation input).
    pub(crate) quote_speed: f64,
    /// Processing allowance added onto quoted deadlines.
    pub(crate) allowance: SimDuration,
    /// Negotiation round budget per submission.
    pub(crate) max_rounds: u32,
    /// Largest allocation a quote may propose (the private capacity).
    pub(crate) max_vms: u64,
    /// CM handling-latency model; arrivals draw from the shard's
    /// latency stream at admission.
    pub(crate) base_latency: LatencyModel,
    /// Extra-latency model for suspending a local victim; drawn
    /// unconditionally per arrival (see
    /// [`crate::engine::Effect::Place`]).
    pub(crate) suspend_local: LatencyModel,
    /// Extra-latency model for suspending a remote victim; drawn
    /// unconditionally per arrival.
    pub(crate) suspend_remote: LatencyModel,
}

/// A lending relationship: when the borrower finishes, `victim` (held
/// in `src`) gets its VMs back and resumes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub(crate) struct Lending {
    pub(crate) src: VcId,
    pub(crate) victim: AppId,
}

/// One Virtual Cluster's shard of the platform state.
pub struct VcShard {
    /// The cluster itself: framework master, slave bookkeeping, pricing.
    pub vc: VirtualCluster,
    /// The applications this VC hosts, by id.
    pub apps: AppMap,
    /// The shard-local event queue (globally-tagged; merged with its
    /// siblings by the executor).
    pub queue: EventQueue<Event>,
    /// Open execution stints by framework job.
    pub(crate) stints: BTreeMap<JobId, Stint>,
    /// In-flight multi-step acquisitions by application.
    pub(crate) pending: BTreeMap<AppId, PendingAcquisition>,
    /// Slave VMs reserved for an application whose submission pipeline
    /// is still in flight; the pinned submit claims them.
    pub(crate) acquired: BTreeMap<AppId, Vec<VmId>>,
    /// Outstanding lendings keyed by the borrowing application.
    pub(crate) lendings: BTreeMap<AppId, Lending>,
    /// The config slice this shard applies locally.
    pub(crate) policy: ShardPolicy,
    /// This shard's latency stream: `stream_seed(cfg.seed,
    /// SHARD_STREAM_BASE + vc)`. Arrival and acquisition-latency draws
    /// for this VC come from here, so one shard's draw sequence is a
    /// pure function of `(seed, vc)` — independent of every other VC's
    /// traffic.
    pub(crate) lat_rng: SimRng,
    /// This shard's fault stream: `stream_seed(cfg.seed,
    /// FAULT_STREAM_BASE + vc)`. Crash-hazard draws come from here, a
    /// stream *separate* from `lat_rng` — fault injection must not
    /// perturb the latency draw sequence, so a fault-enabled run stays
    /// comparable to its fault-free twin and faults-off runs stay
    /// byte-identical to pre-fault-plane baselines.
    pub(crate) fault_rng: SimRng,
    /// Logical ticks credited beyond the queue's own count: a coalesced
    /// choreography event stands for one tick per VM in its batch, and
    /// the extra `len - 1` land here so the "events processed" unit
    /// stays the per-VM tick it was before coalescing.
    pub(crate) extra_ticks: u64,
    /// Recycled `VmId` scratch buffers (see the PR-4 allocation notes:
    /// the steady-state dispatch cycle allocates nothing).
    vm_bufs: Vec<Vec<VmId>>,
    /// Recycled stint buffers.
    stint_bufs: Vec<Vec<(VmId, Location, VmRate)>>,
}

impl VcShard {
    /// Wraps a deployed cluster into an empty shard.
    pub(crate) fn new(
        vc: VirtualCluster,
        policy: ShardPolicy,
        lat_rng: SimRng,
        fault_rng: SimRng,
    ) -> Self {
        VcShard {
            vc,
            apps: AppMap::default(),
            queue: EventQueue::new(),
            stints: BTreeMap::new(),
            pending: BTreeMap::new(),
            acquired: BTreeMap::new(),
            lendings: BTreeMap::new(),
            policy,
            lat_rng,
            fault_rng,
            extra_ticks: 0,
            vm_bufs: Vec::new(),
            stint_bufs: Vec::new(),
        }
    }

    /// Draws one latency from `model` on this shard's RNG stream.
    pub(crate) fn sample(&mut self, model: LatencyModel) -> SimDuration {
        model.sample(&mut self.lat_rng)
    }

    /// This shard's id.
    pub fn id(&self) -> VcId {
        self.vc.id
    }

    /// The read-only window scheduling entry points receive.
    pub fn view(&self) -> VcView<'_> {
        VcView {
            vc: &self.vc,
            apps: &self.apps,
        }
    }

    /// Logical events this shard has processed (the per-shard counter
    /// surfaced by `scenario --bench`): the queue's own count plus the
    /// extra per-VM ticks coalesced choreography events stand for.
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed() + self.extra_ticks
    }

    /// Credits the extra logical ticks of a coalesced batch of `n` VMs
    /// (the queue already counted the event itself as one).
    fn credit_batch(&mut self, n: usize) {
        self.extra_ticks += (n as u64).saturating_sub(1);
    }

    // ---- scratch buffers --------------------------------------------------

    pub(crate) fn take_vm_buf(&mut self) -> Vec<VmId> {
        self.vm_bufs.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_vm_buf(&mut self, mut buf: Vec<VmId>) {
        buf.clear();
        self.vm_bufs.push(buf);
    }

    pub(crate) fn take_stint_buf(&mut self) -> Vec<(VmId, Location, VmRate)> {
        self.stint_bufs.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_stint_buf(&mut self, mut buf: Vec<(VmId, Location, VmRate)>) {
        buf.clear();
        self.stint_bufs.push(buf);
    }

    // ---- the shard's slice of one time step -------------------------------

    /// Processes this shard's slice of a same-instant batch, in global
    /// seq order. Effects are collected into the recycled `effects`
    /// buffer; both buffers come back (events cleared) so the executor
    /// can pool them.
    pub(crate) fn process(
        &mut self,
        due: SimTime,
        mut events: Vec<(u64, Event)>,
        effects: Vec<SequencedEffect>,
    ) -> (Vec<(u64, Event)>, Vec<SequencedEffect>) {
        let mut sink = EffectSink::with_buffer(due, self.vc.id, 0, effects);
        for (seq, ev) in events.drain(..) {
            sink.set_seq(seq);
            self.handle(due, ev, &mut sink);
        }
        (events, sink.into_effects())
    }

    /// Dispatches one shard-owned event.
    pub(crate) fn handle(&mut self, now: SimTime, ev: Event, sink: &mut EffectSink) {
        match ev {
            Event::Arrival { app, sub } => self.on_arrival(now, app, sub, sink),
            Event::SubmitToFramework { app } => self.on_submit(now, app, sink),
            Event::JobFinished { vc, job, epoch } => {
                debug_assert_eq!(vc, self.vc.id, "misrouted completion");
                self.on_job_finished(now, job, epoch, sink);
            }
            Event::ControllerCheck { app } => self.check_sla(now, app, sink),
            Event::TransferStopsDone { app } => self.on_transfer_stops_done(app, sink),
            Event::TransferReady { app } => self.on_transfer_ready(now, app, sink),
            Event::CloudVmsReady { app } => self.on_cloud_vms_ready(now, app, sink),
            Event::ReturnStopsDone { src, victim, vms } => {
                debug_assert_eq!(src, self.vc.id, "misrouted return");
                self.credit_batch(vms.len());
                sink.emit(Effect::ReturnStopped { src, victim, vms });
            }
            Event::ReturnReady { src, victim, vms } => {
                debug_assert_eq!(src, self.vc.id, "misrouted return");
                self.on_return_ready(now, victim, vms, sink);
            }
            Event::VmCrash {
                vc,
                job,
                epoch,
                slot,
            } => {
                debug_assert_eq!(vc, self.vc.id, "misrouted crash");
                self.on_vm_crash(now, job, epoch, slot, sink);
            }
            Event::CrashReplacementReady { vc, vms } => {
                debug_assert_eq!(vc, self.vc.id, "misrouted replacement");
                self.on_crash_replacement_ready(now, vms, sink);
            }
            Event::LeaseRetry { app, attempt } => self.sla_verdict(now, app, Some(attempt), sink),
            other => unreachable!("control event routed to a shard: {other:?}"),
        }
    }

    // ---- admission (PR 10: shard-side) ------------------------------------

    /// Admits a pre-routed submission entirely in-shard: type check,
    /// negotiation rounds, contract signing, app registration and the
    /// CM handling-latency draw (from this shard's stream). Only the
    /// cross-shard placement — Algorithm 1 over every VC's view plus
    /// the cloud market — travels back as [`Effect::Place`], applied by
    /// the executor at this event's canonical position. A failed
    /// admission emits [`Effect::Rejected`] so the fabric tally stays
    /// executor-owned.
    fn on_arrival(&mut self, now: SimTime, app_id: AppId, sub: Submission, sink: &mut EffectSink) {
        let admitted = admit_routed(
            &sub,
            &self.vc,
            now,
            self.policy.quote_speed,
            self.policy.allowance,
            self.policy.max_rounds,
            self.policy.max_vms,
        );
        let (spec, contract, rounds) = match admitted {
            Ok(x) => x,
            Err(_) => {
                sink.emit(Effect::Rejected);
                return;
            }
        };
        let quoted_exec = self
            .vc
            .framework
            .estimate_exec(&spec, spec.nb_vms(), self.policy.quote_speed, true)
            .unwrap_or_else(|e| unreachable!("admission type-checked the spec: {e:?}"));
        self.apps.insert(
            app_id,
            Application {
                id: app_id,
                vc: self.vc.id,
                spec,
                contract,
                times: AppTimes::submitted(now, quoted_exec, contract.terms.deadline),
                job: None,
                // Provisional: Effect::Place records Algorithm 1's pick.
                placement: Placement::Local,
                phase: AppPhase::Acquiring,
                framework_submitted_at: None,
                cost: Money::ZERO,
                negotiation_rounds: rounds,
                suspensions: 0,
                violation_detected: None,
            },
        );
        // The latency draws stay on the *destination* shard's stream,
        // exactly where the control-plane pipeline drew them: a VC's
        // draw sequence is a pure function of its own arrival history.
        // The suspension extras are drawn *unconditionally* — whether
        // one is consumed depends on the placement decision the
        // executor has not made yet, and drawing both here keeps the
        // stream sequence identical between the batch barrier and the
        // single-step path.
        let handling = self.sample(self.policy.base_latency);
        let suspend_local = self.sample(self.policy.suspend_local);
        let suspend_remote = self.sample(self.policy.suspend_remote);
        sink.emit(Effect::Place {
            app: app_id,
            handling,
            quoted_exec,
            suspend_local,
            suspend_remote,
        });
    }

    // ---- framework hand-off -----------------------------------------------

    fn on_submit(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        match self.acquired.remove(&app_id) {
            Some(vms) => self.submit_pinned_now(now, app_id, vms, sink),
            None => self.submit_queued(now, app_id, sink),
        }
    }

    /// Hands the job to the framework queue (Queue decisions: no VMs
    /// were acquired for it; it waits its FIFO turn).
    fn submit_queued(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        let spec = self.apps[&app_id].spec;
        let job = self
            .vc
            .framework
            .submit(spec, now)
            .expect("admission type-checked the spec");
        self.vc.job_to_app.insert(job, app_id);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.job = Some(job);
        app.framework_submitted_at = Some(now);
        app.phase = AppPhase::Submitted;
        self.dispatch(now, sink);
    }

    /// Starts the job immediately on the exact VMs Algorithm 1 acquired
    /// for it — transferred, lent, leased or locally reserved VMs are
    /// dedicated to the requesting application.
    pub(crate) fn submit_pinned_now(
        &mut self,
        now: SimTime,
        app_id: AppId,
        vms: Vec<VmId>,
        sink: &mut EffectSink,
    ) {
        let spec = self.apps[&app_id].spec;
        let (job, dispatch) = self
            .vc
            .framework
            .submit_pinned(spec, &vms, now)
            .expect("acquired VMs are idle slaves of the right framework");
        self.recycle_vm_buf(vms);
        self.vc.job_to_app.insert(job, app_id);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.job = Some(job);
        app.framework_submitted_at = Some(now);
        app.phase = AppPhase::Submitted;
        self.register_dispatch(now, dispatch, sink);
    }

    /// Lets the framework start whatever fits and schedules the
    /// predicted completions.
    pub(crate) fn dispatch(&mut self, now: SimTime, sink: &mut EffectSink) {
        let dispatches = self.vc.framework.try_dispatch(now);
        for d in dispatches {
            self.register_dispatch(now, d, sink);
        }
    }

    /// Records one job start: billing stint, used-VM deltas, Fig. 4
    /// times, and the predicted completion event.
    pub(crate) fn register_dispatch(&mut self, now: SimTime, d: Dispatch, sink: &mut EffectSink) {
        let app_id = self.vc.app_of(d.job);
        let mut vms = self.take_stint_buf();
        vms.extend(d.vms.iter().map(|vm| {
            let meta = self
                .vc
                .slave_meta
                .get(vm)
                .expect("dispatched slave has meta");
            (*vm, meta.location, meta.cost_rate)
        }));
        let (mut dp, mut dc) = (0i64, 0i64);
        for &(_, loc, _) in &vms {
            match loc {
                Location::Private => dp += 1,
                Location::Cloud(_) => dc += 1,
            }
        }
        sink.emit(Effect::Usage {
            private_delta: dp,
            cloud_delta: dc,
        });
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.times.start(now);
        let done = app.times.progress_t(now);
        app.times.set_exec_t(done + d.exec_total);
        let stint_size = vms.len();
        self.stints.insert(
            d.job,
            Stint {
                started: now,
                vms,
                epoch: d.epoch,
            },
        );
        sink.emit(Effect::Schedule {
            due: d.finish_at,
            event: Event::JobFinished {
                vc: self.vc.id,
                job: d.job,
                epoch: d.epoch,
            },
        });
        if let Some(mtbf) = self.policy.vm_mtbf {
            // The minimum of `k` independent exponential clocks with
            // mean `mtbf` is exponential with mean `mtbf / k`; the
            // victim slot is uniform. Exactly two fault-stream draws
            // per dispatch, crash or not — the stream's consumption is
            // a pure function of the dispatch sequence, never of
            // outcomes, which keeps fault runs thread-count-invariant.
            let delay = self
                .fault_rng
                .exponential(mtbf.scale(1.0 / stint_size as f64));
            let slot = self.fault_rng.index(stint_size) as u32;
            let crash_at = now + delay;
            if crash_at < d.finish_at {
                sink.emit(Effect::Schedule {
                    due: crash_at,
                    event: Event::VmCrash {
                        vc: self.vc.id,
                        job: d.job,
                        epoch: d.epoch,
                        slot,
                    },
                });
            }
        }
    }

    // ---- completion -------------------------------------------------------

    /// Closes a job's execution stint: computes each VM interval's cost
    /// (a pure function of dispatch instant and rate), books it onto
    /// the application, and emits the ledger charges plus the used-VM
    /// deltas. Returns the stint's VMs.
    pub(crate) fn close_stint(
        &mut self,
        now: SimTime,
        job: JobId,
        sink: &mut EffectSink,
    ) -> Vec<(VmId, Location, VmRate)> {
        let stint = self
            .stints
            .remove(&job)
            .expect("running job has an open stint");
        let app_id = self.vc.app_of(job);
        let mut total = Money::ZERO;
        let (mut dp, mut dc) = (0i64, 0i64);
        for &(vm, loc, rate) in &stint.vms {
            total += rate.cost_for(now.since(stint.started));
            sink.emit(Effect::Charge {
                vm,
                location: loc,
                from: stint.started,
                rate,
            });
            match loc {
                Location::Private => dp -= 1,
                Location::Cloud(_) => dc -= 1,
            }
        }
        self.apps.get_mut(&app_id).expect("app exists").cost += total;
        sink.emit(Effect::Usage {
            private_delta: dp,
            cloud_delta: dc,
        });
        stint.vms
    }

    /// Suspends `victim` (running in this VC), holding it for later
    /// requeue. Returns the freed VMs.
    pub(crate) fn suspend_app(
        &mut self,
        now: SimTime,
        victim: AppId,
        sink: &mut EffectSink,
    ) -> Vec<VmId> {
        let job = self.apps[&victim].job.expect("running victim has a job");
        let closed = self.close_stint(now, job, sink);
        self.recycle_stint_buf(closed);
        let freed = self
            .vc
            .framework
            .suspend_and_hold(job, now)
            .expect("protocol only suspends running jobs");
        let app = self.apps.get_mut(&victim).expect("victim exists");
        app.times.suspend(now);
        app.suspensions += 1;
        freed
    }

    fn on_job_finished(&mut self, now: SimTime, job: JobId, epoch: u64, sink: &mut EffectSink) {
        if !self.vc.job_to_app.contains_key(&job) {
            return; // stale completion: the job was retired meanwhile
        }
        let done = self
            .vc
            .framework
            .on_finished(job, epoch, now)
            .expect("job known to its framework");
        if done.is_none() {
            return; // stale completion: the job was suspended meanwhile
        }
        let app_id = self.vc.app_of(job);
        let stint_vms = self.close_stint(now, job, sink);

        {
            let app = self.apps.get_mut(&app_id).expect("app exists");
            // Bank the final stint's progress, then mark completion.
            app.times.suspend(now);
            app.phase = AppPhase::Completed { at: now };
        }

        match self.apps[&app_id].placement {
            Placement::Cloud { cloud } => {
                let mut vms = Vec::with_capacity(stint_vms.len());
                for (vm, _, _) in &stint_vms {
                    self.vc
                        .remove_slave(*vm)
                        .expect("finished job's slaves are idle");
                    vms.push(*vm);
                }
                sink.emit(Effect::ReleaseCloud { cloud, vms });
            }
            Placement::LocalAfterSuspension => {
                let lending = self
                    .lendings
                    .remove(&app_id)
                    .expect("local suspension recorded a lending");
                let victim_job = self.apps[&lending.victim]
                    .job
                    .expect("held victim has a job");
                self.vc
                    .framework
                    .requeue_held(victim_job)
                    .expect("victim was held");
            }
            Placement::VcVmsAfterSuspension { from } => {
                let lending = self
                    .lendings
                    .remove(&app_id)
                    .expect("vc suspension recorded a lending");
                debug_assert_eq!(lending.src, from);
                let mut vms = Vec::with_capacity(stint_vms.len());
                for (vm, _, _) in &stint_vms {
                    self.vc
                        .remove_slave(*vm)
                        .expect("finished job's slaves are idle");
                    vms.push(*vm);
                }
                sink.emit(Effect::ReturnVms {
                    src: from,
                    victim: lending.victim,
                    vms,
                });
            }
            Placement::Local | Placement::VcVms { .. } => {}
        }
        self.recycle_stint_buf(stint_vms);
        self.dispatch(now, sink);
        if self.policy.retire_on_completion {
            // Aggregate mode: ask the executor to fold this application
            // into the run tallies and drop its state. Emitted after the
            // dispatch so the retirement applies at its canonical
            // position — identical at every thread count.
            sink.emit(Effect::Retire { app: app_id, job });
        }
    }

    // ---- coalesced choreography -------------------------------------------

    /// A transfer's stop batch finished at the source: hand the stopped
    /// VMs to the executor, which completes the pool stops and begins
    /// the replacement boots (canonical-order pool RNG work).
    fn on_transfer_stops_done(&mut self, app_id: AppId, sink: &mut EffectSink) {
        let Some(PendingAcquisition::Transfer { vms }) = self.pending.get_mut(&app_id) else {
            unreachable!("transfer event for non-transfer pending")
        };
        let vms = std::mem::take(vms);
        self.credit_batch(vms.len());
        sink.emit(Effect::TransferStopped { app: app_id, vms });
    }

    /// A transfer's boot batch finished: the replacements join this VC
    /// as slaves and the job starts pinned on exactly these VMs.
    fn on_transfer_ready(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        let Some(PendingAcquisition::Transfer { vms }) = self.pending.remove(&app_id) else {
            unreachable!("transfer event for non-transfer pending")
        };
        self.credit_batch(vms.len());
        let rate = self.policy.private_cost;
        for &vm in &vms {
            self.vc
                .add_slave(vm, 1.0, Location::Private, rate)
                .expect("fresh transferred slave is unique");
        }
        sink.emit(Effect::CompleteStarts { vms: vms.clone() });
        self.submit_pinned_now(now, app_id, vms, sink);
    }

    /// A cloud lease batch finished provisioning: the leases join this
    /// VC as slaves and the job starts pinned (or, for an SLA
    /// escalation, the withdrawn job restarts on them).
    fn on_cloud_vms_ready(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        let Some(PendingAcquisition::CloudLease {
            cloud,
            vms,
            speed,
            existing_job,
        }) = self.pending.remove(&app_id)
        else {
            unreachable!("cloud event for non-cloud pending")
        };
        self.credit_batch(vms.len());
        let mut ids = self.take_vm_buf();
        ids.extend(vms.iter().map(|&(vm, _)| vm));
        for (vm, rate) in vms {
            self.vc
                .add_slave(vm, speed, Location::Cloud(cloud), rate)
                .expect("fresh leased slave is unique");
        }
        sink.emit(Effect::CompleteLeases {
            cloud,
            vms: ids.clone(),
        });
        match existing_job {
            None => self.submit_pinned_now(now, app_id, ids, sink),
            Some(job) => {
                // SLA escalation: the job already exists and was
                // withdrawn from the queue; start it on the leases.
                let dispatch = self
                    .vc
                    .framework
                    .start_withdrawn_pinned(job, &ids, now)
                    .expect("withdrawn job starts on its leases");
                self.recycle_vm_buf(ids);
                self.register_dispatch(now, dispatch, sink);
            }
        }
    }

    /// A return's boot batch finished at this (lending) VC: the VMs
    /// rejoin as slaves, the held victim requeues, and the framework
    /// dispatches whatever now fits.
    fn on_return_ready(
        &mut self,
        now: SimTime,
        victim: AppId,
        vms: Vec<VmId>,
        sink: &mut EffectSink,
    ) {
        self.credit_batch(vms.len());
        let rate = self.policy.private_cost;
        for &vm in &vms {
            self.vc
                .add_slave(vm, 1.0, Location::Private, rate)
                .expect("fresh returned slave is unique");
        }
        sink.emit(Effect::CompleteStarts { vms });
        let victim_job = self.apps[&victim].job.expect("held victim has a job");
        self.vc
            .framework
            .requeue_held(victim_job)
            .expect("victim was held");
        self.dispatch(now, sink);
    }

    // ---- fault plane ------------------------------------------------------

    /// A slave VM of `job`'s stint crashes. The stint's progress is
    /// lost (no checkpoint survives a crashed VM): the stint closes
    /// billed through the crash instant, the job re-enters the queue at
    /// the front for full re-execution, and the victim leaves the
    /// estate via [`Effect::VmCrashed`] — the executor terminates it
    /// and, for a private victim, boots a replacement so the VC's
    /// capacity is conserved. Stints are homogeneous, so a *cloud*
    /// victim takes its whole lease batch down with it: the surviving
    /// leases release and the requeued job falls back to the private
    /// estate.
    fn on_vm_crash(
        &mut self,
        now: SimTime,
        job: JobId,
        epoch: u64,
        slot: u32,
        sink: &mut EffectSink,
    ) {
        match self.stints.get(&job) {
            Some(stint) if stint.epoch == epoch => {}
            // Stale crash: the stint completed, or the job was
            // suspended and redispatched (new epoch), before it fired.
            _ => return,
        }
        let app_id = self.vc.app_of(job);
        let stint_vms = self.close_stint(now, job, sink);
        let freed = self
            .vc
            .framework
            .fail_running(job)
            .unwrap_or_else(|e| unreachable!("crashed stint's job is running: {e:?}"));
        debug_assert_eq!(freed.len(), stint_vms.len(), "stint and framework agree");
        {
            // Bank the wasted wall time: `times` honestly reflects that
            // the re-execution starts from scratch.
            let Some(app) = self.apps.get_mut(&app_id) else {
                unreachable!("crashed job's app exists")
            };
            app.times.suspend(now);
        }
        let (victim, victim_loc, _) = stint_vms[slot as usize % stint_vms.len()];
        match victim_loc {
            Location::Private => {
                self.vc
                    .remove_slave(victim)
                    .unwrap_or_else(|e| unreachable!("crashed slave is idle: {e:?}"));
                sink.emit(Effect::VmCrashed {
                    vm: victim,
                    location: victim_loc,
                });
            }
            Location::Cloud(cloud) => {
                let mut rest = Vec::with_capacity(stint_vms.len() - 1);
                for &(vm, _, _) in &stint_vms {
                    self.vc
                        .remove_slave(vm)
                        .unwrap_or_else(|e| unreachable!("crashed stint's slaves are idle: {e:?}"));
                    if vm != victim {
                        rest.push(vm);
                    }
                }
                sink.emit(Effect::VmCrashed {
                    vm: victim,
                    location: victim_loc,
                });
                if !rest.is_empty() {
                    sink.emit(Effect::ReleaseCloud { cloud, vms: rest });
                }
                let Some(app) = self.apps.get_mut(&app_id) else {
                    unreachable!("crashed job's app exists")
                };
                app.placement = Placement::Local;
            }
        }
        self.recycle_stint_buf(stint_vms);
        self.dispatch(now, sink);
    }

    /// A replacement VM finished booting after a private-pool crash:
    /// it rejoins this VC as a slave and the framework dispatches
    /// whatever now fits — typically the job the crash requeued.
    fn on_crash_replacement_ready(&mut self, now: SimTime, vms: Vec<VmId>, sink: &mut EffectSink) {
        self.credit_batch(vms.len());
        let rate = self.policy.private_cost;
        for &vm in &vms {
            self.vc
                .add_slave(vm, 1.0, Location::Private, rate)
                .unwrap_or_else(|e| unreachable!("fresh replacement slave is unique: {e:?}"));
        }
        sink.emit(Effect::CompleteStarts { vms });
        self.dispatch(now, sink);
    }

    // ---- SLA monitoring ---------------------------------------------------

    /// One Application Controller check, run entirely shard-side.
    ///
    /// Everything the old control-plane path decided from shard state
    /// is decided here: a completed application retires its controller;
    /// a verdict that wants cloud attention — escalation policy, job
    /// submitted, no acquisition in flight — emits
    /// [`Effect::Escalate`] for the executor (only the market
    /// transaction leaves the shard); a violated report-mode verdict is
    /// recorded locally and the check retires; everything else re-arms
    /// on the next global check tick.
    pub(crate) fn check_sla(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        self.sla_verdict(now, app_id, None, sink);
    }

    /// The SLA decision surface behind both [`VcShard::check_sla`] and
    /// the fault plane's [`crate::events::Event::LeaseRetry`]: identical
    /// verdicts, but a retry re-asks the market through
    /// [`Effect::LeaseRetry`] (carrying the attempt for the executor's
    /// backoff budget) instead of [`Effect::Escalate`]. A retry whose
    /// application recovered meanwhile — completed, dispatched with
    /// margin, or mid-acquisition — simply falls through to the normal
    /// retire/re-arm outcomes, ending the backoff chain.
    fn sla_verdict(
        &mut self,
        now: SimTime,
        app_id: AppId,
        retry_attempt: Option<u32>,
        sink: &mut EffectSink,
    ) {
        let Some(interval) = self.policy.check_interval else {
            return; // unmonitored deployment: nothing ever arms a check
        };
        let Some(app) = self.apps.get(&app_id) else {
            return; // aggregate mode already retired the application
        };
        if app.is_completed() {
            return; // controller retires with its application
        }
        let status = meryn_sla::violation::check(&app.contract, &app.times, now);
        if status.needs_attention()
            && self.policy.violation_policy == ViolationPolicy::EscalateToCloud
            && app.job.is_some()
            && !self.pending.contains_key(&app_id)
        {
            // The market decides; on failure the executor falls back to
            // the mark-or-re-arm below using `violated`.
            match retry_attempt {
                None => sink.emit(Effect::Escalate {
                    app: app_id,
                    violated: status.is_violated(),
                }),
                Some(attempt) => sink.emit(Effect::LeaseRetry {
                    app: app_id,
                    violated: status.is_violated(),
                    attempt,
                }),
            }
            return;
        }
        if status.is_violated() {
            // Report once and retire: the violation is now the Cluster
            // Manager's problem (§3.3) — and a never-completing job must
            // not keep the event loop alive forever.
            let app = self.apps.get_mut(&app_id).expect("app exists");
            if app.violation_detected.is_none() {
                app.violation_detected = Some(now);
            }
            return;
        }
        sink.emit(Effect::Schedule {
            due: next_check(now, interval),
            event: Event::ControllerCheck { app: app_id },
        });
    }

    // ---- checkpointing ----------------------------------------------------

    /// Captures this shard's full state. Scratch buffers are transient
    /// by construction (always empty between events) and are not
    /// captured; [`ShardPolicy`] is rebuilt from the platform config at
    /// restore.
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            vc: self.vc.snapshot(),
            apps: self.apps.clone(),
            queue: self.queue.snapshot(),
            stints: self.stints.clone(),
            pending: self.pending.clone(),
            acquired: self.acquired.clone(),
            lendings: self.lendings.clone(),
            lat_rng: self.lat_rng.clone(),
            fault_rng: self.fault_rng.clone(),
            extra_ticks: self.extra_ticks,
        }
    }

    /// Rebuilds the live shard a snapshot was taken from.
    pub(crate) fn from_snapshot(snap: ShardSnapshot, policy: ShardPolicy) -> Self {
        VcShard {
            vc: snap.vc.into_cluster(),
            apps: snap.apps,
            queue: EventQueue::from_snapshot(snap.queue),
            stints: snap.stints,
            pending: snap.pending,
            acquired: snap.acquired,
            lendings: snap.lendings,
            policy,
            lat_rng: snap.lat_rng,
            fault_rng: snap.fault_rng,
            extra_ticks: snap.extra_ticks,
            vm_bufs: Vec::new(),
            stint_bufs: Vec::new(),
        }
    }
}

/// A [`VcShard`]'s serializable state (checkpoint form).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSnapshot {
    vc: VcSnapshot,
    apps: AppMap,
    queue: QueueSnapshot<Event>,
    stints: BTreeMap<JobId, Stint>,
    pending: BTreeMap<AppId, PendingAcquisition>,
    acquired: BTreeMap<AppId, Vec<VmId>>,
    lendings: BTreeMap<AppId, Lending>,
    lat_rng: SimRng,
    fault_rng: SimRng,
    extra_ticks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Application;
    use crate::ids::Placement;
    use meryn_frameworks::{BatchFramework, FrameworkKind, JobSpec, ScalingLaw};
    use meryn_sla::pricing::PricingParams;
    use meryn_sla::{AppTimes, SlaContract, SlaTerms};
    use meryn_vmm::ImageId;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn shard(policy: ViolationPolicy, interval: Option<u64>) -> VcShard {
        let vc = VirtualCluster::new(
            VcId(0),
            "VC1",
            FrameworkKind::Batch,
            ImageId(0),
            Box::new(BatchFramework::new()),
            PricingParams::new(VmRate::per_vm_second(2), 2),
        );
        VcShard::new(
            vc,
            ShardPolicy {
                violation_policy: policy,
                check_interval: interval.map(d),
                private_cost: VmRate::per_vm_second(2),
                retire_on_completion: false,
                vm_mtbf: None,
                quote_speed: 1.0,
                allowance: d(84),
                max_rounds: 8,
                max_vms: 25,
                base_latency: LatencyModel::ZERO,
                suspend_local: LatencyModel::ZERO,
                suspend_remote: LatencyModel::ZERO,
            },
            SimRng::new(SimRng::stream_seed(0xC0FFEE, 1 << 32)),
            SimRng::new(SimRng::stream_seed(0xC0FFEE, 2 << 32)),
        )
    }

    /// Submitted at 0 s, 1000 s of work, 1100 s deadline — the same
    /// shape `meryn_sla::violation`'s own tests use, so each `now`
    /// below lands on a known [`meryn_sla::SlaStatus`].
    fn app(id: AppId) -> Application {
        let pricing = PricingParams::new(VmRate::per_vm_second(2), 2);
        Application {
            id,
            vc: VcId(0),
            spec: JobSpec::Batch {
                work: d(1000),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            },
            contract: SlaContract::sign(
                SlaTerms::new(d(1100), Money::from_units(2000), 1),
                t(0),
                pricing,
            ),
            times: AppTimes::submitted(t(0), d(1000), d(1100)),
            job: None,
            placement: Placement::Local,
            phase: AppPhase::Acquiring,
            framework_submitted_at: None,
            cost: Money::ZERO,
            negotiation_rounds: 1,
            suspensions: 0,
            violation_detected: None,
        }
    }

    /// What one check must do — the full decision surface of the old
    /// control-plane path, which the shard-local port must reproduce.
    #[derive(Debug, PartialEq)]
    enum Expect {
        /// Hand the case to the cloud market, nothing else.
        Escalate { violated: bool },
        /// Re-arm the controller on the global check grid.
        Rearm { due: u64 },
        /// Emit nothing and leave the application untouched.
        Retire,
        /// Emit nothing; record the violation instant locally.
        Mark,
    }

    struct Case {
        name: &'static str,
        policy: ViolationPolicy,
        /// Execution start instant, if dispatched.
        started: Option<u64>,
        /// Check instant (seconds).
        now: u64,
        completed: bool,
        has_job: bool,
        /// Whether a multi-step acquisition is already in flight.
        pending: bool,
        expect: Expect,
    }

    /// Escalations leave the shard exactly when the old control plane
    /// would have gone to the cloud market: the verdict needs
    /// attention, escalation is the configured policy, a framework job
    /// exists to act on, and no acquisition is already in flight.
    /// Every other verdict resolves silently inside the shard.
    #[test]
    fn check_sla_escalates_exactly_when_the_market_would_act() {
        use ViolationPolicy::{EscalateToCloud, Report};
        let cases = [
            Case {
                name: "completed app retires its controller",
                policy: EscalateToCloud,
                started: Some(50),
                now: 500,
                completed: true,
                has_job: true,
                pending: false,
                expect: Expect::Retire,
            },
            Case {
                name: "on-track check re-arms on the 30 s grid",
                policy: EscalateToCloud,
                started: Some(50),
                // Predicted completion 1050 < 1100: margin to spare.
                now: 100,
                completed: false,
                has_job: true,
                pending: false,
                expect: Expect::Rearm { due: 120 },
            },
            Case {
                name: "at-risk job goes to the market before the deadline",
                policy: EscalateToCloud,
                // Started 200 s late: predicted 1200 > deadline 1100.
                started: Some(200),
                now: 200,
                completed: false,
                has_job: true,
                pending: false,
                expect: Expect::Escalate { violated: false },
            },
            Case {
                name: "past-deadline job goes to the market flagged violated",
                policy: EscalateToCloud,
                started: Some(200),
                now: 1200,
                completed: false,
                has_job: true,
                pending: false,
                expect: Expect::Escalate { violated: true },
            },
            Case {
                name: "at-risk without a framework job just re-arms",
                policy: EscalateToCloud,
                started: Some(200),
                now: 200,
                completed: false,
                has_job: false,
                pending: false,
                expect: Expect::Rearm { due: 210 },
            },
            Case {
                name: "at-risk with an acquisition in flight re-arms",
                policy: EscalateToCloud,
                started: Some(200),
                now: 200,
                completed: false,
                has_job: true,
                pending: true,
                expect: Expect::Rearm { due: 210 },
            },
            Case {
                name: "report mode records the violation and retires",
                policy: Report,
                started: Some(200),
                now: 1200,
                completed: false,
                has_job: true,
                pending: false,
                expect: Expect::Mark,
            },
            Case {
                name: "violated but jobless app is marked, not escalated",
                policy: EscalateToCloud,
                started: Some(200),
                now: 1200,
                completed: false,
                has_job: false,
                pending: false,
                expect: Expect::Mark,
            },
        ];
        for case in cases {
            let mut shard = shard(case.policy, Some(30));
            let id = AppId(7);
            let mut a = app(id);
            if let Some(s) = case.started {
                a.times.start(t(s));
            }
            if case.completed {
                a.phase = AppPhase::Completed { at: t(case.now) };
            }
            if case.has_job {
                a.job = Some(JobId(3));
            }
            shard.apps.insert(id, a);
            if case.pending {
                shard
                    .pending
                    .insert(id, PendingAcquisition::Transfer { vms: Vec::new() });
            }
            let mut sink = EffectSink::new(t(case.now), VcId(0), 1);
            shard.check_sla(t(case.now), id, &mut sink);
            let effects = sink.into_effects();
            match case.expect {
                Expect::Escalate { violated } => {
                    assert_eq!(effects.len(), 1, "{}: exactly one effect", case.name);
                    assert_eq!(
                        effects[0].effect,
                        Effect::Escalate { app: id, violated },
                        "{}",
                        case.name
                    );
                }
                Expect::Rearm { due } => {
                    assert_eq!(effects.len(), 1, "{}: exactly one effect", case.name);
                    assert_eq!(
                        effects[0].effect,
                        Effect::Schedule {
                            due: t(due),
                            event: Event::ControllerCheck { app: id },
                        },
                        "{}",
                        case.name
                    );
                }
                Expect::Retire | Expect::Mark => {
                    assert!(effects.is_empty(), "{}: must emit nothing", case.name);
                }
            }
            let marked = shard.apps[&id].violation_detected;
            if case.expect == Expect::Mark {
                assert_eq!(marked, Some(t(case.now)), "{}: records now", case.name);
            } else {
                assert_eq!(marked, None, "{}: must not mark", case.name);
            }
        }
    }

    #[test]
    fn check_sla_keeps_the_first_detection_instant() {
        let mut shard = shard(ViolationPolicy::Report, Some(30));
        let id = AppId(1);
        let mut a = app(id);
        a.times.start(t(200));
        a.violation_detected = Some(t(1130));
        shard.apps.insert(id, a);
        let mut sink = EffectSink::new(t(1200), VcId(0), 1);
        shard.check_sla(t(1200), id, &mut sink);
        assert!(sink.into_effects().is_empty());
        assert_eq!(
            shard.apps[&id].violation_detected,
            Some(t(1130)),
            "a later check must not overwrite the first detection"
        );
    }

    #[test]
    fn check_sla_is_inert_on_unmonitored_deployments() {
        let mut shard = shard(ViolationPolicy::EscalateToCloud, None);
        let id = AppId(2);
        let mut a = app(id);
        a.times.start(t(200));
        a.job = Some(JobId(3));
        shard.apps.insert(id, a);
        // Even a long-violated application draws no reaction: nothing
        // ever arms checks, so none may fire effects.
        let mut sink = EffectSink::new(t(5000), VcId(0), 1);
        shard.check_sla(t(5000), id, &mut sink);
        assert!(sink.into_effects().is_empty());
        assert_eq!(shard.apps[&id].violation_detected, None);
    }
}
