//! One Virtual Cluster's shard: its framework, applications, stints and
//! local event queue.
//!
//! A shard's handlers are the *framework-local* half of the old
//! platform loop: framework submission and dispatch, job completion
//! bookkeeping, SLA checks. They mutate only shard-owned state and emit
//! [`Effect`]s for everything else (billing, usage metrics, VM
//! tear-downs, follow-up events) — which is exactly what makes a batch
//! of same-instant events from *different* shards safe to process on
//! different worker threads.

use std::collections::BTreeMap;

use meryn_frameworks::{Dispatch, JobId};
use meryn_sim::{EventQueue, SimTime};
use meryn_sla::{Money, VmRate};
use meryn_vmm::{CloudId, Location, VmId};

use crate::app::{AppPhase, Application};
use crate::cluster_manager::{VcView, VirtualCluster};
use crate::engine::effects::{Effect, EffectSink, SequencedEffect};
use crate::events::Event;
use crate::ids::{AppId, Placement, VcId};

/// One execution stint of a job: which VMs, since when, at what cost.
#[derive(Debug, Clone)]
pub(crate) struct Stint {
    pub(crate) started: SimTime,
    pub(crate) vms: Vec<(VmId, Location, VmRate)>,
}

/// Multi-step VM acquisition in flight for an application.
#[derive(Debug, Clone)]
pub(crate) enum PendingAcquisition {
    /// §3.4 transfer: VMs stopping at the source, then booting with the
    /// destination image. `awaiting` counts boots still outstanding.
    Transfer { awaiting: u64, vms: Vec<VmId> },
    /// §3.5 bursting: leases provisioning. Rates were locked at
    /// `begin_lease`. For SLA escalations of an already-submitted job,
    /// `existing_job` carries the framework job to pin-start instead of
    /// submitting a new one.
    CloudLease {
        cloud: CloudId,
        awaiting: u64,
        vms: Vec<(VmId, VmRate)>,
        speed: f64,
        existing_job: Option<JobId>,
    },
}

/// A lending relationship: when the borrower finishes, `victim` (held
/// in `src`) gets its VMs back and resumes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lending {
    pub(crate) src: VcId,
    pub(crate) victim: AppId,
}

/// One Virtual Cluster's shard of the platform state.
pub struct VcShard {
    /// The cluster itself: framework master, slave bookkeeping, pricing.
    pub vc: VirtualCluster,
    /// The applications this VC hosts, by id.
    pub apps: BTreeMap<AppId, Application>,
    /// The shard-local event queue (globally-tagged; merged with its
    /// siblings by the executor).
    pub queue: EventQueue<Event>,
    /// Open execution stints by framework job.
    pub(crate) stints: BTreeMap<JobId, Stint>,
    /// In-flight multi-step acquisitions by application.
    pub(crate) pending: BTreeMap<AppId, PendingAcquisition>,
    /// Slave VMs reserved for an application whose submission pipeline
    /// is still in flight; the pinned submit claims them.
    pub(crate) acquired: BTreeMap<AppId, Vec<VmId>>,
    /// Outstanding lendings keyed by the borrowing application.
    pub(crate) lendings: BTreeMap<AppId, Lending>,
    /// Recycled `VmId` scratch buffers (see the PR-4 allocation notes:
    /// the steady-state dispatch cycle allocates nothing).
    vm_bufs: Vec<Vec<VmId>>,
    /// Recycled stint buffers.
    stint_bufs: Vec<Vec<(VmId, Location, VmRate)>>,
}

impl VcShard {
    /// Wraps a deployed cluster into an empty shard.
    pub fn new(vc: VirtualCluster) -> Self {
        VcShard {
            vc,
            apps: BTreeMap::new(),
            queue: EventQueue::new(),
            stints: BTreeMap::new(),
            pending: BTreeMap::new(),
            acquired: BTreeMap::new(),
            lendings: BTreeMap::new(),
            vm_bufs: Vec::new(),
            stint_bufs: Vec::new(),
        }
    }

    /// This shard's id.
    pub fn id(&self) -> VcId {
        self.vc.id
    }

    /// The read-only window scheduling entry points receive.
    pub fn view(&self) -> VcView<'_> {
        VcView {
            vc: &self.vc,
            apps: &self.apps,
        }
    }

    /// Events this shard's queue has processed (the per-shard counter
    /// surfaced by `scenario --bench`).
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }

    // ---- scratch buffers --------------------------------------------------

    pub(crate) fn take_vm_buf(&mut self) -> Vec<VmId> {
        self.vm_bufs.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_vm_buf(&mut self, mut buf: Vec<VmId>) {
        buf.clear();
        self.vm_bufs.push(buf);
    }

    pub(crate) fn take_stint_buf(&mut self) -> Vec<(VmId, Location, VmRate)> {
        self.stint_bufs.pop().unwrap_or_default()
    }

    pub(crate) fn recycle_stint_buf(&mut self, mut buf: Vec<(VmId, Location, VmRate)>) {
        buf.clear();
        self.stint_bufs.push(buf);
    }

    // ---- the shard's slice of one time step -------------------------------

    /// Processes this shard's slice of a same-instant batch, in global
    /// seq order. Effects are collected into the recycled `effects`
    /// buffer; both buffers come back (events cleared) so the executor
    /// can pool them.
    pub(crate) fn process(
        &mut self,
        due: SimTime,
        mut events: Vec<(u64, Event)>,
        effects: Vec<SequencedEffect>,
    ) -> (Vec<(u64, Event)>, Vec<SequencedEffect>) {
        let mut sink = EffectSink::with_buffer(due, self.vc.id, 0, effects);
        for (seq, ev) in events.drain(..) {
            sink.set_seq(seq);
            self.handle(due, ev, &mut sink);
        }
        (events, sink.into_effects())
    }

    /// Dispatches one shard-owned event.
    pub(crate) fn handle(&mut self, now: SimTime, ev: Event, sink: &mut EffectSink) {
        match ev {
            Event::SubmitToFramework { app } => self.on_submit(now, app, sink),
            Event::JobFinished { vc, job, epoch } => {
                debug_assert_eq!(vc, self.vc.id, "misrouted completion");
                self.on_job_finished(now, job, epoch, sink);
            }
            Event::ControllerCheck { app } => self.on_controller_check(now, app, sink),
            other => unreachable!("control event routed to a shard: {other:?}"),
        }
    }

    // ---- framework hand-off -----------------------------------------------

    fn on_submit(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        match self.acquired.remove(&app_id) {
            Some(vms) => self.submit_pinned_now(now, app_id, vms, sink),
            None => self.submit_queued(now, app_id, sink),
        }
    }

    /// Hands the job to the framework queue (Queue decisions: no VMs
    /// were acquired for it; it waits its FIFO turn).
    fn submit_queued(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        let spec = self.apps[&app_id].spec;
        let job = self
            .vc
            .framework
            .submit(spec, now)
            .expect("admission type-checked the spec");
        self.vc.job_to_app.insert(job, app_id);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.job = Some(job);
        app.framework_submitted_at = Some(now);
        app.phase = AppPhase::Submitted;
        self.dispatch(now, sink);
    }

    /// Starts the job immediately on the exact VMs Algorithm 1 acquired
    /// for it — transferred, lent, leased or locally reserved VMs are
    /// dedicated to the requesting application.
    pub(crate) fn submit_pinned_now(
        &mut self,
        now: SimTime,
        app_id: AppId,
        vms: Vec<VmId>,
        sink: &mut EffectSink,
    ) {
        let spec = self.apps[&app_id].spec;
        let (job, dispatch) = self
            .vc
            .framework
            .submit_pinned(spec, &vms, now)
            .expect("acquired VMs are idle slaves of the right framework");
        self.recycle_vm_buf(vms);
        self.vc.job_to_app.insert(job, app_id);
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.job = Some(job);
        app.framework_submitted_at = Some(now);
        app.phase = AppPhase::Submitted;
        self.register_dispatch(now, dispatch, sink);
    }

    /// Lets the framework start whatever fits and schedules the
    /// predicted completions.
    pub(crate) fn dispatch(&mut self, now: SimTime, sink: &mut EffectSink) {
        let dispatches = self.vc.framework.try_dispatch(now);
        for d in dispatches {
            self.register_dispatch(now, d, sink);
        }
    }

    /// Records one job start: billing stint, used-VM deltas, Fig. 4
    /// times, and the predicted completion event.
    pub(crate) fn register_dispatch(&mut self, now: SimTime, d: Dispatch, sink: &mut EffectSink) {
        let app_id = self.vc.app_of(d.job);
        let mut vms = self.take_stint_buf();
        vms.extend(d.vms.iter().map(|vm| {
            let meta = self
                .vc
                .slave_meta
                .get(vm)
                .expect("dispatched slave has meta");
            (*vm, meta.location, meta.cost_rate)
        }));
        let (mut dp, mut dc) = (0i64, 0i64);
        for &(_, loc, _) in &vms {
            match loc {
                Location::Private => dp += 1,
                Location::Cloud(_) => dc += 1,
            }
        }
        sink.emit(Effect::Usage {
            private_delta: dp,
            cloud_delta: dc,
        });
        let app = self.apps.get_mut(&app_id).expect("app exists");
        app.times.start(now);
        let done = app.times.progress_t(now);
        app.times.set_exec_t(done + d.exec_total);
        self.stints.insert(d.job, Stint { started: now, vms });
        sink.emit(Effect::Schedule {
            due: d.finish_at,
            event: Event::JobFinished {
                vc: self.vc.id,
                job: d.job,
                epoch: d.epoch,
            },
        });
    }

    // ---- completion -------------------------------------------------------

    /// Closes a job's execution stint: computes each VM interval's cost
    /// (a pure function of dispatch instant and rate), books it onto
    /// the application, and emits the ledger charges plus the used-VM
    /// deltas. Returns the stint's VMs.
    pub(crate) fn close_stint(
        &mut self,
        now: SimTime,
        job: JobId,
        sink: &mut EffectSink,
    ) -> Vec<(VmId, Location, VmRate)> {
        let stint = self
            .stints
            .remove(&job)
            .expect("running job has an open stint");
        let app_id = self.vc.app_of(job);
        let mut total = Money::ZERO;
        let (mut dp, mut dc) = (0i64, 0i64);
        for &(vm, loc, rate) in &stint.vms {
            total += rate.cost_for(now.since(stint.started));
            sink.emit(Effect::Charge {
                vm,
                location: loc,
                from: stint.started,
                rate,
            });
            match loc {
                Location::Private => dp -= 1,
                Location::Cloud(_) => dc -= 1,
            }
        }
        self.apps.get_mut(&app_id).expect("app exists").cost += total;
        sink.emit(Effect::Usage {
            private_delta: dp,
            cloud_delta: dc,
        });
        stint.vms
    }

    /// Suspends `victim` (running in this VC), holding it for later
    /// requeue. Returns the freed VMs.
    pub(crate) fn suspend_app(
        &mut self,
        now: SimTime,
        victim: AppId,
        sink: &mut EffectSink,
    ) -> Vec<VmId> {
        let job = self.apps[&victim].job.expect("running victim has a job");
        let closed = self.close_stint(now, job, sink);
        self.recycle_stint_buf(closed);
        let freed = self
            .vc
            .framework
            .suspend_and_hold(job, now)
            .expect("protocol only suspends running jobs");
        let app = self.apps.get_mut(&victim).expect("victim exists");
        app.times.suspend(now);
        app.suspensions += 1;
        freed
    }

    fn on_job_finished(&mut self, now: SimTime, job: JobId, epoch: u64, sink: &mut EffectSink) {
        let done = self
            .vc
            .framework
            .on_finished(job, epoch, now)
            .expect("job known to its framework");
        if done.is_none() {
            return; // stale completion: the job was suspended meanwhile
        }
        let app_id = self.vc.app_of(job);
        let stint_vms = self.close_stint(now, job, sink);

        {
            let app = self.apps.get_mut(&app_id).expect("app exists");
            // Bank the final stint's progress, then mark completion.
            app.times.suspend(now);
            app.phase = AppPhase::Completed { at: now };
        }

        match self.apps[&app_id].placement {
            Placement::Cloud { cloud } => {
                let mut vms = Vec::with_capacity(stint_vms.len());
                for (vm, _, _) in &stint_vms {
                    self.vc
                        .remove_slave(*vm)
                        .expect("finished job's slaves are idle");
                    vms.push(*vm);
                }
                sink.emit(Effect::ReleaseCloud { cloud, vms });
            }
            Placement::LocalAfterSuspension => {
                let lending = self
                    .lendings
                    .remove(&app_id)
                    .expect("local suspension recorded a lending");
                let victim_job = self.apps[&lending.victim]
                    .job
                    .expect("held victim has a job");
                self.vc
                    .framework
                    .requeue_held(victim_job)
                    .expect("victim was held");
            }
            Placement::VcVmsAfterSuspension { from } => {
                let lending = self
                    .lendings
                    .remove(&app_id)
                    .expect("vc suspension recorded a lending");
                debug_assert_eq!(lending.src, from);
                let mut vms = Vec::with_capacity(stint_vms.len());
                for (vm, _, _) in &stint_vms {
                    self.vc
                        .remove_slave(*vm)
                        .expect("finished job's slaves are idle");
                    vms.push(*vm);
                }
                sink.emit(Effect::ReturnVms {
                    src: from,
                    victim: lending.victim,
                    vms,
                });
            }
            Placement::Local | Placement::VcVms { .. } => {}
        }
        self.recycle_stint_buf(stint_vms);
        self.dispatch(now, sink);
    }

    // ---- SLA monitoring ---------------------------------------------------

    fn on_controller_check(&mut self, now: SimTime, app_id: AppId, sink: &mut EffectSink) {
        let app = self.apps.get(&app_id).expect("app exists");
        if app.is_completed() {
            return; // controller retires with its application
        }
        let status = meryn_sla::violation::check(&app.contract, &app.times, now);
        sink.emit(Effect::ControllerVerdict {
            app: app_id,
            needs_attention: status.needs_attention(),
            violated: status.is_violated(),
        });
    }
}
