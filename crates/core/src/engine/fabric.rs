//! The shared fabric: everything exactly-one-of in the platform.
//!
//! Private pool, public clouds, billing ledger, the used-VM metrics,
//! the Client-Manager front-end queue and the latency RNG. Shards never
//! touch any of it directly — they emit [`Effect`]s, and the fabric
//! consumes them one at a time on the executor's thread, in canonical
//! `(due, vc_id, seq)` order. That single-threaded, canonically-ordered
//! consumption is what keeps the RNG streams (pool stop/boot, cloud
//! provision/release draws) and the ledger deterministic no matter how
//! the emitting shards were scheduled.

use meryn_sim::metrics::StepSeries;
use meryn_sim::{SimDuration, SimRng, SimTime};
use meryn_sla::Money;
use meryn_vmm::{ImageRegistry, Ledger, PrivatePool, PublicCloud};
use serde::{Deserialize, Serialize};

use crate::engine::effects::Effect;
use crate::events::Event;

/// The platform's shared, singleton state.
///
/// Serializable as a whole: a checkpoint captures the pool and cloud
/// states (including their RNG stream positions), the ledger, the usage
/// metrics and the front-end queue, so a restored run observes the
/// exact fabric the interrupted one would have.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedFabric {
    /// The provider-owned VM pool.
    pub pool: PrivatePool,
    /// The public cloud market.
    pub clouds: Vec<PublicCloud>,
    #[allow(dead_code)]
    pub(crate) images: ImageRegistry,
    /// The billing ledger.
    pub ledger: Ledger,
    pub(crate) cloud_bill: Money,
    // Metrics.
    busy_private: u64,
    busy_cloud: u64,
    /// Running maxima of the busy counters. The report's peak fields
    /// come from these, so peaks survive even when curve recording is
    /// gated off. Same-instant transients are coalesced exactly like
    /// [`StepSeries::record`] coalesces them — only the *final* value
    /// of an instant is observable — via the pending `usage_*` trio.
    peak_busy_private: u64,
    peak_busy_cloud: u64,
    usage_at: SimTime,
    usage_private: u64,
    usage_cloud: u64,
    /// Whether the used-VM step curves are sampled (peaks always are).
    pub(crate) record_series: bool,
    pub(crate) used_private: StepSeries,
    pub(crate) used_cloud: StepSeries,
    pub(crate) transfers: u64,
    pub(crate) bursts: u64,
    pub(crate) suspensions: u64,
    pub(crate) escalations: u64,
    pub(crate) rejected: usize,
    // Fault-plane tallies (all zero unless a failure process is armed;
    // serialized unconditionally — checkpoints are same-version
    // artifacts, and a faults-off *report* omits them entirely).
    /// Slave VMs crashed mid-stint.
    pub(crate) vm_crashes: u64,
    /// Crash victims on the private pool (each boots a replacement).
    pub(crate) crashed_private: u64,
    /// Crash victims on cloud leases (the whole lease batch tears down).
    pub(crate) crashed_cloud: u64,
    /// Jobs whose stint was discarded and re-entered the queue.
    pub(crate) jobs_reexecuted: u64,
    /// Cloud-lease admissions refused (outage window or transient
    /// rejection), counted on the arrival and escalation paths alike.
    pub(crate) lease_rejections: u64,
    /// Backed-off escalation retries armed.
    pub(crate) lease_retries: u64,
    /// Backoff chains that ran out of budget and degraded to the
    /// private pool for good.
    pub(crate) retries_exhausted: u64,
    /// Per-Client-Manager earliest-free instants (empty = unbounded
    /// front-end concurrency).
    cm_free_at: Vec<SimTime>,
    /// The residual control-plane latency stream (`master.fork(2)`).
    /// Since the per-shard streams took over the arrival and
    /// acquisition draws, nothing draws from it in the shipped engine —
    /// it stays reserved so embedders driving the fabric directly keep
    /// a deterministic stream of their own and the constructor
    /// signature stays stable.
    #[allow(dead_code)]
    lat_rng: SimRng,
}

impl SharedFabric {
    /// Assembles the fabric around an already-deployed pool and cloud
    /// market.
    ///
    /// Public for the engine's property tests and for embedders that
    /// drive the effect stream directly; the normal path is
    /// [`crate::engine::ShardExecutor::new`].
    pub fn new(
        pool: PrivatePool,
        clouds: Vec<PublicCloud>,
        images: ImageRegistry,
        client_managers: Option<usize>,
        lat_rng: SimRng,
    ) -> Self {
        SharedFabric {
            pool,
            clouds,
            images,
            ledger: Ledger::new(),
            cloud_bill: Money::ZERO,
            busy_private: 0,
            busy_cloud: 0,
            peak_busy_private: 0,
            peak_busy_cloud: 0,
            usage_at: SimTime::ZERO,
            usage_private: 0,
            usage_cloud: 0,
            record_series: true,
            used_private: StepSeries::new("used_private_vms"),
            used_cloud: StepSeries::new("used_cloud_vms"),
            transfers: 0,
            bursts: 0,
            suspensions: 0,
            escalations: 0,
            rejected: 0,
            vm_crashes: 0,
            crashed_private: 0,
            crashed_cloud: 0,
            jobs_reexecuted: 0,
            lease_rejections: 0,
            lease_retries: 0,
            retries_exhausted: 0,
            cm_free_at: vec![SimTime::ZERO; client_managers.unwrap_or(0)],
            lat_rng,
        }
    }

    /// Front-end delay for one submission: the Client Manager handling
    /// time plus, when Client Managers are a bounded resource, the wait
    /// for one to become free. The busiest-period behaviour §3.2 warns
    /// about emerges when a single CM serializes a burst of arrivals.
    pub(crate) fn cm_delay(&mut self, now: SimTime, handling: SimDuration) -> SimDuration {
        if self.cm_free_at.is_empty() {
            return handling; // unbounded front end
        }
        let idx = self
            .cm_free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one Client Manager");
        let start = self.cm_free_at[idx].max_of(now);
        let done = start + handling;
        self.cm_free_at[idx] = done;
        done.since(now)
    }

    fn record_usage(&mut self, now: SimTime) {
        // Commit the previous instant's *final* values into the peaks
        // before observing a new instant; a same-instant re-record
        // overwrites the pending observation instead, exactly like the
        // step series coalesces same-instant samples.
        if now > self.usage_at {
            self.peak_busy_private = self.peak_busy_private.max(self.usage_private);
            self.peak_busy_cloud = self.peak_busy_cloud.max(self.usage_cloud);
            self.usage_at = now;
        }
        self.usage_private = self.busy_private;
        self.usage_cloud = self.busy_cloud;
        if self.record_series {
            self.used_private.record(now, self.busy_private as f64);
            self.used_cloud.record(now, self.busy_cloud as f64);
        }
    }

    /// Peak busy counters with the still-pending last observation
    /// folded in (the report's Fig 5 headline numbers).
    pub(crate) fn peaks(&self) -> (u64, u64) {
        (
            self.peak_busy_private.max(self.usage_private),
            self.peak_busy_cloud.max(self.usage_cloud),
        )
    }

    /// Applies one fabric-directed effect at instant `now`, appending
    /// any follow-up events to schedule onto `out`.
    ///
    /// [`Effect::Escalate`], [`Effect::TransferStopped`] and
    /// [`Effect::ReturnStopped`] are *not* handled here — acting on
    /// them reads shard state or schedules onto shard queues with pool
    /// draws interleaved, so the executor owns them.
    pub fn apply(&mut self, now: SimTime, effect: Effect, out: &mut Vec<(SimTime, Event)>) {
        match effect {
            Effect::Charge {
                vm,
                location,
                from,
                rate,
            } => {
                self.ledger.charge(vm, location, from, now, rate);
            }
            Effect::Usage {
                private_delta,
                cloud_delta,
            } => {
                self.busy_private = self
                    .busy_private
                    .checked_add_signed(private_delta)
                    .expect("busy private VMs never go negative");
                self.busy_cloud = self
                    .busy_cloud
                    .checked_add_signed(cloud_delta)
                    .expect("busy cloud VMs never go negative");
                self.record_usage(now);
            }
            Effect::Schedule { due, event } => out.push((due, event)),
            Effect::ReleaseCloud { cloud, vms } => {
                // The batch closes when its slowest release does.
                let mut done = SimDuration::ZERO;
                for vm in &vms {
                    let rel = self.clouds[cloud.0 as usize]
                        .begin_release(*vm, now)
                        .expect("leased VM can release");
                    done = done.max_of(rel);
                }
                out.push((now + done, Event::CloudReleased { cloud, vms }));
            }
            Effect::ReturnVms { src, victim, vms } => {
                let mut done = SimDuration::ZERO;
                for vm in &vms {
                    let stop = self
                        .pool
                        .begin_stop(*vm, now)
                        .expect("borrowed private VM can stop");
                    done = done.max_of(stop);
                }
                out.push((now + done, Event::ReturnStopsDone { src, victim, vms }));
            }
            Effect::CompleteStarts { vms } => {
                for vm in vms {
                    self.pool
                        .complete_start(vm, now)
                        .expect("booted VM completes start");
                }
            }
            Effect::CompleteLeases { cloud, vms } => {
                for vm in vms {
                    self.clouds[cloud.0 as usize]
                        .complete_lease(vm, now)
                        .expect("lease completes");
                }
            }
            Effect::Escalate { .. }
            | Effect::LeaseRetry { .. }
            | Effect::TransferStopped { .. }
            | Effect::Retire { .. } => {
                unreachable!(
                    "escalations, lease retries, transfer batches and retirements are applied \
                     by the executor"
                )
            }
            Effect::ReturnStopped { .. } => {
                unreachable!("return batches are applied by the executor")
            }
            Effect::VmCrashed { .. } => {
                unreachable!("crash recovery is applied by the executor")
            }
            Effect::Place { .. } | Effect::Rejected => {
                unreachable!("admission outcomes are applied by the executor")
            }
        }
    }

    /// Current usage counters (used by the executor's debug assertions
    /// and the engine tests).
    pub fn busy(&self) -> (u64, u64) {
        (self.busy_private, self.busy_cloud)
    }

    /// Audits the fabric's conservation invariants, promoting the hot
    /// path's `debug_assert`s to release-mode checks: the pool and
    /// every cloud recount their active counters against VM states,
    /// and the busy counters (VMs doing work) can't exceed the VMs
    /// holding resources. Meant for quiescent points — after a restore,
    /// after a run drains — where any violation means a state-machine
    /// or snapshot bug, not a transient.
    pub fn audit_invariants(&self) -> Result<(), String> {
        self.pool.audit()?;
        for cloud in &self.clouds {
            cloud.audit()?;
        }
        let pool_active = self.pool.active_count();
        if self.busy_private > pool_active {
            return Err(format!(
                "busy private counter desynced: {} busy vs {pool_active} active in the pool",
                self.busy_private
            ));
        }
        let cloud_active: u64 = self.clouds.iter().map(PublicCloud::active_count).sum();
        if self.busy_cloud > cloud_active {
            return Err(format!(
                "busy cloud counter desynced: {} busy vs {cloud_active} active across clouds",
                self.busy_cloud
            ));
        }
        Ok(())
    }
}
