//! The sharded simulation engine.
//!
//! PR 4 made one simulation fast; this module makes it *decomposable*.
//! The former `Platform` monolith — one `&mut self` event loop mutating
//! every subsystem — is split into three state machines with explicit
//! boundaries, following the component-per-actor shape of discrete-event
//! frameworks like dslab and the piecewise-deterministic event semantics
//! the underlying model has always had:
//!
//! * [`VcShard`] — one per Virtual Cluster. Owns the framework master,
//!   the applications the VC hosts, their execution stints, in-flight
//!   acquisitions and a **shard-local calendar event queue** (the PR-4
//!   [`meryn_sim::EventQueue`]). Shard handlers mutate *only* shard
//!   state; anything they need from the shared world is emitted as a
//!   typed [`Effect`].
//! * [`SharedFabric`] — the singletons: private pool, public clouds,
//!   billing ledger, usage metrics, Client-Manager queue and the latency
//!   RNG. It consumes effects; it never calls into shards.
//! * [`ShardExecutor`] — owns both plus a sequential control queue
//!   (arrivals and VM-lifecycle choreography, which read cross-shard
//!   state or draw from fabric RNG streams). Per time step it drains the
//!   same-instant batch of shard events, processes each shard's slice
//!   independently — **in parallel through the rayon shim when the batch
//!   spans shards** — and then applies the collected effects
//!   sequentially in canonical `(due, vc_id, seq)` order.
//!
//! Determinism is by construction, not by luck: shard processing touches
//! disjoint state, effect application is single-threaded in a canonical
//! order, and every event carries a globally-unique sequence tag handed
//! out by one counter — so reports are bit-identical at
//! `RAYON_NUM_THREADS=1` and N, and the executor's batched loop agrees
//! with the one-event-at-a-time [`ShardExecutor::step`] path.

mod effects;
mod executor;
mod fabric;
mod shard;

pub use effects::{Effect, EffectKey, EffectSink, SequencedEffect};
pub use executor::{EngineCheckpoint, ShardExecutor, StreamError};
pub use fabric::SharedFabric;
pub use shard::{ShardSnapshot, VcShard};
