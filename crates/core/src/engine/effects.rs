//! The typed messages shards send to the shared fabric.
//!
//! A [`crate::engine::VcShard`] never touches the private pool, the
//! cloud market, the billing ledger or the usage metrics directly:
//! everything it wants from the shared world is emitted as an
//! [`Effect`] tagged with an [`EffectKey`]. The executor applies the
//! collected effects of one time step sequentially in canonical
//! `(due, vc_id, seq)` order — so however the per-shard processing was
//! scheduled across worker threads, the fabric always observes one and
//! the same mutation sequence. The property test
//! `crates/core/tests/effect_order.rs` pins this down: any emission
//! interleaving of a fixed effect set, canonically ordered, produces
//! identical ledger and pool states.

use meryn_sim::SimTime;
use meryn_sla::VmRate;
use meryn_vmm::{CloudId, Location, VmId};

use crate::events::Event;
use crate::ids::{AppId, VcId};

/// Canonical ordering key of an effect: the `(due, vc_id, seq)` tag —
/// the instant it belongs to, the emitting shard and the global
/// sequence number of the originating event.
///
/// Derived `Ord` is the canonical application order. Sequence tags are
/// globally unique (one counter feeds every queue), so ordering by
/// `(due, seq)` totally orders effects of *different* events — which
/// makes the canonical order exactly the global event schedule the
/// pre-shard monolith walked, with `vc` carried for provenance and
/// per-shard grouping. Effects of one event share a full key and apply
/// in emission order (stable sort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EffectKey {
    /// The simulation instant the effect was emitted at.
    pub due: SimTime,
    /// Global sequence tag of the event whose handler emitted this.
    pub seq: u64,
    /// The emitting shard.
    pub vc: VcId,
}

/// One fabric-directed message from a shard's event handler.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Bill the interval `[from, now)` on `vm` at `rate` (the shard has
    /// already added the — purely computable — amount to its
    /// application's cost; the ledger records the entry).
    Charge {
        /// The VM used.
        vm: VmId,
        /// Where it ran.
        location: Location,
        /// Interval start (the stint's dispatch instant).
        from: SimTime,
        /// Rate applied.
        rate: VmRate,
    },
    /// Adjust the busy-VM counters by the given deltas and sample the
    /// used-VM curves. Within one instant these commute: only the net
    /// value an instant settles on is observable (same-instant samples
    /// coalesce).
    Usage {
        /// Signed change in busy private VMs.
        private_delta: i64,
        /// Signed change in busy cloud VMs.
        cloud_delta: i64,
    },
    /// Schedule a follow-up event. The executor assigns the global
    /// sequence tag and routes it to the owning queue.
    Schedule {
        /// Absolute due instant.
        due: SimTime,
        /// The event to route.
        event: Event,
    },
    /// Begin releasing leased cloud VMs a finished application held
    /// (§3.5 tear-down). Drawing the release latencies is fabric work —
    /// the cloud's RNG stream must be consumed in canonical order.
    ReleaseCloud {
        /// The cloud the leases came from.
        cloud: CloudId,
        /// The VMs to release, in stint order.
        vms: Vec<VmId>,
    },
    /// Begin returning borrowed private VMs to the lending VC (§3.4
    /// give-back): stop each VM at the borrower, then reboot it with the
    /// lender's image and requeue the suspended victim.
    ReturnVms {
        /// The lending VC.
        src: VcId,
        /// The suspended application awaiting its VMs.
        victim: AppId,
        /// The VMs to give back, in stint order.
        vms: Vec<VmId>,
    },
    /// An SLA check decided its application should burst to the cloud
    /// market. Everything shard-observable was already decided inside
    /// [`crate::engine::VcShard::check_sla`] — the verdict needed
    /// attention, the job exists, no acquisition is in flight; only the
    /// market transaction (cloud offer, queue withdrawal, leases)
    /// remains, and that is executor work. When the market declines,
    /// the executor falls back on `violated` exactly like the
    /// report-mode path: mark and retire, or re-arm.
    Escalate {
        /// The application asking to burst.
        app: AppId,
        /// Whether the SLA was already violated at check time (drives
        /// the fallback when no cloud can serve the escalation).
        violated: bool,
    },
    /// A transfer's stop batch completed: the executor completes the
    /// pool stops and begins the replacement boots with the destination
    /// image (pool RNG draws — canonical-order work), then schedules
    /// the coalesced [`crate::events::Event::TransferReady`].
    TransferStopped {
        /// The acquiring application.
        app: AppId,
        /// The stopped VMs, stint order.
        vms: Vec<VmId>,
    },
    /// A lent-VM return's stop batch completed: the executor completes
    /// the pool stops and begins the reboots with the lender's image,
    /// then schedules the coalesced
    /// [`crate::events::Event::ReturnReady`].
    ReturnStopped {
        /// The lending VC.
        src: VcId,
        /// The suspended application awaiting its VMs.
        victim: AppId,
        /// The stopped VMs, stint order.
        vms: Vec<VmId>,
    },
    /// A completed application asks to be folded into the run's
    /// aggregate tallies and forgotten (emitted only under
    /// [`crate::report::ReportMode::Aggregate`]). Reading the
    /// application record, folding it and dropping the per-app state
    /// spans shard *and* executor structures (`app_vc` stays — it
    /// routes stale per-app events), so the executor owns this effect;
    /// the fabric never sees it.
    Retire {
        /// The completed application to fold and forget.
        app: AppId,
        /// Its framework job, retired from the framework's job table.
        job: meryn_frameworks::JobId,
    },
    /// Mark a batch of private-pool boots complete (the VMs were
    /// already handed to their shard as slaves; frameworks never read
    /// VMM state, so the pool transition is pure fabric bookkeeping).
    CompleteStarts {
        /// The freshly booted VMs.
        vms: Vec<VmId>,
    },
    /// Mark a batch of cloud leases complete — billing starts at the
    /// batch's ready instant.
    CompleteLeases {
        /// The cloud leased from.
        cloud: CloudId,
        /// The provisioned VMs.
        vms: Vec<VmId>,
    },
    /// A slave VM crashed mid-stint (fault plane). The shard already
    /// tore the stint down (progress discarded, job requeued, usage
    /// reversed); the executor terminates the VM on its estate — a
    /// private victim additionally boots a replacement so the VC's
    /// capacity is conserved, a cloud victim's lease closes billed
    /// through the crash instant.
    VmCrashed {
        /// The crashed VM.
        vm: VmId,
        /// Where it was running.
        location: Location,
    },
    /// An arrival finished admission in-shard (type check, negotiation
    /// rounds, app registration, CM-latency draw from the shard's
    /// stream). What remains is exactly the cross-shard work: the
    /// Algorithm 1 placement over every VC's view plus the cloud
    /// market, the CM-pipeline serialization (`cm_free_at`) and the
    /// decision's pool/market execution — all executor-owned, applied
    /// at the effect's canonical position.
    Place {
        /// The freshly registered application.
        app: AppId,
        /// CM handling latency drawn from the shard's stream.
        handling: meryn_sim::SimDuration,
        /// The negotiated execution estimate (drives the bid duration).
        quoted_exec: meryn_sim::SimDuration,
        /// Extra pipeline latency if Algorithm 1 suspends a local
        /// victim. Drawn unconditionally at admission — whether it is
        /// consumed depends on the placement decision, but drawing it
        /// up front keeps the shard's stream sequence identical whether
        /// effects apply at the batch barrier or (single-step path)
        /// immediately after each event.
        suspend_local: meryn_sim::SimDuration,
        /// Extra pipeline latency if Algorithm 1 suspends a remote
        /// victim; same unconditional-draw rule as `suspend_local`.
        suspend_remote: meryn_sim::SimDuration,
    },
    /// An arrival failed admission in-shard (type mismatch or
    /// negotiation breakdown); the executor tallies the rejection on
    /// the fabric.
    Rejected,
    /// An SLA check re-ran after a refused cloud lease (fault plane):
    /// like [`Effect::Escalate`], but carrying the retry attempt so the
    /// executor can apply the deterministic capped backoff and the
    /// retry budget before degrading to the no-cloud fallback.
    LeaseRetry {
        /// The application re-asking to burst.
        app: AppId,
        /// Whether the SLA was already violated at check time.
        violated: bool,
        /// Which attempt this verdict belongs to (1-based).
        attempt: u32,
    },
}

/// An effect with its canonical key.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedEffect {
    /// Canonical application key.
    pub key: EffectKey,
    /// The message.
    pub effect: Effect,
}

/// The shard-side collector: emits effects under the key of the event
/// currently being handled.
///
/// Keys in one sink are nondecreasing (a shard handles its slice of a
/// batch in global seq order); the executor merges the per-shard sinks
/// of one time step with a stable sort on [`EffectKey`], which both
/// restores the cross-shard `(due, seq)` schedule order and preserves
/// each event's emission order.
#[derive(Debug)]
pub struct EffectSink {
    key: EffectKey,
    items: Vec<SequencedEffect>,
}

impl EffectSink {
    /// Creates a sink for the given instant and shard.
    pub fn new(due: SimTime, vc: VcId, seq: u64) -> Self {
        Self::with_buffer(due, vc, seq, Vec::new())
    }

    /// Like [`EffectSink::new`], but collecting into a recycled buffer
    /// (the executor pools these to keep the batch loop allocation-free
    /// in steady state).
    pub fn with_buffer(due: SimTime, vc: VcId, seq: u64, buf: Vec<SequencedEffect>) -> Self {
        debug_assert!(buf.is_empty(), "recycled sink buffers arrive cleared");
        EffectSink {
            key: EffectKey { due, vc, seq },
            items: buf,
        }
    }

    /// Re-keys the sink for the next event of the batch.
    pub(crate) fn set_seq(&mut self, seq: u64) {
        debug_assert!(seq >= self.key.seq || self.items.is_empty());
        self.key.seq = seq;
    }

    /// Emits one effect under the current key.
    pub fn emit(&mut self, effect: Effect) {
        self.items.push(SequencedEffect {
            key: self.key,
            effect,
        });
    }

    /// The collected effects, emission order (== canonical order within
    /// one shard's slice of a batch).
    pub fn into_effects(self) -> Vec<SequencedEffect> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_order_is_due_then_global_seq() {
        let k = |due: u64, vc: usize, seq: u64| EffectKey {
            due: SimTime::from_secs(due),
            vc: VcId(vc),
            seq,
        };
        // Seqs are globally unique, so within an instant the canonical
        // order is the global schedule order, shards interleaved.
        let mut keys = vec![k(2, 0, 9), k(1, 1, 8), k(1, 0, 7), k(1, 0, 3)];
        keys.sort();
        assert_eq!(keys, vec![k(1, 0, 3), k(1, 0, 7), k(1, 1, 8), k(2, 0, 9)]);
        assert!(k(1, 1, 4) < k(1, 0, 5), "lower seq wins across shards");
    }

    #[test]
    fn sink_tags_emissions_with_the_current_seq() {
        let mut sink = EffectSink::new(SimTime::from_secs(1), VcId(2), 10);
        sink.emit(Effect::Usage {
            private_delta: 1,
            cloud_delta: 0,
        });
        sink.set_seq(11);
        sink.emit(Effect::Usage {
            private_delta: -1,
            cloud_delta: 0,
        });
        let effects = sink.into_effects();
        assert_eq!(effects[0].key.seq, 10);
        assert_eq!(effects[1].key.seq, 11);
        assert_eq!(effects[0].key.vc, VcId(2));
        assert!(effects[0].key <= effects[1].key);
    }
}
