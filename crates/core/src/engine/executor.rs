//! The sharded executor: one control plane, N shard state machines,
//! one canonical effect stream.
//!
//! # Execution model
//!
//! Every event carries a globally-unique `(due, seq)` key handed out by
//! one counter; the control queue and the per-shard queues are merged
//! by that key ([`meryn_sim::earliest_key`]), so the *schedule* is a
//! single total order — the same one the pre-shard monolith walked.
//!
//! Control events — cloud-lease closes and nothing else — are
//! processed sequentially; the only other control-plane duty is
//! advancing the streamed-arrival cursor. Everything else is
//! shard-owned: admission itself (the executor pre-routes each
//! submission to its VC from the deployment config and the shard
//! type-checks, negotiates and registers the application —
//! [`VcShard`]'s arrival handler), framework hand-off, job completion,
//! SLA checks ([`VcShard::check_sla`]) and the coalesced VM
//! choreography (transfer/return/lease batches expand inside their
//! shard and send the pool work back as effects). The cross-shard half
//! of an arrival — Algorithm 1 over every VC's bids plus the cloud
//! market — travels back as [`Effect::Place`] and applies at the
//! arrival's canonical position in the effect stream. Latency draws
//! for a VC's arrivals and acquisitions come from that shard's own RNG
//! stream (`stream_seed(seed, SHARD_STREAM_BASE + vc)`), so one VC's
//! draw sequence never depends on another VC's traffic.
//!
//! Per time step the executor drains the maximal run of same-instant
//! shard events up to the next control event, groups it by shard,
//! processes the groups — **in parallel through the rayon shim when the
//! run spans shards and is big enough to pay for the fan-out** — and
//! then applies the collected [`Effect`]s sequentially in canonical
//! `(due, vc_id, seq)`-keyed order: a stable sort on the keys, whose
//! globally-unique `seq` makes the application order the exact global
//! schedule order the pre-shard monolith walked.
//!
//! Thread-count independence is structural: shard groups share no
//! state, group processing is deterministic per shard, and the
//! canonical effect order never depends on which worker finished
//! first. The batched loop is likewise equivalent to the
//! one-event-at-a-time [`ShardExecutor::step`] path for report-mode
//! deployments: shard handlers read no fabric state and no state that
//! effect application writes, so deferring a run's effects to its
//! barrier and replaying them in schedule order produces the identical
//! mutation sequence. Under
//! [`crate::config::ViolationPolicy::EscalateToCloud`] the barrier
//! semantics are authoritative: an [`Effect::Escalate`] applies at its
//! canonical position in the run's effect stream — still identical at
//! every thread count — while the single-step path applies it
//! immediately after its event, which can resolve a same-instant
//! escalation/dispatch race for one job differently. [`Effect::Place`]
//! needs no such caveat: every latency the placement might consume
//! (CM handling plus both suspension extras) is drawn in-shard at
//! admission, so applying the placement at the barrier or immediately
//! after its arrival leaves each shard's stream sequence — and hence
//! the trajectory — identical.

use std::sync::Arc;

use meryn_frameworks::{BatchFramework, Framework, FrameworkKind, JobId, MapReduceFramework};
use meryn_sim::metrics::SeriesSet;
use meryn_sim::{earliest_key, EventQueue, QueueSnapshot, SimDuration, SimRng, SimTime};
use meryn_sla::pricing::PricingParams;
use meryn_sla::Money;
use meryn_vmm::{CloudId, ImageRegistry, Location, PrivatePool, PublicCloud, VmId};
use meryn_workloads::Submission;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::app::Application;
use crate::bidding::BidRequest;
use crate::client_manager::route_kinds;
use crate::cluster_manager::{VcView, VirtualCluster};
use crate::config::PlatformConfig;
use crate::engine::effects::{Effect, EffectKey, EffectSink, SequencedEffect};
use crate::engine::fabric::SharedFabric;
use crate::engine::shard::{
    next_check, Lending, PendingAcquisition, ShardPolicy, ShardSnapshot, VcShard,
};
use crate::events::{Event, EventOwner};
use crate::ids::{AppId, Placement, VcId};
use crate::policy::{self, BiddingPolicy, PlacementPolicy};
use crate::protocol::{select_resources, Decision, ProtocolParams};
use crate::report::{AggregateReport, AppRecord, ReportMode, RunReport};

/// One shard's drained slice of a same-instant run: `(seq, event)`
/// pairs in global seq order.
type RunSlice = Vec<(u64, Event)>;

/// Minimum number of same-instant shard events (across ≥ 2 shards)
/// before a run is fanned out to worker threads. Below this the scoped
/// thread spawn costs more than the work; the sequential path walks the
/// identical per-shard groups, so results do not depend on the gate.
const PARALLEL_RUN_MIN_EVENTS: usize = 24;

/// Base of the per-shard latency stream ids: shard `i` draws from
/// `SimRng::stream_seed(cfg.seed, SHARD_STREAM_BASE + i)`. The high
/// bit block keeps the shard streams disjoint from the fixed fork ids
/// the deployment hands out (pool `1`, residual control plane `2`,
/// cloud `100 + i`) at any realistic VC count.
const SHARD_STREAM_BASE: u64 = 1 << 32;

/// Base of the per-shard *fault* stream ids: shard `i` draws its crash
/// hazards from `SimRng::stream_seed(cfg.seed, FAULT_STREAM_BASE + i)`.
/// A block of its own, disjoint from the latency streams — enabling
/// the fault plane must not perturb a single latency draw, so a fault
/// run stays comparable to its fault-free twin and faults-off runs
/// stay byte-identical to pre-fault-plane goldens.
const FAULT_STREAM_BASE: u64 = 2 << 32;

/// The assembled engine: shards + fabric + control plane.
pub struct ShardExecutor {
    pub(crate) cfg: PlatformConfig,
    placement: Arc<dyn PlacementPolicy>,
    bidding: Arc<dyn BiddingPolicy>,
    /// One shard per deployed VC, `VcId` order.
    pub(crate) shards: Vec<VcShard>,
    /// Deployed framework kinds, `VcId` order — the pure-config routing
    /// table arrivals resolve against at enqueue/stream-dispatch time
    /// (rebuilt from `cfg`, never serialized).
    vc_kinds: Vec<FrameworkKind>,
    /// The shared singletons.
    pub(crate) fabric: SharedFabric,
    /// Order-sensitive events: arrivals and cloud-lease closes.
    control: EventQueue<Event>,
    /// Extra logical ticks of coalesced control events (one per VM in a
    /// lease-close batch beyond the event the queue counted).
    control_extra_ticks: u64,
    /// The global sequence counter all queues share.
    next_seq: u64,
    now: SimTime,
    /// `AppId → VcId`, appended at admission (AppIds are dense).
    app_vc: Vec<VcId>,
    next_app: u64,
    /// Recycled scratch for fabric-apply follow-up events.
    scratch_out: Vec<(SimTime, Event)>,
    /// Recycled per-shard event-run buffers (the batch loop's inputs).
    event_bufs: Vec<RunSlice>,
    /// Recycled effect buffers (the batch loop's outputs).
    effect_bufs: Vec<Vec<SequencedEffect>>,
    /// Recycled merge buffer for one batch's canonical effect stream.
    effect_gather: Vec<SequencedEffect>,
    /// Same-instant runs wide enough to fan out to worker threads.
    parallel_runs: u64,
    /// Aggregate tallies; `Some` exactly under
    /// [`ReportMode::Aggregate`], where completed applications fold in
    /// and retire instead of accumulating per-app records.
    aggregate: Option<AggregateReport>,
    /// Latest completion folded into `aggregate` (retired applications
    /// are gone by `finalize`, so the report's completion time is
    /// tracked as they retire).
    agg_completion: SimTime,
    /// Streamed arrival source, when the workload was attached with
    /// [`Self::stream_workload`] instead of being enqueued in bulk.
    arrivals: Option<ArrivalSource>,
}

/// A streamed workload: submissions pulled lazily from an iterator,
/// carrying the exact sequence tags bulk enqueueing would have
/// assigned (the block was reserved at attach time), so the streamed
/// run's schedule — and report — is byte-identical to the batch run's
/// while holding O(1) workload memory.
struct ArrivalSource {
    /// The submission stream, arrival order (`at` nondecreasing).
    iter: Box<dyn Iterator<Item = Submission> + Send>,
    /// Buffered head: peeked but not yet processed.
    head: Option<Submission>,
    /// Sequence tag of the next streamed arrival.
    next_seq: u64,
    /// One past the last reserved tag.
    end_seq: u64,
    /// Arrivals popped so far (the checkpoint cursor: a resumed run
    /// re-creates the iterator and skips this many).
    emitted: u64,
}

impl ArrivalSource {
    /// Key of the next streamed arrival, `None` when exhausted.
    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.head.is_none() {
            self.head = self.iter.next();
        }
        self.head.as_ref().map(|s| (s.at, self.next_seq))
    }

    /// Takes the peeked arrival with its sequence tag.
    fn pop(&mut self) -> (u64, Submission) {
        let sub = self.head.take().expect("stream peeked before popping");
        let seq = self.next_seq;
        assert!(
            seq < self.end_seq,
            "streamed workload exceeded its declared submission count"
        );
        self.next_seq += 1;
        self.emitted += 1;
        (seq, sub)
    }
}

/// Why a streamed workload could not be attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// A streamed workload is already attached to this run.
    AlreadyAttached,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::AlreadyAttached => {
                write!(
                    f,
                    "one streamed workload per run: a stream is already attached"
                )
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// The serializable cursor of an [`ArrivalSource`]: workloads are
/// deterministic functions of their generator config and seed, so a
/// checkpoint stores only how far the stream got.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArrivalCheckpoint {
    next_seq: u64,
    end_seq: u64,
    emitted: u64,
}

/// A full engine snapshot: every shard (framework masters included),
/// the shared fabric (pool, clouds, ledger, metrics, RNG stream
/// positions), the control queue, the global sequence counter and the
/// streamed-arrival cursor. Serializable with serde; resuming from it
/// reproduces the uninterrupted run byte-for-byte at any thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// The deployment configuration; placement/bidding policies and
    /// per-shard policy slices are rebuilt from it at restore.
    pub cfg: PlatformConfig,
    shards: Vec<ShardSnapshot>,
    fabric: SharedFabric,
    control: QueueSnapshot<Event>,
    control_extra_ticks: u64,
    next_seq: u64,
    now: SimTime,
    app_vc: Vec<VcId>,
    next_app: u64,
    aggregate: Option<AggregateReport>,
    agg_completion: SimTime,
    arrivals: Option<ArrivalCheckpoint>,
    parallel_runs: u64,
}

impl EngineCheckpoint {
    /// Whether the checkpointed run streamed its workload — if so,
    /// resume with [`ShardExecutor::from_checkpoint_streaming`],
    /// handing back a fresh iterator over the same workload.
    pub fn needs_workload(&self) -> bool {
        self.arrivals.is_some()
    }

    /// The checkpoint instant.
    pub fn taken_at(&self) -> SimTime {
        self.now
    }
}

/// Builds one application's report record.
fn app_record(app: &Application, vc_name: &str) -> AppRecord {
    AppRecord {
        id: app.id,
        vc: app.vc,
        vc_name: vc_name.to_owned(),
        placement: app.placement.table1_case().to_owned(),
        submitted: app.contract.agreed_at,
        framework_submitted: app.framework_submitted_at,
        completed: app.completed_at(),
        processing: app.processing_time(),
        exec: app.exec_duration(),
        cost: app.cost,
        price: app.contract.terms.price,
        revenue: app.revenue().unwrap_or(Money::ZERO),
        penalty: app.penalty().unwrap_or(Money::ZERO),
        violated: app.violated(),
        suspensions: app.suspensions,
        negotiation_rounds: app.negotiation_rounds,
    }
}

/// The config slice shards apply locally (rebuilt, not serialized).
fn shard_policy(cfg: &PlatformConfig, retire_on_completion: bool) -> ShardPolicy {
    ShardPolicy {
        violation_policy: cfg.violation_policy,
        check_interval: cfg.controller_check_interval,
        private_cost: cfg.private_cost,
        retire_on_completion,
        vm_mtbf: cfg.faults.vm_mtbf_secs.map(SimDuration::from_secs),
        quote_speed: cfg.quote_speed,
        allowance: cfg.processing_allowance,
        max_rounds: cfg.max_negotiation_rounds,
        max_vms: cfg.private_capacity,
        base_latency: cfg.latencies.base,
        suspend_local: cfg.latencies.suspend_local,
        suspend_remote: cfg.latencies.suspend_remote,
    }
}

/// Outcome of one cloud-escalation attempt (see
/// [`ShardExecutor::try_escalate_to_cloud`]).
enum Escalation {
    /// Leases are provisioning; a fresh completion prediction is coming.
    Leased,
    /// Nothing here will change by waiting out a backoff: no cloud has
    /// the quota, or the job is not actually waiting in its queue.
    NoCloud,
    /// Every capable cloud refused transiently (fault plane: an outage
    /// window or a rejected admission) — worth retrying after backoff.
    Refused,
}

impl ShardExecutor {
    /// Deploys the platform described by `cfg`: boots the initial VC
    /// slaves on the private pool (deployment precedes the workload, so
    /// initial VMs come up instantly at t = 0) and pre-stages every
    /// framework image in every cloud (§3.5).
    pub fn new(cfg: PlatformConfig) -> Self {
        cfg.validate();
        let placement = policy::placement(&cfg.policy).expect("validated policy resolves");
        let bidding = policy::bidding(&cfg.bidding).expect("validated bidding policy resolves");
        let master = SimRng::new(cfg.seed);
        let mut pool = PrivatePool::with_vm_capacity(
            cfg.private_capacity,
            cfg.vm_spec,
            cfg.latencies.transfer_boot,
            cfg.latencies.transfer_stop,
            1.0,
            master.fork(1),
        );
        let mut images = ImageRegistry::new();
        let pricing =
            PricingParams::new(cfg.vm_price, cfg.penalty_factor).with_bound(cfg.penalty_bound);

        let mut vcs: Vec<VirtualCluster> = Vec::with_capacity(cfg.vcs.len());
        for (i, vc_cfg) in cfg.vcs.iter().enumerate() {
            let image = images.register(format!("{}-image", vc_cfg.name), 4096);
            let framework: Box<dyn Framework> = match vc_cfg.kind {
                FrameworkKind::Batch => {
                    if vc_cfg.backfill {
                        Box::new(BatchFramework::with_backfill())
                    } else {
                        Box::new(BatchFramework::new())
                    }
                }
                FrameworkKind::MapReduce => Box::new(MapReduceFramework::with_locality_penalty(
                    vc_cfg.locality_penalty_pct,
                )),
            };
            vcs.push(VirtualCluster::new(
                VcId(i),
                vc_cfg.name.clone(),
                vc_cfg.kind,
                image,
                framework,
                pricing,
            ));
        }

        let mut clouds = Vec::with_capacity(cfg.clouds.len());
        for (i, c) in cfg.clouds.iter().enumerate() {
            // The fault wiring is unconditional: with the default
            // (disabled) spec the outage list is empty and the
            // rejection probability 0.0, so no draw ever happens and
            // no lease is ever refused — faults-off runs are
            // byte-identical to pre-fault-plane ones.
            let outages = cfg
                .faults
                .cloud_outages
                .iter()
                .filter(|w| w.cloud == i)
                .map(|w| {
                    (
                        SimTime::from_secs(w.from_secs),
                        SimTime::from_secs(w.to_secs),
                    )
                })
                .collect();
            let mut cloud = PublicCloud::new(
                CloudId(i as u16),
                c.name.clone(),
                c.price.clone(),
                cfg.latencies.cloud_provision,
                cfg.latencies.cloud_release,
                c.speed,
                c.quota,
                master.fork(100 + i as u64),
            )
            .with_faults(
                outages,
                cfg.faults.lease_rejection_prob,
                SimDuration::from_secs(cfg.faults.lease_rejection_secs),
            );
            for vc in &vcs {
                cloud.stage_image(vc.image);
            }
            clouds.push(cloud);
        }

        // Initial deployment: boot each VC's share instantly at t=0.
        for (vc, vc_cfg) in vcs.iter_mut().zip(&cfg.vcs) {
            for _ in 0..vc_cfg.initial_vms {
                let (vm, _boot) = pool
                    .begin_start(vc.image, SimTime::ZERO)
                    .expect("validated initial allocation fits");
                pool.complete_start(vm, SimTime::ZERO)
                    .expect("fresh VM completes start");
                // meryn-lint: allow(float-money) — 1.0 is the slave speed factor; private_cost is integer Money
                vc.add_slave(vm, 1.0, Location::Private, cfg.private_cost)
                    .expect("fresh slave is unique");
            }
        }

        let lat_rng = master.fork(2);
        let fabric = SharedFabric::new(pool, clouds, images, cfg.client_managers, lat_rng);
        // Steady-state pending events scale with the live estate; the
        // workload bulk is reserved at enqueue time.
        let control = EventQueue::with_capacity(4 * cfg.private_capacity as usize);
        let policy = shard_policy(&cfg, false);
        let seed = cfg.seed;
        let shards = vcs
            .into_iter()
            .enumerate()
            .map(|(i, vc)| {
                let rng = SimRng::new(SimRng::stream_seed(seed, SHARD_STREAM_BASE + i as u64));
                let fault_rng =
                    SimRng::new(SimRng::stream_seed(seed, FAULT_STREAM_BASE + i as u64));
                VcShard::new(vc, policy, rng, fault_rng)
            })
            .collect();
        let vc_kinds = cfg.vcs.iter().map(|v| v.kind).collect();
        ShardExecutor {
            cfg,
            placement,
            bidding,
            shards,
            vc_kinds,
            fabric,
            control,
            control_extra_ticks: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            app_vc: Vec::new(),
            next_app: 0,
            scratch_out: Vec::new(),
            event_bufs: Vec::new(),
            effect_bufs: Vec::new(),
            effect_gather: Vec::new(),
            parallel_runs: 0,
            aggregate: None,
            agg_completion: SimTime::ZERO,
            arrivals: None,
        }
    }

    /// Selects how much per-application detail the run keeps; must be
    /// chosen before the run starts.
    ///
    /// [`ReportMode::Aggregate`] keeps engine memory O(live) instead of
    /// O(history): the ledger stops retaining per-charge entries
    /// (running totals remain exact), and every completed application
    /// folds into per-VC aggregates and retires its engine-side state
    /// at its canonical effect position — so the aggregates are
    /// byte-identical at any thread count.
    pub fn set_report_mode(&mut self, mode: ReportMode) {
        assert!(
            self.now == SimTime::ZERO && self.next_app == 0,
            "report mode must be chosen before the run starts"
        );
        let aggregate = mode == ReportMode::Aggregate;
        self.aggregate = aggregate.then(|| AggregateReport::new(self.shards.len()));
        self.fabric.ledger.set_retain_entries(!aggregate);
        for shard in &mut self.shards {
            shard.policy.retire_on_completion = aggregate;
        }
    }

    /// The run's report mode (see [`Self::set_report_mode`]).
    pub fn report_mode(&self) -> ReportMode {
        if self.aggregate.is_some() {
            ReportMode::Aggregate
        } else {
            ReportMode::Full
        }
    }

    /// Sets whether the used-VM step curves are sampled (on by
    /// default). Peaks are tracked either way.
    pub fn set_series_recording(&mut self, on: bool) {
        self.fabric.record_series = on;
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Logical events processed so far, summed over the control plane
    /// and every shard queue (coalesced choreography events count one
    /// tick per VM in their batch, keeping the unit comparable with the
    /// pre-coalescing engine).
    pub fn events_processed(&self) -> u64 {
        self.control_events_processed()
            + self
                .shards
                .iter()
                .map(VcShard::events_processed)
                .sum::<u64>()
    }

    /// Logical events the control plane processed (arrivals +
    /// cloud-lease closes).
    pub fn control_events_processed(&self) -> u64 {
        self.control.events_processed() + self.control_extra_ticks
    }

    /// Same-instant cross-shard runs wide enough to be fanned out to
    /// worker threads so far.
    pub fn parallel_runs(&self) -> u64 {
        self.parallel_runs
    }

    /// Audits the shared fabric's conservation invariants (see
    /// [`SharedFabric::audit_invariants`]). Call at quiescent points —
    /// after a restore, after the queues drain.
    pub fn audit_invariants(&self) -> Result<(), String> {
        self.fabric.audit_invariants()
    }

    /// Looks an application up across shards.
    pub fn app(&self, id: AppId) -> Option<&Application> {
        let vc = *self.app_vc.get(id.0 as usize)?;
        self.shards[vc.0].apps.get(&id)
    }

    // ---- scheduling --------------------------------------------------------

    /// Assigns the next global sequence tag and routes `event` to its
    /// owning queue.
    fn push_event(&mut self, due: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let queue = match event.owner() {
            EventOwner::Control => &mut self.control,
            EventOwner::Shard(vc) => &mut self.shards[vc.0].queue,
            EventOwner::AppShard(app) => {
                let vc = self.app_vc[app.0 as usize];
                &mut self.shards[vc.0].queue
            }
        };
        queue.push_tagged(due, seq, event);
    }

    /// Routes one submission to its owning shard from the deployment
    /// config alone: pre-assigns the dense `AppId`, appends the
    /// `AppId → VcId` entry and returns the shard-bound arrival event.
    /// A routing failure (unknown VC index, no VC of the kind) tallies
    /// the rejection immediately and consumes no `AppId` — the caller
    /// still burns one sequence tag so the bulk-enqueued and streamed
    /// schedules stay tag-for-tag identical.
    fn route_arrival(&mut self, sub: Submission) -> Option<(VcId, Event)> {
        match route_kinds(sub.target, &self.vc_kinds) {
            Ok(vc) => {
                let app = AppId(self.next_app);
                self.next_app += 1;
                self.app_vc.push(vc);
                Some((vc, Event::Arrival { app, sub }))
            }
            Err(_) => {
                self.fabric.rejected += 1;
                None
            }
        }
    }

    /// Enqueues a workload's arrivals, pre-routed into their owning
    /// shards' queues.
    pub fn enqueue_workload<I>(&mut self, workload: I)
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Submission>,
    {
        use std::borrow::Borrow as _;
        for sub in workload {
            let sub = *sub.borrow();
            match self.route_arrival(sub) {
                Some((_, ev)) => self.push_event(sub.at, ev),
                // Rejected at routing: burn the tag the arrival would
                // have carried, matching the stream's reserved block.
                None => self.next_seq += 1,
            }
        }
    }

    /// Attaches a streamed workload of exactly `count` submissions,
    /// reserving their sequence-tag block up front: streamed arrivals
    /// carry the exact tags [`Self::enqueue_workload`] would have
    /// assigned, so the run's schedule — and report — is byte-identical
    /// to the batch-enqueued run while holding O(1) workload memory.
    ///
    /// The iterator must yield submissions in nondecreasing `at` order
    /// (workload generators do) and at most `count` of them. Attach it
    /// before the run starts.
    ///
    /// # Errors
    /// One streamed workload per run: attaching a second stream returns
    /// [`StreamError::AlreadyAttached`] and leaves the first untouched.
    pub fn stream_workload<I>(&mut self, count: u64, workload: I) -> Result<(), StreamError>
    where
        I: IntoIterator<Item = Submission>,
        I::IntoIter: Send + 'static,
    {
        if self.arrivals.is_some() {
            return Err(StreamError::AlreadyAttached);
        }
        let first = self.next_seq;
        self.next_seq += count;
        self.arrivals = Some(ArrivalSource {
            iter: Box::new(workload.into_iter().fuse()),
            head: None,
            next_seq: first,
            end_seq: first + count,
            emitted: 0,
        });
        Ok(())
    }

    /// `(queue index, key)` of the globally next event; index 0 is the
    /// control plane, `1 + i` shard `i`. Before returning, every
    /// streamed arrival due at (or before) that key's instant is
    /// dispatched into its owning shard's queue — see
    /// [`Self::pump_stream`] — so the source the caller sees is never
    /// the stream itself and streamed arrivals never split a
    /// same-instant run the bulk-enqueued schedule would batch whole.
    fn next_source(&mut self) -> Option<(usize, (SimTime, u64))> {
        loop {
            let control_key = self.control.peek_key();
            let queued = earliest_key(
                [control_key]
                    .into_iter()
                    .chain(self.shards.iter_mut().map(|s| s.queue.peek_key())),
            );
            let stream_due = self
                .arrivals
                .as_mut()
                .and_then(ArrivalSource::peek_key)
                .map(|(due, _)| due);
            match (queued, stream_due) {
                (None, None) => return None,
                (hit, Some(due)) if hit.is_none_or(|(_, (t, _))| due <= t) => {
                    self.pump_stream(due);
                }
                (Some(hit), _) => return Some(hit),
                (None, Some(_)) => unreachable!("second arm pumps when nothing is queued"),
            }
        }
    }

    /// Dispatches every streamed arrival due at `t` into its owning
    /// shard's queue, carrying the pre-reserved sequence tags (routing
    /// failures tally a rejection and burn their tag, like the bulk
    /// path). The whole instant is pumped at once, so by the time the
    /// scheduler drains a run at `t` the stream's head is strictly
    /// later and the run's barrier is the control queue alone — exactly
    /// the bulk-enqueued schedule.
    fn pump_stream(&mut self, t: SimTime) {
        loop {
            let Some((due, _)) = self.arrivals.as_mut().and_then(ArrivalSource::peek_key) else {
                return;
            };
            if due != t {
                return;
            }
            let Some((seq, sub)) = self.arrivals.as_mut().map(ArrivalSource::pop) else {
                unreachable!("stream peeked above")
            };
            debug_assert_eq!(sub.at, t, "streamed arrivals fire at their instant");
            if let Some((vc, ev)) = self.route_arrival(sub) {
                self.shards[vc.0].queue.push_tagged(t, seq, ev);
            }
        }
    }

    /// Processes exactly one event (the single-step debugging/test
    /// path). Equivalent to the batched loop: a batch is just a run of
    /// these with the effect application deferred to the barrier.
    pub fn step(&mut self) -> bool {
        let Some((idx, (t, _))) = self.next_source() else {
            return false;
        };
        self.now = t;
        if idx == 0 {
            let (_, seq, ev) = self.control.pop_keyed().expect("peeked");
            self.handle_control(t, seq, ev);
        } else {
            let shard = idx - 1;
            let (_, seq, ev) = self.shards[shard].queue.pop_keyed().expect("peeked");
            let mut events = self.event_bufs.pop().unwrap_or_default();
            events.push((seq, ev));
            let effects_buf = self.effect_bufs.pop().unwrap_or_default();
            let (events, effects) = self.shards[shard].process(t, events, effects_buf);
            self.event_bufs.push(events);
            self.apply_effects(effects);
        }
        true
    }

    /// Drains all queues: the batched, shard-parallel production loop.
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::MAX);
    }

    /// The batched loop, stopping once the next event is due strictly
    /// after `stop` (events *at* `stop` are processed). Returns `true`
    /// while undrained events remain — at which point the engine sits
    /// on a clean instant boundary, ready to be checkpointed or
    /// resumed.
    pub fn run_until(&mut self, stop: SimTime) -> bool {
        loop {
            let Some((idx, (t, _))) = self.next_source() else {
                return false;
            };
            if t > stop {
                return true;
            }
            self.now = t;
            if idx == 0 {
                let (_, seq, ev) = self.control.pop_keyed().expect("peeked");
                self.handle_control(t, seq, ev);
                continue;
            }
            // A shard event is next: drain the maximal same-instant run
            // of shard events, bounded by the next control-plane event
            // at this instant (events scheduled *by* the run get later
            // tags and join a subsequent run — exactly the monolith's
            // order). The streamed-arrival source never bounds a run:
            // `next_source` already pumped every arrival at `t` into
            // its shard queue, so the stream's head is strictly later.
            debug_assert!(
                self.arrivals
                    .as_mut()
                    .and_then(ArrivalSource::peek_key)
                    .is_none_or(|(due, _)| due > t),
                "same-instant streamed arrivals were pumped before the run"
            );
            let barrier = self
                .control
                .peek_key()
                .filter(|&(due, _)| due == t)
                .map(|(_, seq)| seq)
                .unwrap_or(u64::MAX);
            let mut total = 0usize;
            let mut work: Vec<(&mut VcShard, RunSlice, Vec<SequencedEffect>)> = Vec::new();
            for shard in &mut self.shards {
                let mut events = self.event_bufs.pop().unwrap_or_default();
                while let Some((due, seq)) = shard.queue.peek_key() {
                    if due != t || seq >= barrier {
                        break;
                    }
                    let (_, seq, ev) = shard.queue.pop_keyed().expect("peeked");
                    events.push((seq, ev));
                }
                if events.is_empty() {
                    self.event_bufs.push(events);
                } else {
                    total += events.len();
                    let effects = self.effect_bufs.pop().unwrap_or_default();
                    work.push((shard, events, effects));
                }
            }
            debug_assert!(total > 0, "a shard peeked ready but drained nothing");
            // Single-shard fast path (the common case: scattered job
            // completions and per-app submits): one shard's effect
            // buffer is already in canonical key order — `due` is fixed
            // at `t`, seqs arrive nondecreasing and the vc is constant —
            // so skip the merge machinery and apply it directly.
            if work.len() == 1 {
                let (shard, events, effects) = work.pop().expect("length checked");
                let (events, effects) = shard.process(t, events, effects);
                debug_assert!(effects.is_sorted_by_key(|e| e.key));
                self.event_bufs.push(events);
                self.apply_effects(effects);
                continue;
            }
            // Process the groups — concurrently when the run is wide
            // enough to pay for the fan-out. Either path computes the
            // identical per-shard effect buffers.
            let results: Vec<(RunSlice, Vec<SequencedEffect>)> = if total >= PARALLEL_RUN_MIN_EVENTS
            {
                self.parallel_runs += 1;
                work.into_par_iter()
                    .map(|(shard, events, effects)| shard.process(t, events, effects))
                    .collect()
            } else {
                work.into_iter()
                    .map(|(shard, events, effects)| shard.process(t, events, effects))
                    .collect()
            };
            // Canonical application: merge the per-shard buffers by key.
            // Seqs are globally unique, so the stable sort replays the
            // run's effects in the exact global schedule order (ties —
            // one event's own effects — keep emission order).
            let mut gathered = std::mem::take(&mut self.effect_gather);
            debug_assert!(gathered.is_empty());
            for (mut events, mut effects) in results {
                events.clear();
                self.event_bufs.push(events);
                gathered.append(&mut effects);
                self.effect_bufs.push(effects);
            }
            gathered.sort_by_key(|e| e.key);
            for item in gathered.drain(..) {
                self.apply_one(item);
            }
            self.effect_gather = gathered;
        }
    }

    // ---- effect application ------------------------------------------------

    /// Applies an already-ordered effect buffer and recycles it (the
    /// control-handler and single-step path; the batch loop merges
    /// buffers itself and calls [`Self::apply_one`] directly).
    fn apply_effects(&mut self, mut effects: Vec<SequencedEffect>) {
        for item in effects.drain(..) {
            self.apply_one(item);
        }
        self.effect_bufs.push(effects);
    }

    fn apply_one(&mut self, item: SequencedEffect) {
        let SequencedEffect { key, effect } = item;
        match effect {
            // The most common effect by far (every check re-arm, every
            // dispatch's completion): route it straight to its queue
            // instead of bouncing through the fabric's follow-up buffer.
            Effect::Schedule { due, event } => self.push_event(due, event),
            Effect::Escalate { app, violated } => self.on_escalate(key.due, app, violated, 0),
            Effect::LeaseRetry {
                app,
                violated,
                attempt,
            } => self.on_escalate(key.due, app, violated, attempt),
            Effect::VmCrashed { vm, location } => {
                self.apply_vm_crashed(key.due, key.vc, vm, location);
            }
            Effect::TransferStopped { app, vms } => {
                self.apply_transfer_stopped(key.due, app, vms);
            }
            Effect::ReturnStopped { src, victim, vms } => {
                self.apply_return_stopped(key.due, src, victim, vms);
            }
            Effect::Retire { app, job } => self.apply_retire(app, job),
            Effect::Place {
                app,
                handling,
                quoted_exec,
                suspend_local,
                suspend_remote,
            } => self.apply_place(
                key,
                app,
                handling,
                quoted_exec,
                suspend_local,
                suspend_remote,
            ),
            Effect::Rejected => self.fabric.rejected += 1,
            other => {
                let mut out = std::mem::take(&mut self.scratch_out);
                self.fabric.apply(key.due, other, &mut out);
                for (due, ev) in out.drain(..) {
                    self.push_event(due, ev);
                }
                self.scratch_out = out;
            }
        }
    }

    /// Applies [`Effect::Retire`] (aggregate mode): folds the completed
    /// application into the run aggregates and drops its per-app state
    /// — the application record, the job → app mapping and the
    /// framework's job entry. Only `app_vc` keeps its 8-byte entry: it
    /// still routes stale per-app events (a ControllerCheck armed
    /// before completion) to a shard that then ignores them.
    fn apply_retire(&mut self, app_id: AppId, job: JobId) {
        let vc = self.app_vc[app_id.0 as usize];
        let shard = &mut self.shards[vc.0];
        let app = shard
            .apps
            .remove(&app_id)
            .expect("retiring application exists");
        let rec = app_record(&app, &shard.vc.name);
        if let Some(at) = app.completed_at() {
            self.agg_completion = self.agg_completion.max_of(at);
        }
        self.aggregate
            .as_mut()
            .expect("retirements are emitted only in aggregate mode")
            .push(&rec);
        shard.vc.job_to_app.remove(&job);
        shard
            .vc
            .framework
            .retire_job(job)
            .expect("retiring job just completed");
    }

    /// Acts on a shard's escalation request: the shard already vetted
    /// everything it can see (verdict needs attention, job submitted,
    /// no acquisition in flight); the market transaction happens here.
    ///
    /// `attempt` is 0 for a fresh [`Effect::Escalate`] and counts up
    /// through the fault plane's backoff chain. A *transient* refusal
    /// (outage window, rejected admission) within the retry budget arms
    /// one [`Event::LeaseRetry`] after a deterministic capped
    /// exponential backoff — the normal check chain stays suspended
    /// while the retry chain owns the application, so exactly one timer
    /// is ever armed. An exhausted budget, or a dead end no backoff can
    /// fix, degrades exactly like the report-mode path: mark a violated
    /// SLA and retire, or keep monitoring on the private estate.
    fn on_escalate(&mut self, now: SimTime, app_id: AppId, violated: bool, attempt: u32) {
        let Some(interval) = self.cfg.controller_check_interval else {
            return;
        };
        let outcome = self.try_escalate_to_cloud(now, app_id);
        if matches!(outcome, Escalation::Refused) && attempt < self.cfg.faults.retry_max {
            self.fabric.lease_retries += 1;
            let delay = self.cfg.faults.backoff_delay(attempt);
            self.push_event(
                now + delay,
                Event::LeaseRetry {
                    app: app_id,
                    attempt: attempt + 1,
                },
            );
            return;
        }
        match outcome {
            Escalation::Leased => {
                // Escalated: a fresh completion prediction is coming;
                // keep monitoring.
                self.push_event(
                    next_check(now, interval),
                    Event::ControllerCheck { app: app_id },
                );
            }
            Escalation::Refused | Escalation::NoCloud => {
                if matches!(outcome, Escalation::Refused) {
                    // The backoff budget is spent: this acquisition
                    // degrades to the private pool for good.
                    self.fabric.retries_exhausted += 1;
                }
                if violated {
                    let vc = self.app_vc[app_id.0 as usize];
                    let app = self.shards[vc.0].apps.get_mut(&app_id).expect("app exists");
                    if app.violation_detected.is_none() {
                        app.violation_detected = Some(now);
                    }
                    return;
                }
                self.push_event(
                    next_check(now, interval),
                    Event::ControllerCheck { app: app_id },
                );
            }
        }
    }

    /// Applies [`Effect::VmCrashed`]: terminates the victim on its
    /// estate. A private victim's slot immediately begins booting a
    /// replacement with the shard's image (VMs are fungible after the
    /// re-image, so the VC's capacity — and any lending it owes — is
    /// conserved); a cloud victim's lease closes billed through the
    /// crash instant.
    fn apply_vm_crashed(&mut self, now: SimTime, vc: VcId, vm: VmId, location: Location) {
        self.fabric.vm_crashes += 1;
        self.fabric.jobs_reexecuted += 1;
        match location {
            Location::Private => {
                self.fabric.crashed_private += 1;
                self.fabric
                    .pool
                    .crash_vm(vm, now)
                    .unwrap_or_else(|e| unreachable!("crashed slave is a live pool VM: {e:?}"));
                let image = self.shards[vc.0].vc.image;
                let (new_vm, boot) = self
                    .fabric
                    .pool
                    .begin_start(image, now)
                    .unwrap_or_else(|e| unreachable!("the crashed slot just freed: {e:?}"));
                self.push_event(
                    now + boot,
                    Event::CrashReplacementReady {
                        vc,
                        vms: vec![new_vm],
                    },
                );
            }
            Location::Cloud(cloud) => {
                self.fabric.crashed_cloud += 1;
                let close = self.fabric.clouds[cloud.0 as usize]
                    .crash_lease(vm, now)
                    .unwrap_or_else(|e| unreachable!("crashed lease is live: {e:?}"));
                self.fabric.cloud_bill += close.cost;
            }
        }
    }

    /// Expands a transfer's completed stop batch: complete each pool
    /// stop, boot a replacement with the destination image in the slot
    /// it freed (pool RNG draws — canonical-order work), park the
    /// replacements in the pending acquisition and schedule the
    /// coalesced ready event at the slowest boot.
    fn apply_transfer_stopped(&mut self, now: SimTime, app: AppId, mut vms: Vec<VmId>) {
        let dest = self.app_vc[app.0 as usize];
        let image = self.shards[dest.0].vc.image;
        let mut done = SimDuration::ZERO;
        for vm in vms.iter_mut() {
            self.fabric
                .pool
                .complete_stop(*vm, now)
                .expect("transfer stop completes");
            let (new_vm, boot) = self
                .fabric
                .pool
                .begin_start(image, now)
                .expect("the slot just freed");
            *vm = new_vm;
            done = done.max_of(boot);
        }
        let Some(PendingAcquisition::Transfer { vms: slot }) =
            self.shards[dest.0].pending.get_mut(&app)
        else {
            unreachable!("transfer batch without pending acquisition")
        };
        debug_assert!(slot.is_empty(), "stop batch arrives exactly once");
        *slot = vms;
        self.push_event(now + done, Event::TransferReady { app });
    }

    /// Expands a return's completed stop batch: complete each pool
    /// stop, reboot with the lender's image, and schedule the coalesced
    /// ready event at the slowest boot.
    fn apply_return_stopped(&mut self, now: SimTime, src: VcId, victim: AppId, mut vms: Vec<VmId>) {
        let image = self.shards[src.0].vc.image;
        let mut done = SimDuration::ZERO;
        for vm in vms.iter_mut() {
            self.fabric
                .pool
                .complete_stop(*vm, now)
                .expect("return stop completes");
            let (new_vm, boot) = self
                .fabric
                .pool
                .begin_start(image, now)
                .expect("the slot just freed");
            *vm = new_vm;
            done = done.max_of(boot);
        }
        self.push_event(now + done, Event::ReturnReady { src, victim, vms });
    }

    /// Attempts the [`crate::config::ViolationPolicy::EscalateToCloud`]
    /// action: pull the application's waiting job out of the framework
    /// queue and burst it to the cheapest *available* cloud.
    /// [`Escalation::NoCloud`] when the application is not actually
    /// waiting in a queue or no cloud has the quota;
    /// [`Escalation::Refused`] when capable clouds exist but all
    /// refused transiently (fault plane) — the caller's backoff chain
    /// decides whether to re-ask.
    fn try_escalate_to_cloud(&mut self, now: SimTime, app_id: AppId) -> Escalation {
        let vc_id = self.app_vc[app_id.0 as usize];
        let (spec, job) = {
            let app = &self.shards[vc_id.0].apps[&app_id];
            (app.spec, app.job)
        };
        let Some(job) = job else {
            return Escalation::NoCloud; // submission pipeline still in flight
        };
        if self.shards[vc_id.0].pending.contains_key(&app_id) {
            return Escalation::NoCloud; // an acquisition (or escalation) is in flight
        }
        let nb = spec.nb_vms();
        // Only currently-available clouds may bid; remembering whether
        // any cloud had the *quota* at all distinguishes a transient
        // refusal (worth a backoff) from a dead end.
        let mut quota_ok = false;
        let offer = self
            .fabric
            .clouds
            .iter()
            .filter(|c| c.can_lease(nb))
            .inspect(|_| quota_ok = true)
            .filter(|c| c.check_available(now).is_ok())
            .map(|c| (c.id, c.price_at(now)))
            .min_by_key(|&(_, r)| r);
        let Some((cloud, _)) = offer else {
            if quota_ok {
                // Every capable cloud is mid-outage or blacked out.
                self.fabric.lease_rejections += 1;
                return Escalation::Refused;
            }
            return Escalation::NoCloud;
        };
        // The admission draw comes *before* the queue withdrawal so a
        // rejected attempt leaves the job exactly where it was.
        if self.fabric.clouds[cloud.0 as usize]
            .admit_lease(now)
            .is_err()
        {
            self.fabric.lease_rejections += 1;
            return Escalation::Refused;
        }
        // `withdraw` fails exactly when the job is not waiting in the
        // queue — running, held for lending, or done.
        if self.shards[vc_id.0].vc.framework.withdraw(job).is_err() {
            return Escalation::NoCloud;
        }
        self.fabric.bursts += nb;
        self.fabric.escalations += 1;
        let image = self.shards[vc_id.0].vc.image;
        let shape = self.cfg.vm_spec;
        let c = &mut self.fabric.clouds[cloud.0 as usize];
        let speed = c.speed();
        let mut vms = Vec::with_capacity(nb as usize);
        let mut done = SimDuration::ZERO;
        for _ in 0..nb {
            let (vm, prov, rate) = c
                .begin_lease(image, shape, now)
                .expect("can_lease checked above");
            done = done.max_of(prov);
            vms.push((vm, rate));
        }
        self.push_event(now + done, Event::CloudVmsReady { app: app_id });
        let shard = &mut self.shards[vc_id.0];
        shard.pending.insert(
            app_id,
            PendingAcquisition::CloudLease {
                cloud,
                vms,
                speed,
                existing_job: Some(job),
            },
        );
        shard.apps.get_mut(&app_id).expect("app exists").placement = Placement::Cloud { cloud };
        Escalation::Leased
    }

    // ---- control plane -----------------------------------------------------

    fn handle_control(&mut self, now: SimTime, _seq: u64, ev: Event) {
        match ev {
            Event::CloudReleased { cloud, vms } => self.on_cloud_released(now, cloud, vms),
            other => unreachable!("shard event routed to the control plane: {other:?}"),
        }
    }

    /// Applies [`Effect::Place`]: the cross-shard half of an arrival.
    /// The owning shard already type-checked, negotiated, registered
    /// the application and drew every latency the placement might
    /// consume at the arrival's schedule position; here — at the same
    /// canonical position in the effect stream — Algorithm 1 reads
    /// every VC's view and the cloud market, the CM pipeline
    /// serializes (`cm_free_at`), and the decision executes against
    /// the pool/market.
    fn apply_place(
        &mut self,
        key: EffectKey,
        app_id: AppId,
        handling: SimDuration,
        quoted_exec: SimDuration,
        suspend_local: SimDuration,
        suspend_remote: SimDuration,
    ) {
        let EffectKey {
            due: now,
            seq,
            vc: vc_id,
        } = key;
        let (nb, decision) = {
            let views: Vec<VcView<'_>> = self.shards.iter().map(VcShard::view).collect();
            let nb = views[vc_id.0].apps[&app_id].spec.nb_vms();
            let req = BidRequest {
                nb_vms: nb,
                duration: quoted_exec + self.cfg.processing_allowance,
            };
            let decision = select_resources(
                self.placement.as_ref(),
                self.bidding.as_ref(),
                vc_id,
                &views,
                &self.fabric.clouds,
                req,
                now,
                ProtocolParams {
                    storage_rate: self.cfg.storage_rate,
                    suspension_enabled: self.cfg.suspension_enabled,
                    private_cost: self.cfg.private_cost,
                },
            );
            (nb, decision)
        };

        let placement = match decision {
            Decision::Local | Decision::Queue => Placement::Local,
            Decision::LocalAfterSuspension { .. } => Placement::LocalAfterSuspension,
            Decision::FromVc { src } => Placement::VcVms { from: src },
            Decision::FromVcAfterSuspension { src, .. } => {
                Placement::VcVmsAfterSuspension { from: src }
            }
            Decision::Cloud { cloud, .. } => Placement::Cloud { cloud },
        };
        match self.shards[vc_id.0].apps.get_mut(&app_id) {
            Some(app) => app.placement = placement,
            None => unreachable!("placed application was registered by its shard"),
        }

        // The handling latency was drawn in-shard; serializing it
        // through the CM pipeline consumes shared state (`cm_free_at`)
        // and so happens here, in canonical order.
        let base = self.fabric.cm_delay(now, handling);

        match decision {
            Decision::Local => {
                let shard = &mut self.shards[vc_id.0];
                let mut vms = shard.take_vm_buf();
                shard.vc.framework.idle_slaves_into(nb as usize, &mut vms);
                assert_eq!(
                    vms.len() as u64,
                    nb,
                    "Local decision implies enough idle VMs"
                );
                for &vm in &vms {
                    shard
                        .vc
                        .framework
                        .reserve_slave(vm)
                        .expect("idle slave is reservable");
                }
                shard.acquired.insert(app_id, vms);
                self.push_event(now + base, Event::SubmitToFramework { app: app_id });
            }
            Decision::Queue => {
                // Nothing can provide VMs now: hand to the framework and
                // let FIFO/backfill handle it when capacity frees up.
                self.push_event(now + base, Event::SubmitToFramework { app: app_id });
            }
            Decision::LocalAfterSuspension { victim } => {
                let mut sink = EffectSink::new(now, vc_id, seq);
                let freed = self.shards[vc_id.0].suspend_app(now, victim, &mut sink);
                self.fabric.suspensions += 1;
                self.apply_effects(sink.into_effects());
                assert!(freed.len() as u64 >= nb);
                let shard = &mut self.shards[vc_id.0];
                shard
                    .lendings
                    .insert(app_id, Lending { src: vc_id, victim });
                let mut vms = shard.take_vm_buf();
                vms.extend(freed.into_iter().take(nb as usize));
                for &vm in &vms {
                    shard
                        .vc
                        .framework
                        .reserve_slave(vm)
                        .expect("freed slave is reservable");
                }
                shard.acquired.insert(app_id, vms);
                self.push_event(
                    now + base + suspend_local,
                    Event::SubmitToFramework { app: app_id },
                );
            }
            Decision::FromVc { src } => {
                self.fabric.transfers += nb;
                let mut victims = self.shards[src.0].take_vm_buf();
                self.shards[src.0]
                    .vc
                    .framework
                    .idle_slaves_into(nb as usize, &mut victims);
                assert_eq!(victims.len() as u64, nb, "zero bid implies enough idle VMs");
                self.begin_transfer_stops(now, app_id, src, &victims, base);
                self.shards[src.0].recycle_vm_buf(victims);
            }
            Decision::FromVcAfterSuspension { src, victim } => {
                let mut sink = EffectSink::new(now, src, seq);
                let freed = self.shards[src.0].suspend_app(now, victim, &mut sink);
                self.fabric.suspensions += 1;
                self.apply_effects(sink.into_effects());
                assert!(
                    freed.len() as u64 >= nb,
                    "victim must hold at least the requested VMs"
                );
                self.shards[vc_id.0]
                    .lendings
                    .insert(app_id, Lending { src, victim });
                let mut take = self.shards[src.0].take_vm_buf();
                take.extend(freed.into_iter().take(nb as usize));
                self.begin_transfer_stops(now, app_id, src, &take, base + suspend_remote);
                self.shards[src.0].recycle_vm_buf(take);
            }
            Decision::Cloud { cloud, .. } => {
                if self.fabric.clouds[cloud.0 as usize]
                    .admit_lease(now)
                    .is_err()
                {
                    // Fault plane: the chosen cloud refused the lease
                    // (outage window or transient rejection). Degrade
                    // to the Queue decision — the job joins its VC's
                    // framework queue on the private estate, and the
                    // SLA controller's escalation path (with its
                    // retry/backoff chain) takes it from there.
                    self.fabric.lease_rejections += 1;
                    let Some(app) = self.shards[vc_id.0].apps.get_mut(&app_id) else {
                        unreachable!("app was inserted above")
                    };
                    app.placement = Placement::Local;
                    self.push_event(now + base, Event::SubmitToFramework { app: app_id });
                } else {
                    self.fabric.bursts += nb;
                    let vc_image = self.shards[vc_id.0].vc.image;
                    let spec_shape = self.cfg.vm_spec;
                    let c = &mut self.fabric.clouds[cloud.0 as usize];
                    let speed = c.speed();
                    let mut vms = Vec::with_capacity(nb as usize);
                    let mut done = SimDuration::ZERO;
                    for _ in 0..nb {
                        let (vm, prov, rate) = c
                            .begin_lease(vc_image, spec_shape, now)
                            .expect("protocol only offers clouds that can lease");
                        done = done.max_of(prov);
                        vms.push((vm, rate));
                    }
                    self.push_event(now + base + done, Event::CloudVmsReady { app: app_id });
                    self.shards[vc_id.0].pending.insert(
                        app_id,
                        PendingAcquisition::CloudLease {
                            cloud,
                            vms,
                            speed,
                            existing_job: None,
                        },
                    );
                }
            }
        }

        // First check on the next global check tick: all live
        // applications share check instants (see
        // [`crate::engine::shard::next_check`]), which is what turns
        // SLA monitoring into wide cross-shard same-instant runs.
        if let Some(interval) = self.cfg.controller_check_interval {
            self.push_event(
                next_check(now, interval),
                Event::ControllerCheck { app: app_id },
            );
        }
    }

    /// Removes `vms` from the source VC and begins stopping them in the
    /// pool; the coalesced stops-done event lands when the slowest stop
    /// does and the destination shard takes over from there.
    fn begin_transfer_stops(
        &mut self,
        now: SimTime,
        app: AppId,
        src: VcId,
        vms: &[VmId],
        lead: SimDuration,
    ) {
        let mut done = SimDuration::ZERO;
        for &vm in vms {
            self.shards[src.0]
                .vc
                .remove_slave(vm)
                .expect("transfer candidates are idle slaves");
            let stop = self
                .fabric
                .pool
                .begin_stop(vm, now)
                .expect("idle private slave can stop");
            done = done.max_of(stop);
        }
        let dest = self.app_vc[app.0 as usize];
        let shard = &mut self.shards[dest.0];
        let mut collect = shard.take_vm_buf();
        collect.extend_from_slice(vms);
        shard
            .pending
            .insert(app, PendingAcquisition::Transfer { vms: collect });
        self.push_event(now + lead + done, Event::TransferStopsDone { app });
    }

    /// Closes a coalesced lease batch: every release completed, bill
    /// each lease. One logical tick per VM.
    fn on_cloud_released(&mut self, now: SimTime, cloud: CloudId, vms: Vec<VmId>) {
        self.control_extra_ticks += (vms.len() as u64).saturating_sub(1);
        for vm in vms {
            let close = self.fabric.clouds[cloud.0 as usize]
                .complete_release(vm, now)
                .expect("release completes");
            self.fabric.cloud_bill += close.cost;
        }
    }

    // ---- checkpointing -----------------------------------------------------

    /// Captures the engine's full state at the current instant. Call
    /// between events — after [`Self::run_until`] returns, the engine
    /// sits on such a boundary. Resuming the checkpoint reproduces the
    /// uninterrupted run's report byte-for-byte at any thread count.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint {
            cfg: self.cfg.clone(),
            shards: self.shards.iter().map(VcShard::snapshot).collect(),
            fabric: self.fabric.clone(),
            control: self.control.snapshot(),
            control_extra_ticks: self.control_extra_ticks,
            next_seq: self.next_seq,
            now: self.now,
            app_vc: self.app_vc.clone(),
            next_app: self.next_app,
            aggregate: self.aggregate.clone(),
            agg_completion: self.agg_completion,
            arrivals: self.arrivals.as_ref().map(|a| ArrivalCheckpoint {
                next_seq: a.next_seq,
                end_seq: a.end_seq,
                emitted: a.emitted,
            }),
            parallel_runs: self.parallel_runs,
        }
    }

    /// Rebuilds an engine from a checkpoint of a bulk-enqueued run.
    ///
    /// # Panics
    /// When the checkpointed run streamed its workload — resume those
    /// with [`Self::from_checkpoint_streaming`].
    pub fn from_checkpoint(cp: EngineCheckpoint) -> Self {
        assert!(
            cp.arrivals.is_none(),
            "checkpoint streamed its workload; resume with from_checkpoint_streaming"
        );
        Self::restore(cp, None)
    }

    /// Rebuilds an engine from a checkpoint of a streamed run,
    /// re-attaching a fresh iterator over the *same* workload
    /// (workloads are deterministic in their generator seed); the
    /// already-processed prefix is skipped.
    pub fn from_checkpoint_streaming<I>(cp: EngineCheckpoint, workload: I) -> Self
    where
        I: IntoIterator<Item = Submission>,
        I::IntoIter: Send + 'static,
    {
        assert!(
            cp.arrivals.is_some(),
            "checkpoint did not stream its workload"
        );
        Self::restore(cp, Some(Box::new(workload.into_iter().fuse())))
    }

    fn restore(
        cp: EngineCheckpoint,
        workload: Option<Box<dyn Iterator<Item = Submission> + Send>>,
    ) -> Self {
        let EngineCheckpoint {
            cfg,
            shards,
            fabric,
            control,
            control_extra_ticks,
            next_seq,
            now,
            app_vc,
            next_app,
            aggregate,
            agg_completion,
            arrivals,
            parallel_runs,
        } = cp;
        cfg.validate();
        let placement = policy::placement(&cfg.policy).expect("validated policy resolves");
        let bidding = policy::bidding(&cfg.bidding).expect("validated bidding policy resolves");
        let policy = shard_policy(&cfg, aggregate.is_some());
        let shards = shards
            .into_iter()
            .map(|s| VcShard::from_snapshot(s, policy))
            .collect();
        let arrivals = arrivals.map(|a| {
            let mut iter = workload.expect("streamed checkpoint resumes with its workload");
            for _ in 0..a.emitted {
                iter.next()
                    .expect("resumed workload is shorter than the checkpoint cursor");
            }
            ArrivalSource {
                iter,
                head: None,
                next_seq: a.next_seq,
                end_seq: a.end_seq,
                emitted: a.emitted,
            }
        });
        let vc_kinds = cfg.vcs.iter().map(|v| v.kind).collect();
        ShardExecutor {
            cfg,
            placement,
            bidding,
            shards,
            vc_kinds,
            fabric,
            control: EventQueue::from_snapshot(control),
            control_extra_ticks,
            next_seq,
            now,
            app_vc,
            next_app,
            scratch_out: Vec::new(),
            event_bufs: Vec::new(),
            effect_bufs: Vec::new(),
            effect_gather: Vec::new(),
            parallel_runs,
            aggregate,
            agg_completion,
            arrivals,
        }
    }

    // ---- reporting ---------------------------------------------------------

    /// Builds the final report. Consumes the executor.
    ///
    /// In aggregate mode the still-live applications (never completed:
    /// violated-and-stuck, or mid-flight at an early finalize) fold
    /// into the aggregates in submission order and `apps` stays empty.
    pub fn finalize(mut self) -> RunReport {
        let mut aggregate = self.aggregate.take();
        let total_apps: usize = self.shards.iter().map(|s| s.apps.len()).sum();
        let mut apps: Vec<&Application> = Vec::with_capacity(total_apps);
        for shard in &self.shards {
            apps.extend(shard.apps.values());
        }
        // Shards hold disjoint id ranges interleaved by arrival order;
        // the report lists applications in submission (= AppId) order.
        apps.sort_by_key(|a| a.id);
        let mut records = Vec::new();
        let mut completion = self.agg_completion;
        match aggregate.as_mut() {
            Some(agg) => {
                for app in apps {
                    if let Some(at) = app.completed_at() {
                        completion = completion.max_of(at);
                    }
                    agg.push(&app_record(app, &self.shards[app.vc.0].vc.name));
                }
            }
            None => {
                records.reserve(total_apps);
                for app in apps {
                    if let Some(at) = app.completed_at() {
                        completion = completion.max_of(at);
                    }
                    records.push(app_record(app, &self.shards[app.vc.0].vc.name));
                }
            }
        }
        let events_processed = self.events_processed();
        let (peak_private, peak_cloud) = self.fabric.peaks();
        let mut series = SeriesSet::new();
        series.add(self.fabric.used_private);
        series.add(self.fabric.used_cloud);
        // `faults` appears only when the spec armed a failure process,
        // so a faults-off report — and every pre-fault-plane golden —
        // serializes byte-identically.
        let faults = self
            .cfg
            .faults
            .enabled()
            .then(|| crate::report::FaultStats {
                vm_crashes: self.fabric.vm_crashes,
                crashed_private: self.fabric.crashed_private,
                crashed_cloud: self.fabric.crashed_cloud,
                jobs_reexecuted: self.fabric.jobs_reexecuted,
                lease_rejections: self.fabric.lease_rejections,
                lease_retries: self.fabric.lease_retries,
                retries_exhausted: self.fabric.retries_exhausted,
                masked_faults: (self.fabric.vm_crashes + self.fabric.lease_rejections)
                    .saturating_sub(self.fabric.retries_exhausted),
            });
        RunReport {
            mode: self.cfg.policy.clone(),
            seed: self.cfg.seed,
            apps: records,
            rejected: self.fabric.rejected,
            completion_time: completion,
            series,
            peak_private: peak_private as f64,
            peak_cloud: peak_cloud as f64,
            transfers: self.fabric.transfers,
            bursts: self.fabric.bursts,
            suspensions: self.fabric.suspensions,
            escalations: self.fabric.escalations,
            cloud_bill: self.fabric.cloud_bill,
            events_processed,
            faults,
            aggregate,
        }
    }
}
