//! The sharded executor: one control plane, N shard state machines,
//! one canonical effect stream.
//!
//! # Execution model
//!
//! Every event carries a globally-unique `(due, seq)` key handed out by
//! one counter; the control queue and the per-shard queues are merged
//! by that key ([`meryn_sim::earliest_key`]), so the *schedule* is a
//! single total order — the same one the pre-shard monolith walked.
//!
//! Control events (arrivals, VM-lifecycle choreography) are processed
//! sequentially: they read cross-shard state (Algorithm 1 consults
//! every VC's bids) and consume shared RNG streams, so their order *is*
//! their semantics. Shard events (framework hand-off, job completion,
//! SLA checks) are the hot path — and they only touch their own shard.
//! Per time step the executor drains the maximal run of same-instant
//! shard events up to the next control event, groups it by shard,
//! processes the groups — **in parallel through the rayon shim when the
//! run spans shards and is big enough to pay for the fan-out** — and
//! then applies the collected [`Effect`]s sequentially in canonical
//! `(due, vc_id, seq)`-keyed order: a stable sort on the keys, whose
//! globally-unique `seq` makes the application order the exact global
//! schedule order the pre-shard monolith walked.
//!
//! Thread-count independence is structural: shard groups share no
//! state, group processing is deterministic per shard, and the
//! canonical effect order never depends on which worker finished
//! first. The same argument makes the batched loop equivalent to the
//! one-event-at-a-time [`ShardExecutor::step`] path: shard handlers
//! read no fabric state and no state that effect application writes
//! (the one exception — an SLA check that may escalate to the cloud
//! market — is routed to the control plane instead of a shard), so
//! deferring a run's effects to its barrier and replaying them in
//! schedule order produces the identical mutation sequence.

use std::sync::Arc;

use meryn_frameworks::{BatchFramework, Framework, FrameworkKind, MapReduceFramework};
use meryn_sim::metrics::SeriesSet;
use meryn_sim::{earliest_key, EventQueue, SimDuration, SimRng, SimTime};
use meryn_sla::pricing::PricingParams;
use meryn_sla::{AppTimes, Money};
use meryn_vmm::{CloudId, ImageRegistry, Location, PrivatePool, PublicCloud, VmId};
use meryn_workloads::Submission;
use rayon::prelude::*;

use crate::app::{AppPhase, Application};
use crate::bidding::BidRequest;
use crate::client_manager::admit;
use crate::cluster_manager::{VcView, VirtualCluster};
use crate::config::PlatformConfig;
use crate::engine::effects::{Effect, EffectSink, SequencedEffect};
use crate::engine::fabric::SharedFabric;
use crate::engine::shard::{Lending, PendingAcquisition, VcShard};
use crate::events::{Event, EventOwner};
use crate::ids::{AppId, Placement, VcId};
use crate::policy::{self, BiddingPolicy, PlacementPolicy};
use crate::protocol::{select_resources, Decision, ProtocolParams};
use crate::report::{AppRecord, RunReport};

/// One shard's drained slice of a same-instant run: `(seq, event)`
/// pairs in global seq order.
type RunSlice = Vec<(u64, Event)>;

/// Minimum number of same-instant shard events (across ≥ 2 shards)
/// before a run is fanned out to worker threads. Below this the scoped
/// thread spawn costs more than the work; the sequential path walks the
/// identical per-shard groups, so results do not depend on the gate.
const PARALLEL_RUN_MIN_EVENTS: usize = 24;

/// The assembled engine: shards + fabric + control plane.
pub struct ShardExecutor {
    pub(crate) cfg: PlatformConfig,
    placement: Arc<dyn PlacementPolicy>,
    bidding: Arc<dyn BiddingPolicy>,
    /// One shard per deployed VC, `VcId` order.
    pub(crate) shards: Vec<VcShard>,
    /// The shared singletons.
    pub(crate) fabric: SharedFabric,
    /// Order-sensitive events: arrivals and fabric choreography.
    control: EventQueue<Event>,
    /// The global sequence counter all queues share.
    next_seq: u64,
    now: SimTime,
    /// `AppId → VcId`, appended at admission (AppIds are dense).
    app_vc: Vec<VcId>,
    next_app: u64,
    /// Recycled scratch for fabric-apply follow-up events.
    scratch_out: Vec<(SimTime, Event)>,
    /// Recycled per-shard event-run buffers (the batch loop's inputs).
    event_bufs: Vec<RunSlice>,
    /// Recycled effect buffers (the batch loop's outputs).
    effect_bufs: Vec<Vec<SequencedEffect>>,
    /// Recycled merge buffer for one batch's canonical effect stream.
    effect_gather: Vec<SequencedEffect>,
    /// Same-instant runs wide enough to fan out to worker threads.
    parallel_runs: u64,
}

impl ShardExecutor {
    /// Deploys the platform described by `cfg`: boots the initial VC
    /// slaves on the private pool (deployment precedes the workload, so
    /// initial VMs come up instantly at t = 0) and pre-stages every
    /// framework image in every cloud (§3.5).
    pub fn new(cfg: PlatformConfig) -> Self {
        cfg.validate();
        let placement = policy::placement(&cfg.policy).expect("validated policy resolves");
        let bidding = policy::bidding(&cfg.bidding).expect("validated bidding policy resolves");
        let master = SimRng::new(cfg.seed);
        let mut pool = PrivatePool::with_vm_capacity(
            cfg.private_capacity,
            cfg.vm_spec,
            cfg.latencies.transfer_boot,
            cfg.latencies.transfer_stop,
            1.0,
            master.fork(1),
        );
        let mut images = ImageRegistry::new();
        let pricing =
            PricingParams::new(cfg.vm_price, cfg.penalty_factor).with_bound(cfg.penalty_bound);

        let mut vcs: Vec<VirtualCluster> = Vec::with_capacity(cfg.vcs.len());
        for (i, vc_cfg) in cfg.vcs.iter().enumerate() {
            let image = images.register(format!("{}-image", vc_cfg.name), 4096);
            let framework: Box<dyn Framework> = match vc_cfg.kind {
                FrameworkKind::Batch => {
                    if vc_cfg.backfill {
                        Box::new(BatchFramework::with_backfill())
                    } else {
                        Box::new(BatchFramework::new())
                    }
                }
                FrameworkKind::MapReduce => Box::new(MapReduceFramework::with_locality_penalty(
                    vc_cfg.locality_penalty_pct,
                )),
            };
            vcs.push(VirtualCluster::new(
                VcId(i),
                vc_cfg.name.clone(),
                vc_cfg.kind,
                image,
                framework,
                pricing,
            ));
        }

        let mut clouds = Vec::with_capacity(cfg.clouds.len());
        for (i, c) in cfg.clouds.iter().enumerate() {
            let mut cloud = PublicCloud::new(
                CloudId(i as u16),
                c.name.clone(),
                c.price.clone(),
                cfg.latencies.cloud_provision,
                cfg.latencies.cloud_release,
                c.speed,
                c.quota,
                master.fork(100 + i as u64),
            );
            for vc in &vcs {
                cloud.stage_image(vc.image);
            }
            clouds.push(cloud);
        }

        // Initial deployment: boot each VC's share instantly at t=0.
        for (vc, vc_cfg) in vcs.iter_mut().zip(&cfg.vcs) {
            for _ in 0..vc_cfg.initial_vms {
                let (vm, _boot) = pool
                    .begin_start(vc.image, SimTime::ZERO)
                    .expect("validated initial allocation fits");
                pool.complete_start(vm, SimTime::ZERO)
                    .expect("fresh VM completes start");
                vc.add_slave(vm, 1.0, Location::Private, cfg.private_cost)
                    .expect("fresh slave is unique");
            }
        }

        let lat_rng = master.fork(2);
        let fabric = SharedFabric::new(pool, clouds, images, cfg.client_managers, lat_rng);
        // Steady-state pending events scale with the live estate; the
        // workload bulk is reserved at enqueue time.
        let control = EventQueue::with_capacity(4 * cfg.private_capacity as usize);
        ShardExecutor {
            cfg,
            placement,
            bidding,
            shards: vcs.into_iter().map(VcShard::new).collect(),
            fabric,
            control,
            next_seq: 0,
            now: SimTime::ZERO,
            app_vc: Vec::new(),
            next_app: 0,
            scratch_out: Vec::new(),
            event_bufs: Vec::new(),
            effect_bufs: Vec::new(),
            effect_gather: Vec::new(),
            parallel_runs: 0,
        }
    }

    /// Sets whether the used-VM step curves are sampled (on by
    /// default). Peaks are tracked either way.
    pub fn set_series_recording(&mut self, on: bool) {
        self.fabric.record_series = on;
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far, summed over the control plane and every
    /// shard queue.
    pub fn events_processed(&self) -> u64 {
        self.control.events_processed()
            + self
                .shards
                .iter()
                .map(VcShard::events_processed)
                .sum::<u64>()
    }

    /// Events the control plane processed (arrivals + choreography).
    pub fn control_events_processed(&self) -> u64 {
        self.control.events_processed()
    }

    /// Same-instant cross-shard runs wide enough to be fanned out to
    /// worker threads so far.
    pub fn parallel_runs(&self) -> u64 {
        self.parallel_runs
    }

    /// Looks an application up across shards.
    pub fn app(&self, id: AppId) -> Option<&Application> {
        let vc = *self.app_vc.get(id.0 as usize)?;
        self.shards[vc.0].apps.get(&id)
    }

    // ---- scheduling --------------------------------------------------------

    /// Assigns the next global sequence tag and routes `event` to its
    /// owning queue.
    fn push_event(&mut self, due: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        // Escalation-capable SLA checks may withdraw a queued job and
        // lease from the shared cloud market mid-instant — that is
        // order-sensitive control work. Report-mode checks only observe
        // shard state and mark violations, which commutes, so they stay
        // on the hot sharded path.
        let escalating_check = matches!(event, Event::ControllerCheck { .. })
            && self.cfg.violation_policy == crate::config::ViolationPolicy::EscalateToCloud;
        let queue = match event.owner() {
            _ if escalating_check => &mut self.control,
            EventOwner::Control => &mut self.control,
            EventOwner::Shard(vc) => &mut self.shards[vc.0].queue,
            EventOwner::AppShard(app) => {
                let vc = self.app_vc[app.0 as usize];
                &mut self.shards[vc.0].queue
            }
        };
        queue.push_tagged(due, seq, event);
    }

    /// Enqueues a workload's arrivals onto the control plane.
    pub fn enqueue_workload<I>(&mut self, workload: I)
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<Submission>,
    {
        use std::borrow::Borrow as _;
        let workload = workload.into_iter();
        self.control.reserve(workload.size_hint().0);
        for sub in workload {
            let sub = *sub.borrow();
            self.push_event(sub.at, Event::Arrival(sub));
        }
    }

    /// `(queue index, key)` of the globally next event; index 0 is the
    /// control plane, `1 + i` is shard `i`.
    fn next_source(&mut self) -> Option<(usize, (SimTime, u64))> {
        let control_key = self.control.peek_key();
        earliest_key(
            std::iter::once(control_key).chain(self.shards.iter_mut().map(|s| s.queue.peek_key())),
        )
    }

    /// Processes exactly one event (the single-step debugging/test
    /// path). Equivalent to the batched loop: a batch is just a run of
    /// these with the effect application deferred to the barrier.
    pub fn step(&mut self) -> bool {
        let Some((idx, (t, _))) = self.next_source() else {
            return false;
        };
        self.now = t;
        if idx == 0 {
            let (_, seq, ev) = self.control.pop_keyed().expect("peeked");
            self.handle_control(t, seq, ev);
        } else {
            let shard = idx - 1;
            let (_, seq, ev) = self.shards[shard].queue.pop_keyed().expect("peeked");
            let mut events = self.event_bufs.pop().unwrap_or_default();
            events.push((seq, ev));
            let effects_buf = self.effect_bufs.pop().unwrap_or_default();
            let (events, effects) = self.shards[shard].process(t, events, effects_buf);
            self.event_bufs.push(events);
            self.apply_effects(effects);
        }
        true
    }

    /// Drains all queues: the batched, shard-parallel production loop.
    pub fn run_to_completion(&mut self) {
        loop {
            let Some((idx, (t, _))) = self.next_source() else {
                return;
            };
            self.now = t;
            if idx == 0 {
                let (_, seq, ev) = self.control.pop_keyed().expect("peeked");
                self.handle_control(t, seq, ev);
                continue;
            }
            // A shard event is next: drain the maximal same-instant run
            // of shard events, bounded by the next control event at this
            // instant (events scheduled *by* the run get later tags and
            // join a subsequent run — exactly the monolith's order).
            let barrier = match self.control.peek_key() {
                Some((due, seq)) if due == t => seq,
                _ => u64::MAX,
            };
            let mut total = 0usize;
            let mut work: Vec<(&mut VcShard, RunSlice, Vec<SequencedEffect>)> = Vec::new();
            for shard in &mut self.shards {
                let mut events = self.event_bufs.pop().unwrap_or_default();
                while let Some((due, seq)) = shard.queue.peek_key() {
                    if due != t || seq >= barrier {
                        break;
                    }
                    let (_, seq, ev) = shard.queue.pop_keyed().expect("peeked");
                    events.push((seq, ev));
                }
                if events.is_empty() {
                    self.event_bufs.push(events);
                } else {
                    total += events.len();
                    let effects = self.effect_bufs.pop().unwrap_or_default();
                    work.push((shard, events, effects));
                }
            }
            debug_assert!(total > 0, "a shard peeked ready but drained nothing");
            // Process the groups — concurrently when the run is wide
            // enough to pay for the fan-out. Either path computes the
            // identical per-shard effect buffers.
            let results: Vec<(RunSlice, Vec<SequencedEffect>)> =
                if work.len() >= 2 && total >= PARALLEL_RUN_MIN_EVENTS {
                    self.parallel_runs += 1;
                    work.into_par_iter()
                        .map(|(shard, events, effects)| shard.process(t, events, effects))
                        .collect()
                } else {
                    work.into_iter()
                        .map(|(shard, events, effects)| shard.process(t, events, effects))
                        .collect()
                };
            // Canonical application: merge the per-shard buffers by key.
            // Seqs are globally unique, so the stable sort replays the
            // run's effects in the exact global schedule order (ties —
            // one event's own effects — keep emission order).
            let mut gathered = std::mem::take(&mut self.effect_gather);
            debug_assert!(gathered.is_empty());
            for (mut events, mut effects) in results {
                events.clear();
                self.event_bufs.push(events);
                gathered.append(&mut effects);
                self.effect_bufs.push(effects);
            }
            gathered.sort_by_key(|e| e.key);
            for item in gathered.drain(..) {
                self.apply_one(item);
            }
            self.effect_gather = gathered;
        }
    }

    // ---- effect application ------------------------------------------------

    /// Applies an already-ordered effect buffer and recycles it (the
    /// control-handler and single-step path; the batch loop merges
    /// buffers itself and calls [`Self::apply_one`] directly).
    fn apply_effects(&mut self, mut effects: Vec<SequencedEffect>) {
        for item in effects.drain(..) {
            self.apply_one(item);
        }
        self.effect_bufs.push(effects);
    }

    fn apply_one(&mut self, item: SequencedEffect) {
        let SequencedEffect { key, effect } = item;
        match effect {
            Effect::ControllerVerdict {
                app,
                needs_attention,
                violated,
            } => self.apply_verdict(key.due, app, needs_attention, violated),
            other => {
                let mut out = std::mem::take(&mut self.scratch_out);
                self.fabric.apply(key.due, other, &mut out);
                for (due, ev) in out.drain(..) {
                    self.push_event(due, ev);
                }
                self.scratch_out = out;
            }
        }
    }

    /// Acts on an Application Controller verdict: escalate, record the
    /// violation, or re-arm the periodic check.
    fn apply_verdict(
        &mut self,
        now: SimTime,
        app_id: AppId,
        needs_attention: bool,
        violated: bool,
    ) {
        let Some(interval) = self.cfg.controller_check_interval else {
            return;
        };
        if needs_attention
            && self.cfg.violation_policy == crate::config::ViolationPolicy::EscalateToCloud
            && self.try_escalate_to_cloud(now, app_id)
        {
            // Escalated: a fresh completion prediction is coming; keep
            // monitoring.
            self.push_event(now + interval, Event::ControllerCheck { app: app_id });
            return;
        }
        if violated {
            // Report once and retire: the violation is now the Cluster
            // Manager's problem (§3.3) — and a never-completing job must
            // not keep the event loop alive forever.
            let vc = self.app_vc[app_id.0 as usize];
            let app = self.shards[vc.0].apps.get_mut(&app_id).expect("app exists");
            if app.violation_detected.is_none() {
                app.violation_detected = Some(now);
            }
            return;
        }
        self.push_event(now + interval, Event::ControllerCheck { app: app_id });
    }

    /// Attempts the [`crate::config::ViolationPolicy::EscalateToCloud`]
    /// action: pull the application's waiting job out of the framework
    /// queue and burst it to the cheapest cloud. Returns `false` when
    /// the application is not actually waiting in a queue or no cloud
    /// can serve it.
    fn try_escalate_to_cloud(&mut self, now: SimTime, app_id: AppId) -> bool {
        let vc_id = self.app_vc[app_id.0 as usize];
        let (spec, job) = {
            let app = &self.shards[vc_id.0].apps[&app_id];
            (app.spec, app.job)
        };
        let Some(job) = job else {
            return false; // submission pipeline still in flight
        };
        if self.shards[vc_id.0].pending.contains_key(&app_id) {
            return false; // an acquisition (or escalation) is in flight
        }
        let nb = spec.nb_vms();
        let offer = self
            .fabric
            .clouds
            .iter()
            .filter(|c| c.can_lease(nb))
            .map(|c| (c.id, c.price_at(now)))
            .min_by_key(|&(_, r)| r);
        let Some((cloud, _)) = offer else {
            return false;
        };
        // `withdraw` fails exactly when the job is not waiting in the
        // queue — running, held for lending, or done.
        if self.shards[vc_id.0].vc.framework.withdraw(job).is_err() {
            return false;
        }
        self.fabric.bursts += nb;
        self.fabric.escalations += 1;
        let image = self.shards[vc_id.0].vc.image;
        let shape = self.cfg.vm_spec;
        let c = &mut self.fabric.clouds[cloud.0 as usize];
        let speed = c.speed();
        let mut vms = Vec::with_capacity(nb as usize);
        let mut ready = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            let (vm, prov, rate) = c
                .begin_lease(image, shape, now)
                .expect("can_lease checked above");
            ready.push((now + prov, Event::CloudVmReady { app: app_id, vm }));
            vms.push((vm, rate));
        }
        for (due, ev) in ready {
            self.push_event(due, ev);
        }
        let shard = &mut self.shards[vc_id.0];
        shard.pending.insert(
            app_id,
            PendingAcquisition::CloudLease {
                cloud,
                awaiting: nb,
                vms,
                speed,
                existing_job: Some(job),
            },
        );
        shard.apps.get_mut(&app_id).expect("app exists").placement = Placement::Cloud { cloud };
        true
    }

    // ---- control plane -----------------------------------------------------

    fn handle_control(&mut self, now: SimTime, seq: u64, ev: Event) {
        match ev {
            Event::Arrival(sub) => self.on_arrival(now, seq, sub),
            Event::TransferVmStopped { app, vm } => self.on_transfer_stopped(now, app, vm),
            Event::TransferVmBooted { app, vm } => self.on_transfer_booted(now, seq, app, vm),
            Event::CloudVmReady { app, vm } => self.on_cloud_ready(now, seq, app, vm),
            Event::ReturnVmStopped { ret, vm } => self.on_return_stopped(now, ret, vm),
            Event::ReturnVmBooted { ret, vm } => self.on_return_booted(now, seq, ret, vm),
            Event::CloudVmReleased { cloud, vm } => self.on_cloud_released(now, cloud, vm),
            // Only escalation-capable checks land here (see push_event);
            // Report-mode checks are shard events.
            Event::ControllerCheck { app } => self.on_controller_check_control(now, app),
            other => unreachable!("shard event routed to the control plane: {other:?}"),
        }
    }

    /// The control-plane SLA check: the full monolith semantics, acting
    /// at the event's exact schedule position (an escalation withdraws
    /// a queued job and leases cloud VMs, so it must not be deferred
    /// past later same-instant events).
    fn on_controller_check_control(&mut self, now: SimTime, app_id: AppId) {
        let vc = self.app_vc[app_id.0 as usize];
        let app = self.shards[vc.0].apps.get(&app_id).expect("app exists");
        if app.is_completed() {
            return; // controller retires with its application
        }
        let status = meryn_sla::violation::check(&app.contract, &app.times, now);
        self.apply_verdict(now, app_id, status.needs_attention(), status.is_violated());
    }

    fn on_arrival(&mut self, now: SimTime, seq: u64, sub: Submission) {
        let max_vms = self.cfg.private_capacity;
        let (vc_id, spec, contract, rounds, quoted_exec, decision) = {
            let views: Vec<VcView<'_>> = self.shards.iter().map(VcShard::view).collect();
            let admitted = admit(
                &sub,
                &views,
                now,
                self.cfg.quote_speed,
                self.cfg.processing_allowance,
                self.cfg.max_negotiation_rounds,
                max_vms,
            );
            let (vc_id, spec, contract, rounds) = match admitted {
                Ok(x) => x,
                Err(_) => {
                    drop(views);
                    self.fabric.rejected += 1;
                    return;
                }
            };
            let quoted_exec = views[vc_id.0]
                .vc
                .framework
                .estimate_exec(&spec, spec.nb_vms(), self.cfg.quote_speed, true)
                .expect("admission type-checked the spec");
            let req = BidRequest {
                nb_vms: spec.nb_vms(),
                duration: quoted_exec + self.cfg.processing_allowance,
            };
            let decision = select_resources(
                self.placement.as_ref(),
                self.bidding.as_ref(),
                vc_id,
                &views,
                &self.fabric.clouds,
                req,
                now,
                ProtocolParams {
                    storage_rate: self.cfg.storage_rate,
                    suspension_enabled: self.cfg.suspension_enabled,
                    private_cost: self.cfg.private_cost,
                },
            );
            (vc_id, spec, contract, rounds, quoted_exec, decision)
        };

        let app_id = AppId(self.next_app);
        self.next_app += 1;
        self.app_vc.push(vc_id);

        let placement = match decision {
            Decision::Local | Decision::Queue => Placement::Local,
            Decision::LocalAfterSuspension { .. } => Placement::LocalAfterSuspension,
            Decision::FromVc { src } => Placement::VcVms { from: src },
            Decision::FromVcAfterSuspension { src, .. } => {
                Placement::VcVmsAfterSuspension { from: src }
            }
            Decision::Cloud { cloud, .. } => Placement::Cloud { cloud },
        };

        self.shards[vc_id.0].apps.insert(
            app_id,
            Application {
                id: app_id,
                vc: vc_id,
                spec,
                contract,
                times: AppTimes::submitted(now, quoted_exec, contract.terms.deadline),
                job: None,
                placement,
                phase: AppPhase::Acquiring,
                framework_submitted_at: None,
                cost: Money::ZERO,
                negotiation_rounds: rounds,
                suspensions: 0,
                violation_detected: None,
            },
        );

        let handling = self.fabric.sample(self.cfg.latencies.base);
        let base = self.fabric.cm_delay(now, handling);
        let nb = spec.nb_vms();

        match decision {
            Decision::Local => {
                let shard = &mut self.shards[vc_id.0];
                let mut vms = shard.take_vm_buf();
                shard.vc.framework.idle_slaves_into(nb as usize, &mut vms);
                assert_eq!(
                    vms.len() as u64,
                    nb,
                    "Local decision implies enough idle VMs"
                );
                for &vm in &vms {
                    shard
                        .vc
                        .framework
                        .reserve_slave(vm)
                        .expect("idle slave is reservable");
                }
                shard.acquired.insert(app_id, vms);
                self.push_event(now + base, Event::SubmitToFramework { app: app_id });
            }
            Decision::Queue => {
                // Nothing can provide VMs now: hand to the framework and
                // let FIFO/backfill handle it when capacity frees up.
                self.push_event(now + base, Event::SubmitToFramework { app: app_id });
            }
            Decision::LocalAfterSuspension { victim } => {
                let mut sink = EffectSink::new(now, vc_id, seq);
                let freed = self.shards[vc_id.0].suspend_app(now, victim, &mut sink);
                self.fabric.suspensions += 1;
                self.apply_effects(sink.into_effects());
                assert!(freed.len() as u64 >= nb);
                let shard = &mut self.shards[vc_id.0];
                shard
                    .lendings
                    .insert(app_id, Lending { src: vc_id, victim });
                let mut vms = shard.take_vm_buf();
                vms.extend(freed.into_iter().take(nb as usize));
                for &vm in &vms {
                    shard
                        .vc
                        .framework
                        .reserve_slave(vm)
                        .expect("freed slave is reservable");
                }
                shard.acquired.insert(app_id, vms);
                let extra = self.fabric.sample(self.cfg.latencies.suspend_local);
                self.push_event(now + base + extra, Event::SubmitToFramework { app: app_id });
            }
            Decision::FromVc { src } => {
                self.fabric.transfers += nb;
                let mut victims = self.shards[src.0].take_vm_buf();
                self.shards[src.0]
                    .vc
                    .framework
                    .idle_slaves_into(nb as usize, &mut victims);
                assert_eq!(victims.len() as u64, nb, "zero bid implies enough idle VMs");
                self.begin_transfer_stops(now, app_id, src, &victims, base);
                self.shards[src.0].recycle_vm_buf(victims);
            }
            Decision::FromVcAfterSuspension { src, victim } => {
                let mut sink = EffectSink::new(now, src, seq);
                let freed = self.shards[src.0].suspend_app(now, victim, &mut sink);
                self.fabric.suspensions += 1;
                self.apply_effects(sink.into_effects());
                assert!(
                    freed.len() as u64 >= nb,
                    "victim must hold at least the requested VMs"
                );
                self.shards[vc_id.0]
                    .lendings
                    .insert(app_id, Lending { src, victim });
                let extra = self.fabric.sample(self.cfg.latencies.suspend_remote);
                let mut take = self.shards[src.0].take_vm_buf();
                take.extend(freed.into_iter().take(nb as usize));
                self.begin_transfer_stops(now, app_id, src, &take, base + extra);
                self.shards[src.0].recycle_vm_buf(take);
            }
            Decision::Cloud { cloud, .. } => {
                self.fabric.bursts += nb;
                let vc_image = self.shards[vc_id.0].vc.image;
                let spec_shape = self.cfg.vm_spec;
                let c = &mut self.fabric.clouds[cloud.0 as usize];
                let speed = c.speed();
                let mut vms = Vec::with_capacity(nb as usize);
                let mut ready = Vec::with_capacity(nb as usize);
                for _ in 0..nb {
                    let (vm, prov, rate) = c
                        .begin_lease(vc_image, spec_shape, now)
                        .expect("protocol only offers clouds that can lease");
                    ready.push((now + base + prov, Event::CloudVmReady { app: app_id, vm }));
                    vms.push((vm, rate));
                }
                for (due, ev) in ready {
                    self.push_event(due, ev);
                }
                self.shards[vc_id.0].pending.insert(
                    app_id,
                    PendingAcquisition::CloudLease {
                        cloud,
                        awaiting: nb,
                        vms,
                        speed,
                        existing_job: None,
                    },
                );
            }
        }

        if let Some(interval) = self.cfg.controller_check_interval {
            self.push_event(now + interval, Event::ControllerCheck { app: app_id });
        }
    }

    /// Removes `vms` from the source VC and begins stopping them in the
    /// pool; each stop chains into a boot with the destination VC's
    /// image.
    fn begin_transfer_stops(
        &mut self,
        now: SimTime,
        app: AppId,
        src: VcId,
        vms: &[VmId],
        lead: SimDuration,
    ) {
        for &vm in vms {
            self.shards[src.0]
                .vc
                .remove_slave(vm)
                .expect("transfer candidates are idle slaves");
            let stop = self
                .fabric
                .pool
                .begin_stop(vm, now)
                .expect("idle private slave can stop");
            self.push_event(now + lead + stop, Event::TransferVmStopped { app, vm });
        }
        let dest = self.app_vc[app.0 as usize];
        let shard = &mut self.shards[dest.0];
        let collect = shard.take_vm_buf();
        shard.pending.insert(
            app,
            PendingAcquisition::Transfer {
                awaiting: vms.len() as u64,
                vms: collect,
            },
        );
    }

    fn on_transfer_stopped(&mut self, now: SimTime, app: AppId, vm: VmId) {
        self.fabric
            .pool
            .complete_stop(vm, now)
            .expect("transfer stop completes");
        let dest = self.app_vc[app.0 as usize];
        let image = self.shards[dest.0].vc.image;
        let (new_vm, boot) = self
            .fabric
            .pool
            .begin_start(image, now)
            .expect("the slot just freed");
        self.push_event(now + boot, Event::TransferVmBooted { app, vm: new_vm });
    }

    fn on_transfer_booted(&mut self, now: SimTime, seq: u64, app: AppId, vm: VmId) {
        self.fabric
            .pool
            .complete_start(vm, now)
            .expect("transfer boot completes");
        let dest = self.app_vc[app.0 as usize];
        let shard = &mut self.shards[dest.0];
        let done = {
            let pending = shard.pending.get_mut(&app).expect("transfer in flight");
            match pending {
                PendingAcquisition::Transfer { awaiting, vms } => {
                    vms.push(vm);
                    *awaiting -= 1;
                    *awaiting == 0
                }
                _ => unreachable!("transfer event for non-transfer pending"),
            }
        };
        if done {
            let Some(PendingAcquisition::Transfer { vms, .. }) = shard.pending.remove(&app) else {
                unreachable!("just matched")
            };
            let rate = self.cfg.private_cost;
            for &vm in &vms {
                shard
                    .vc
                    .add_slave(vm, 1.0, Location::Private, rate)
                    .expect("fresh transferred slave is unique");
            }
            let mut sink = EffectSink::new(now, dest, seq);
            shard.submit_pinned_now(now, app, vms, &mut sink);
            self.apply_effects(sink.into_effects());
        }
    }

    fn on_cloud_ready(&mut self, now: SimTime, seq: u64, app: AppId, vm: VmId) {
        let dest = self.app_vc[app.0 as usize];
        let done = {
            let pending = self.shards[dest.0]
                .pending
                .get_mut(&app)
                .expect("lease in flight");
            match pending {
                PendingAcquisition::CloudLease {
                    cloud, awaiting, ..
                } => {
                    self.fabric.clouds[cloud.0 as usize]
                        .complete_lease(vm, now)
                        .expect("lease completes");
                    *awaiting -= 1;
                    *awaiting == 0
                }
                _ => unreachable!("cloud event for non-cloud pending"),
            }
        };
        if done {
            let shard = &mut self.shards[dest.0];
            let Some(PendingAcquisition::CloudLease {
                cloud,
                vms,
                speed,
                existing_job,
                ..
            }) = shard.pending.remove(&app)
            else {
                unreachable!("just matched")
            };
            let mut ids = shard.take_vm_buf();
            ids.extend(vms.iter().map(|&(vm, _)| vm));
            for (vm, rate) in vms {
                shard
                    .vc
                    .add_slave(vm, speed, Location::Cloud(cloud), rate)
                    .expect("fresh leased slave is unique");
            }
            let mut sink = EffectSink::new(now, dest, seq);
            match existing_job {
                None => shard.submit_pinned_now(now, app, ids, &mut sink),
                Some(job) => {
                    // SLA escalation: the job already exists and was
                    // withdrawn from the queue; start it on the leases.
                    let dispatch = shard
                        .vc
                        .framework
                        .start_withdrawn_pinned(job, &ids, now)
                        .expect("withdrawn job starts on its leases");
                    shard.recycle_vm_buf(ids);
                    shard.register_dispatch(now, dispatch, &mut sink);
                }
            }
            self.apply_effects(sink.into_effects());
        }
    }

    fn on_return_stopped(&mut self, now: SimTime, ret: u64, vm: VmId) {
        self.fabric
            .pool
            .complete_stop(vm, now)
            .expect("return stop completes");
        let src = self.fabric.returns[&ret].src;
        let image = self.shards[src.0].vc.image;
        let (new_vm, boot) = self
            .fabric
            .pool
            .begin_start(image, now)
            .expect("the slot just freed");
        self.push_event(now + boot, Event::ReturnVmBooted { ret, vm: new_vm });
    }

    fn on_return_booted(&mut self, now: SimTime, seq: u64, ret: u64, vm: VmId) {
        self.fabric
            .pool
            .complete_start(vm, now)
            .expect("return boot completes");
        let done = {
            let op = self.fabric.returns.get_mut(&ret).expect("return in flight");
            op.vms.push(vm);
            op.awaiting -= 1;
            op.awaiting == 0
        };
        if done {
            let op = self.fabric.returns.remove(&ret).expect("just checked");
            let rate = self.cfg.private_cost;
            let shard = &mut self.shards[op.src.0];
            for vm in op.vms {
                shard
                    .vc
                    .add_slave(vm, 1.0, Location::Private, rate)
                    .expect("fresh returned slave is unique");
            }
            let victim_job = shard.apps[&op.victim].job.expect("held victim has a job");
            shard
                .vc
                .framework
                .requeue_held(victim_job)
                .expect("victim was held");
            let mut sink = EffectSink::new(now, op.src, seq);
            shard.dispatch(now, &mut sink);
            self.apply_effects(sink.into_effects());
        }
    }

    fn on_cloud_released(&mut self, now: SimTime, cloud: CloudId, vm: VmId) {
        let close = self.fabric.clouds[cloud.0 as usize]
            .complete_release(vm, now)
            .expect("release completes");
        self.fabric.cloud_bill += close.cost;
    }

    // ---- reporting ---------------------------------------------------------

    /// Builds the final report. Consumes the executor.
    pub fn finalize(self) -> RunReport {
        let total_apps: usize = self.shards.iter().map(|s| s.apps.len()).sum();
        let mut apps: Vec<&Application> = Vec::with_capacity(total_apps);
        for shard in &self.shards {
            apps.extend(shard.apps.values());
        }
        // Shards hold disjoint id ranges interleaved by arrival order;
        // the report lists applications in submission (= AppId) order.
        apps.sort_by_key(|a| a.id);
        let mut records = Vec::with_capacity(apps.len());
        let mut completion = SimTime::ZERO;
        for app in apps {
            if let Some(at) = app.completed_at() {
                completion = completion.max_of(at);
            }
            records.push(AppRecord {
                id: app.id,
                vc: app.vc,
                vc_name: self.shards[app.vc.0].vc.name.clone(),
                placement: app.placement.table1_case().to_owned(),
                submitted: app.contract.agreed_at,
                framework_submitted: app.framework_submitted_at,
                completed: app.completed_at(),
                processing: app.processing_time(),
                exec: app.exec_duration(),
                cost: app.cost,
                price: app.contract.terms.price,
                revenue: app.revenue().unwrap_or(Money::ZERO),
                penalty: app.penalty().unwrap_or(Money::ZERO),
                violated: app.violated(),
                suspensions: app.suspensions,
                negotiation_rounds: app.negotiation_rounds,
            });
        }
        let events_processed = self.events_processed();
        let (peak_private, peak_cloud) = self.fabric.peaks();
        let mut series = SeriesSet::new();
        series.add(self.fabric.used_private);
        series.add(self.fabric.used_cloud);
        RunReport {
            mode: self.cfg.policy.clone(),
            seed: self.cfg.seed,
            apps: records,
            rejected: self.fabric.rejected,
            completion_time: completion,
            series,
            peak_private: peak_private as f64,
            peak_cloud: peak_cloud as f64,
            transfers: self.fabric.transfers,
            bursts: self.fabric.bursts,
            suspensions: self.fabric.suspensions,
            escalations: self.fabric.escalations,
            cloud_bill: self.fabric.cloud_bill,
            events_processed,
        }
    }
}
