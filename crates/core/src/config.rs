//! Platform configuration.
//!
//! [`PlatformConfig::paper`] reproduces the evaluation deployment: 50
//! private VM slots split fairly between two batch VCs, one public cloud
//! with infinite capacity, private VM cost 2 units/VM·s, cloud VM cost 4
//! units/VM·s, and operation latencies calibrated so the end-to-end
//! submission processing times land in the paper's Table 1 ranges.

use meryn_frameworks::FrameworkKind;
use meryn_sim::SimDuration;
use meryn_sla::pricing::PenaltyBound;
use meryn_sla::VmRate;
use meryn_vmm::{LatencyModel, PriceModel, VmSpec};
use serde::{Deserialize, Serialize};

/// What the Cluster Manager does when an Application Controller reports
/// a *queued* application whose SLA is at risk (§3.3 leaves these
/// policies open; the paper's evaluation uses [`ViolationPolicy::Report`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationPolicy {
    /// Record the violation and do nothing else (the paper's behaviour).
    Report,
    /// Withdraw the waiting job from the framework queue and burst it to
    /// the cheapest cloud that can serve it.
    EscalateToCloud,
}

/// The default bidding-policy name (`#[serde(default)]` hook).
fn default_bidding() -> String {
    "standard".to_owned()
}

/// Configuration of one Virtual Cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcConfig {
    /// Display name (e.g. `"VC1"`).
    pub name: String,
    /// Hosted application type.
    pub kind: FrameworkKind,
    /// Private VMs booted for this VC at deployment.
    pub initial_vms: u64,
    /// Whether the framework scheduler backfills.
    pub backfill: bool,
    /// MapReduce only: map-phase penalty when all slaves are remote.
    pub locality_penalty_pct: u32,
}

impl VcConfig {
    /// A batch VC with `initial_vms` slaves and FIFO dispatch.
    pub fn batch(name: impl Into<String>, initial_vms: u64) -> Self {
        VcConfig {
            name: name.into(),
            kind: FrameworkKind::Batch,
            initial_vms,
            backfill: false,
            locality_penalty_pct: 0,
        }
    }

    /// A MapReduce VC with `initial_vms` slaves.
    pub fn mapreduce(name: impl Into<String>, initial_vms: u64) -> Self {
        VcConfig {
            name: name.into(),
            kind: FrameworkKind::MapReduce,
            initial_vms,
            backfill: false,
            locality_penalty_pct: 30,
        }
    }
}

/// Configuration of one public cloud.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudConfig {
    /// Display name (e.g. `"edel"`).
    pub name: String,
    /// Price model quoted to the protocol and charged on leases.
    pub price: PriceModel,
    /// Relative CPU speed of its VMs (1.0 = private reference).
    pub speed: f64,
    /// Max concurrent VMs, `None` = the paper's "infinite".
    pub quota: Option<u64>,
}

/// Operation latency models; defaults are calibrated against Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Latencies {
    /// Client/Cluster Manager submission handling (the whole local-vm
    /// path: negotiate, translate, upload).
    pub base: LatencyModel,
    /// Extra time to suspend a local application before reusing its VMs.
    pub suspend_local: LatencyModel,
    /// Extra time for a *remote* VC to suspend one of its applications
    /// during a lending exchange (cross-master coordination).
    pub suspend_remote: LatencyModel,
    /// Shutting down a private VM for a transfer (§3.4 step 1–2).
    pub transfer_stop: LatencyModel,
    /// Booting a private VM with the destination framework's image
    /// (§3.4 step 3–4).
    pub transfer_boot: LatencyModel,
    /// Provisioning + configuring a leased cloud VM (§3.5).
    pub cloud_provision: LatencyModel,
    /// Stopping a leased cloud VM.
    pub cloud_release: LatencyModel,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            // Table 1: local-vm 7–15 s is pure CM handling.
            base: LatencyModel::uniform_secs(7, 15),
            // local-vm after suspension 10–17 s ⇒ suspension adds ~2–4 s.
            suspend_local: LatencyModel::uniform_secs(2, 4),
            // vc-vm after suspension 60–68 s ⇒ remote suspension adds
            // much more (cross-master round-trips).
            suspend_remote: LatencyModel::uniform_secs(16, 20),
            // vc-vm 40–58 s ⇒ stop + boot ≈ 33–43 s on top of base.
            transfer_stop: LatencyModel::uniform_secs(13, 17),
            transfer_boot: LatencyModel::uniform_secs(20, 26),
            // cloud-vm 60–84 s ⇒ provisioning ≈ 53–69 s on top of base.
            cloud_provision: LatencyModel::uniform_secs(53, 69),
            cloud_release: LatencyModel::uniform_secs(5, 10),
        }
    }
}

/// One scheduled whole-cloud outage window: cloud `cloud` refuses every
/// lease attempt in `[from_secs, to_secs)` (control-plane outage —
/// already-leased VMs keep running).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Index into [`PlatformConfig::clouds`].
    pub cloud: usize,
    /// Window start (inclusive), seconds.
    pub from_secs: u64,
    /// Window end (exclusive), seconds.
    pub to_secs: u64,
}

fn default_retry_max() -> u32 {
    3
}

fn default_backoff_base_secs() -> u64 {
    30
}

fn default_backoff_cap_secs() -> u64 {
    480
}

fn default_lease_rejection_secs() -> u64 {
    60
}

/// Seeded failure processes and their recovery knobs. Fully disabled by
/// default: with no crash hazard, no rejection probability and no
/// outage windows the fault plane draws nothing and schedules nothing,
/// so every fault-free trajectory is byte-identical to a build without
/// it — existing scenario specs and goldens are untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-VM mean time between failures, seconds (exponential crash
    /// hazard drawn from the per-shard fault streams). `None` disables
    /// crashes.
    #[serde(default)]
    pub vm_mtbf_secs: Option<u64>,
    /// Probability that one cloud-lease admission attempt is
    /// transiently rejected (0.0 disables the rejection process).
    #[serde(default)]
    pub lease_rejection_prob: f64,
    /// How long a transient rejection blacks the cloud out, seconds.
    #[serde(default = "default_lease_rejection_secs")]
    pub lease_rejection_secs: u64,
    /// Scheduled whole-cloud outage windows.
    #[serde(default)]
    pub cloud_outages: Vec<OutageWindow>,
    /// Lease-retry budget: after this many backed-off retries the
    /// acquisition degrades to the private pool / SLA-violation pricing.
    #[serde(default = "default_retry_max")]
    pub retry_max: u32,
    /// First retry delay, seconds; attempt `k` waits
    /// `min(backoff_base_secs << k, backoff_cap_secs)` — deterministic
    /// capped exponential backoff, no jitter draws.
    #[serde(default = "default_backoff_base_secs")]
    pub backoff_base_secs: u64,
    /// Ceiling on the backoff delay, seconds.
    #[serde(default = "default_backoff_cap_secs")]
    pub backoff_cap_secs: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            vm_mtbf_secs: None,
            lease_rejection_prob: 0.0,
            lease_rejection_secs: default_lease_rejection_secs(),
            cloud_outages: Vec::new(),
            retry_max: default_retry_max(),
            backoff_base_secs: default_backoff_base_secs(),
            backoff_cap_secs: default_backoff_cap_secs(),
        }
    }
}

impl FaultSpec {
    /// True when no failure process is armed (the default): the
    /// `skip_serializing_if` hook keeping fault-free configs
    /// byte-identical on the wire.
    pub fn is_disabled(&self) -> bool {
        self.vm_mtbf_secs.is_none()
            && self.lease_rejection_prob == 0.0
            && self.cloud_outages.is_empty()
    }

    /// True when any failure process is armed.
    pub fn enabled(&self) -> bool {
        !self.is_disabled()
    }

    /// The deterministic capped exponential backoff delay before retry
    /// attempt `attempt` (0-based).
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        let shifted = self
            .backoff_base_secs
            .checked_shl(attempt)
            .unwrap_or(self.backoff_cap_secs);
        SimDuration::from_secs(shifted.min(self.backoff_cap_secs))
    }
}

/// Full platform configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Placement-policy name, resolved through the
    /// [`crate::policy`] registry at deployment (`"meryn"`,
    /// `"static"`, `"never-burst"`, `"always-burst"`, `"cost-greedy"`,
    /// or anything registered since).
    pub policy: String,
    /// Bidding-policy name (`"standard"` = the paper's Algorithm 2,
    /// `"free-only"` = zero bids only).
    #[serde(default = "default_bidding")]
    pub bidding: String,
    /// Master RNG seed; every latency and price draw descends from it.
    pub seed: u64,
    /// Fixed private VM hosting capacity (the evaluation: 50).
    pub private_capacity: u64,
    /// Uniform VM instance shape.
    pub vm_spec: VmSpec,
    /// Cost of a private VM to the provider, per VM-second (paper: 2).
    pub private_cost: VmRate,
    /// VM price charged to users per VM-second (paper keeps it ≥ the
    /// cloud VM cost; default 4).
    pub vm_price: VmRate,
    /// The penalty divisor N of eq. 3.
    pub penalty_factor: u64,
    /// Bound on delay penalties.
    pub penalty_bound: PenaltyBound,
    /// Storage cost rate behind the "minimal suspension cost" of
    /// Algorithm 2, per VM-second of lending duration.
    pub storage_rate: VmRate,
    /// Whether Algorithm 2 suspension bids participate at all
    /// (the hard off switch of ablation A3).
    pub suspension_enabled: bool,
    /// Submission-processing allowance added to quoted deadlines
    /// (the paper uses its worst measured case: 84 s).
    pub processing_allowance: SimDuration,
    /// The conservative CPU speed used when quoting execution times
    /// (the paper quotes with the *cloud* execution time, the slowest).
    pub quote_speed: f64,
    /// Virtual clusters to deploy.
    pub vcs: Vec<VcConfig>,
    /// Public clouds available for bursting.
    pub clouds: Vec<CloudConfig>,
    /// Operation latencies.
    pub latencies: Latencies,
    /// Maximum SLA negotiation rounds before rejecting a submission.
    pub max_negotiation_rounds: u32,
    /// Period of Application Controller SLA checks; `None` disables the
    /// periodic monitor (violations are still assessed at completion).
    pub controller_check_interval: Option<SimDuration>,
    /// What to do when a queued application's SLA is reported at risk.
    pub violation_policy: ViolationPolicy,
    /// Number of Client Manager instances handling submissions.
    /// Each submission occupies one Client Manager for its base
    /// processing latency; concurrent arrivals queue for a free one
    /// (§3.2: "Meryn may have several Client Managers in order to avoid
    /// a potential bottleneck, which could happen in peak periods").
    /// `None` models unbounded front-end concurrency (the paper's
    /// Table 1 measurements are uncontended, so this is the default).
    pub client_managers: Option<usize>,
    /// Seeded failure processes (VM crashes, cloud outages, transient
    /// lease rejections) and their retry/backoff recovery knobs.
    /// Defaulted off and skipped on the wire when disabled, so existing
    /// specs and goldens are byte-identical.
    #[serde(default, skip_serializing_if = "FaultSpec::is_disabled")]
    pub faults: FaultSpec,
}

impl PlatformConfig {
    /// The evaluation deployment (§5.2–5.3), parameterized by the
    /// placement-policy name (the paper compares `"meryn"` and
    /// `"static"`).
    ///
    /// * 50 private VM slots, two batch VCs with 25 each;
    /// * one public cloud, infinite capacity, static price 4 units/VM·s,
    ///   VMs 1550/1670 ≈ 7.2 % slower than private ones;
    /// * private cost 2 units/VM·s; user VM price 4 units/VM·s;
    /// * penalty factor N = 1, penalties capped at the price;
    /// * quoted deadlines assume cloud-speed execution + 84 s processing.
    pub fn paper(policy: impl Into<String>) -> Self {
        PlatformConfig {
            policy: policy.into(),
            bidding: default_bidding(),
            seed: 0xC0FFEE,
            private_capacity: 50,
            vm_spec: VmSpec::EC2_MEDIUM_LIKE,
            private_cost: VmRate::per_vm_second(2),
            vm_price: VmRate::per_vm_second(4),
            penalty_factor: 1,
            penalty_bound: PenaltyBound::AtPrice,
            storage_rate: VmRate::from_micro(500_000), // 0.5 units/VM·s
            suspension_enabled: true,
            processing_allowance: SimDuration::from_secs(84),
            quote_speed: 1550.0 / 1670.0,
            vcs: vec![VcConfig::batch("VC1", 25), VcConfig::batch("VC2", 25)],
            clouds: vec![CloudConfig {
                name: "edel".into(),
                price: PriceModel::Static(VmRate::per_vm_second(4)),
                speed: 1550.0 / 1670.0,
                quota: None,
            }],
            latencies: Latencies::default(),
            max_negotiation_rounds: 8,
            controller_check_interval: Some(SimDuration::from_secs(30)),
            violation_policy: ViolationPolicy::Report,
            client_managers: None,
            faults: FaultSpec::default(),
        }
    }

    /// Replaces the seed (builder style, for replica sweeps).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the placement-policy name.
    pub fn with_policy(mut self, policy: impl Into<String>) -> Self {
        self.policy = policy.into();
        self
    }

    /// Replaces the penalty factor N.
    pub fn with_penalty_factor(mut self, n: u64) -> Self {
        self.penalty_factor = n;
        self
    }

    /// Scales every cloud's whole price curve by `factor` (ablation
    /// A2) — static, diurnal and scheduled models alike.
    // meryn-lint: allow(float-money) — the f64 is the ablation scale factor; the curve stays in integer Money
    pub fn with_cloud_price_factor(mut self, factor: f64) -> Self {
        for c in &mut self.clouds {
            c.price = c.price.clone().scaled(factor);
        }
        self
    }

    /// Validates internal consistency; called by the platform at start.
    pub fn validate(&self) {
        assert!(!self.vcs.is_empty(), "need at least one VC");
        assert!(
            crate::policy::placement(&self.policy).is_some(),
            "unknown placement policy {:?} (registered: {:?})",
            self.policy,
            crate::policy::placement_names()
        );
        assert!(
            crate::policy::bidding(&self.bidding).is_some(),
            "unknown bidding policy {:?} (registered: {:?})",
            self.bidding,
            crate::policy::bidding_names()
        );
        assert!(self.penalty_factor > 0, "penalty factor N must be positive");
        assert!(
            self.quote_speed > 0.0 && self.quote_speed <= 1.0,
            "quote speed must be in (0, 1]"
        );
        let initial: u64 = self.vcs.iter().map(|v| v.initial_vms).sum();
        assert!(
            initial <= self.private_capacity,
            "initial VC allocation ({initial}) exceeds private capacity ({})",
            self.private_capacity
        );
        assert!(
            (0.0..=1.0).contains(&self.faults.lease_rejection_prob),
            "lease_rejection_prob must be a probability"
        );
        if let Some(mtbf) = self.faults.vm_mtbf_secs {
            assert!(mtbf > 0, "vm_mtbf_secs must be positive");
        }
        for w in &self.faults.cloud_outages {
            assert!(
                w.cloud < self.clouds.len(),
                "outage window names cloud {} but only {} clouds are configured",
                w.cloud,
                self.clouds.len()
            );
            assert!(
                w.from_secs < w.to_secs,
                "outage window must end after it starts"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation_setup() {
        let cfg = PlatformConfig::paper("meryn");
        cfg.validate();
        assert_eq!(cfg.private_capacity, 50);
        assert_eq!(cfg.vcs.len(), 2);
        assert_eq!(cfg.vcs[0].initial_vms, 25);
        assert_eq!(cfg.private_cost, VmRate::per_vm_second(2));
        assert_eq!(cfg.clouds.len(), 1);
        assert_eq!(cfg.processing_allowance, SimDuration::from_secs(84));
        // Quoted exec for the Pascal app must be the paper's 1670 s.
        let quoted = SimDuration::from_secs(1550).scale(1.0 / cfg.quote_speed);
        assert_eq!(quoted, SimDuration::from_secs(1670));
    }

    #[test]
    fn builders() {
        let cfg = PlatformConfig::paper("static")
            .with_seed(9)
            .with_penalty_factor(4)
            .with_cloud_price_factor(1.5)
            .with_policy("meryn");
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.penalty_factor, 4);
        match &cfg.clouds[0].price {
            PriceModel::Static(r) => assert_eq!(*r, VmRate::per_vm_second(6)),
            _ => panic!("static price expected"),
        }
        assert_eq!(cfg.policy, "meryn");
        assert_eq!(cfg.bidding, "standard");
    }

    #[test]
    fn cloud_price_factor_scales_non_static_models_too() {
        use meryn_sim::{SimDuration, SimTime};
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.clouds[0].price = PriceModel::Diurnal {
            base: VmRate::per_vm_second(4),
            amplitude_pct: 20,
            period: SimDuration::from_secs(86_400),
        };
        let scaled = cfg.with_cloud_price_factor(0.5);
        // At phase 0 the diurnal price equals its base: 4 × 0.5 = 2.
        assert_eq!(
            scaled.clouds[0].price.rate_at(SimTime::ZERO),
            VmRate::per_vm_second(2)
        );
    }

    #[test]
    #[should_panic(expected = "exceeds private capacity")]
    fn overcommitted_initial_allocation_rejected() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.vcs[0].initial_vms = 40;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "unknown placement policy")]
    fn unknown_policy_rejected() {
        PlatformConfig::paper("no-such-policy").validate();
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = PlatformConfig::paper("meryn");
        let json = serde_json::to_string(&cfg).unwrap();
        let back: PlatformConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // `bidding` defaults when omitted on the wire.
        let trimmed = json.replace("\"bidding\":\"standard\",", "");
        let back: PlatformConfig = serde_json::from_str(&trimmed).unwrap();
        assert_eq!(back.bidding, "standard");
    }

    #[test]
    fn disabled_faults_are_skipped_on_the_wire() {
        let cfg = PlatformConfig::paper("meryn");
        assert!(cfg.faults.is_disabled());
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(
            !json.contains("faults"),
            "disabled fault plane must not appear in the JSON (goldens depend on it)"
        );
        // And it defaults back in when absent.
        let back: PlatformConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.faults, FaultSpec::default());
    }

    #[test]
    fn enabled_faults_round_trip() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.faults.vm_mtbf_secs = Some(3600);
        cfg.faults.lease_rejection_prob = 0.25;
        cfg.faults.cloud_outages = vec![OutageWindow {
            cloud: 0,
            from_secs: 100,
            to_secs: 400,
        }];
        cfg.validate();
        assert!(cfg.faults.enabled());
        let json = serde_json::to_string(&cfg).unwrap();
        assert!(json.contains("faults"));
        let back: PlatformConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let spec = FaultSpec {
            backoff_base_secs: 30,
            backoff_cap_secs: 480,
            ..Default::default()
        };
        assert_eq!(spec.backoff_delay(0), SimDuration::from_secs(30));
        assert_eq!(spec.backoff_delay(1), SimDuration::from_secs(60));
        assert_eq!(spec.backoff_delay(3), SimDuration::from_secs(240));
        assert_eq!(spec.backoff_delay(4), SimDuration::from_secs(480));
        assert_eq!(spec.backoff_delay(10), SimDuration::from_secs(480));
        // Shift overflow saturates at the cap instead of panicking.
        assert_eq!(spec.backoff_delay(200), SimDuration::from_secs(480));
    }

    #[test]
    #[should_panic(expected = "outage window names cloud")]
    fn outage_on_unknown_cloud_rejected() {
        let mut cfg = PlatformConfig::paper("meryn");
        cfg.faults.cloud_outages = vec![OutageWindow {
            cloud: 5,
            from_secs: 0,
            to_secs: 10,
        }];
        cfg.validate();
    }

    #[test]
    fn vc_config_constructors() {
        let b = VcConfig::batch("b", 3);
        assert_eq!(b.kind, FrameworkKind::Batch);
        let m = VcConfig::mapreduce("m", 4);
        assert_eq!(m.kind, FrameworkKind::MapReduce);
        assert_eq!(m.locality_penalty_pct, 30);
    }
}
