//! The canonical-order invariant of the effect stream.
//!
//! The sharded executor collects shard-emitted [`Effect`]s per time
//! step and applies them in canonical `(due, vc_id, seq)` order — never
//! in the order worker threads happened to produce them. This property
//! test pins the invariant the whole determinism story leans on: for a
//! fixed effect set, **any** emission interleaving, once canonically
//! ordered, drives the fabric (ledger, private pool, busy counters,
//! follow-up schedule) into one and the same state.

use std::collections::BTreeMap;

use meryn_core::engine::{Effect, EffectKey, SequencedEffect, SharedFabric};
use meryn_core::ids::{AppId, VcId};
use meryn_sim::{SimRng, SimTime};
use meryn_sla::VmRate;
use meryn_vmm::{ImageRegistry, LatencyModel, Location, PrivatePool, VmId, VmSpec};
use proptest::prelude::*;

const POOL_VMS: u64 = 12;

/// A fresh fabric over a pool of `POOL_VMS` running VMs (no clouds).
fn fresh_fabric() -> (SharedFabric, Vec<VmId>) {
    let mut images = ImageRegistry::new();
    let image = images.register("shard-image", 4096);
    let mut pool = PrivatePool::with_vm_capacity(
        POOL_VMS,
        VmSpec::EC2_MEDIUM_LIKE,
        LatencyModel::uniform_secs(20, 30),
        LatencyModel::uniform_secs(5, 10),
        1.0,
        SimRng::new(7),
    );
    let mut vms = Vec::new();
    for _ in 0..POOL_VMS {
        let (vm, _) = pool.begin_start(image, SimTime::ZERO).expect("fits");
        pool.complete_start(vm, SimTime::ZERO).expect("fresh VM");
        vms.push(vm);
    }
    (
        SharedFabric::new(pool, Vec::new(), images, None, SimRng::new(9)),
        vms,
    )
}

/// Applies `effects` (already canonically sorted) and returns the
/// observable fabric state: ledger entries, pool snapshot, busy
/// counters and the follow-up events produced, all serialized.
fn drive(effects: &[SequencedEffect]) -> (String, String, (u64, u64), String) {
    let (mut fabric, _) = fresh_fabric();
    let mut out = Vec::new();
    for e in effects {
        fabric.apply(e.key.due, e.effect.clone(), &mut out);
    }
    let ledger = serde_json::to_string(&fabric.ledger.entries()).expect("entries serialize");
    let pool = serde_json::to_string(&fabric.pool).expect("pool serializes");
    let followups = serde_json::to_string(&out).expect("events serialize");
    (ledger, pool, fabric.busy(), followups)
}

/// Canonical order: sort by the `(due, vc, seq)` key. Keys are unique
/// by construction, so the order is total.
fn canonicalize(mut effects: Vec<SequencedEffect>) -> Vec<SequencedEffect> {
    effects.sort_by_key(|e| e.key);
    effects
}

/// Builds the per-shard effect sets from the raw generator draws: each
/// shard emits charges and balanced usage deltas (all `+` before all
/// `-`, so busy counters never underflow in canonical order), and one
/// shard returns a disjoint slice of pool VMs to a lender — the
/// RNG-drawing effect whose application order matters most.
fn build_effects(
    charges: &[(u8, u8, u16, u8)],
    usage_pairs: &[(u8, u8)],
    return_vms: usize,
) -> Vec<SequencedEffect> {
    let (_, vms) = fresh_fabric();
    let due = SimTime::from_secs(1000);
    let mut effects = Vec::new();
    let mut seq_per_vc: BTreeMap<usize, u64> = BTreeMap::new();
    let mut push = |vc: usize, effect: Effect, effects: &mut Vec<SequencedEffect>| {
        let seq = seq_per_vc.entry(vc).or_insert(0);
        *seq += 1;
        effects.push(SequencedEffect {
            key: EffectKey {
                due,
                vc: VcId(vc),
                // Spread shard seqs so keys are globally unique but
                // interleaved across shards, like real global tags.
                seq: *seq * 10 + vc as u64,
            },
            effect,
        });
    };
    for &(vc, vm_idx, dur_s, rate_u) in charges {
        let vc = (vc % 3) as usize;
        let from = SimTime::from_secs(1000 - u64::from(dur_s % 1000));
        push(
            vc,
            Effect::Charge {
                vm: vms[(vm_idx as usize) % vms.len()],
                location: Location::Private,
                from,
                rate: VmRate::per_vm_second(i64::from(rate_u % 8) + 1),
            },
            &mut effects,
        );
    }
    for &(vc, delta) in usage_pairs {
        let vc = (vc % 3) as usize;
        let d = i64::from(delta % 4) + 1;
        push(
            vc,
            Effect::Usage {
                private_delta: d,
                cloud_delta: d / 2,
            },
            &mut effects,
        );
    }
    // The balancing negatives, in the same shard order (prefix sums
    // stay non-negative because shards apply as contiguous blocks).
    for &(vc, delta) in usage_pairs {
        let vc = (vc % 3) as usize;
        let d = i64::from(delta % 4) + 1;
        push(
            vc,
            Effect::Usage {
                private_delta: -d,
                cloud_delta: -(d / 2),
            },
            &mut effects,
        );
    }
    if return_vms > 0 {
        let take = return_vms.min(4);
        push(
            2,
            Effect::ReturnVms {
                src: VcId(0),
                victim: AppId(0),
                vms: vms[..take].to_vec(),
            },
            &mut effects,
        );
    }
    effects
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any emission interleaving of one effect set, canonically
    /// ordered, produces identical ledger entries, pool state, busy
    /// counters and follow-up events.
    #[test]
    fn canonical_order_erases_emission_order(
        charges in prop::collection::vec((0u8..3, 0u8..12, 0u16..1000, 0u8..8), 1..24),
        usage_pairs in prop::collection::vec((0u8..3, 0u8..4), 1..12),
        return_vms in 0usize..5,
        swaps in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 0..64),
    ) {
        let canonical = canonicalize(build_effects(&charges, &usage_pairs, return_vms));
        let baseline = drive(&canonical);

        // Emit in an arbitrary interleaving, then canonicalize.
        let mut shuffled = canonical.clone();
        let len = shuffled.len();
        for &(a, b) in &swaps {
            shuffled.swap((a as usize) % len, (b as usize) % len);
        }
        let replayed = drive(&canonicalize(shuffled));

        prop_assert_eq!(&baseline.0, &replayed.0, "ledger entries diverged");
        prop_assert_eq!(&baseline.1, &replayed.1, "pool state diverged");
        prop_assert_eq!(baseline.2, replayed.2, "busy counters diverged");
        prop_assert_eq!(&baseline.3, &replayed.3, "follow-up schedule diverged");
    }

    /// Usage effects commute within an instant: the settled busy values
    /// and peaks depend only on the delta multiset, not the order.
    #[test]
    fn usage_deltas_commute_within_an_instant(
        deltas in prop::collection::vec(1i64..5, 1..10),
    ) {
        let due = SimTime::from_secs(50);
        let key = |vc: usize, seq: u64| EffectKey { due, vc: VcId(vc), seq };
        // Plus-then-minus in two different shard attributions.
        let mut forward = Vec::new();
        let mut seq = 0;
        for &d in &deltas {
            forward.push(SequencedEffect {
                key: key(0, seq),
                effect: Effect::Usage { private_delta: d, cloud_delta: 0 },
            });
            seq += 1;
        }
        for &d in &deltas {
            forward.push(SequencedEffect {
                key: key(1, seq),
                effect: Effect::Usage { private_delta: -d, cloud_delta: 0 },
            });
            seq += 1;
        }
        let (ledger, pool, busy, out) = drive(&forward);
        prop_assert_eq!(busy, (0, 0), "balanced deltas must settle at zero");
        prop_assert_eq!(ledger, "[]");
        prop_assert!(out == "[]");
        // Pool untouched by pure usage accounting.
        let (fresh, _) = fresh_fabric();
        prop_assert_eq!(pool, serde_json::to_string(&fresh.pool).unwrap());
    }
}
