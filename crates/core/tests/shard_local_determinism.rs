//! The shard-local control plane's determinism battery.
//!
//! PR 6 moved latency draws, SLA checks and VM choreography out of the
//! sequential control plane into the per-VC shards, which is exactly
//! what lets same-instant cross-shard runs fan out to worker threads.
//! This property test pins the contract that migration must honour:
//! for *random* workloads over 2–16 VCs, the finalized report is
//! **byte-identical** at 1, 2 and 8 threads — and the fan-out path
//! actually fires (`parallel_runs > 0`), so the equality is exercised,
//! not vacuous.
//!
//! The workload generator deliberately lands whole cohorts on shared
//! instants (wave arrivals, zero front-end latency) and keeps dozens
//! of applications live at once, so the 30-second controller-check
//! grid produces same-instant runs wide enough to clear the executor's
//! fan-out gate at every generated case.

use meryn_core::config::{PlatformConfig, VcConfig};
use meryn_core::Platform;
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_vmm::LatencyModel;
use meryn_workloads::{Submission, VcTarget};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// VMs deployed per VC; capacity is sized so every VC's share fits.
const VMS_PER_VC: u64 = 4;

fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pool build is infallible")
        .install(op)
}

/// One random deployment + workload, fully described by plain data so
/// every thread-count run rebuilds an identical platform.
#[derive(Debug, Clone)]
struct Case {
    vcs: usize,
    seed: u64,
    /// `(wave, target, work_secs, nb_vms)` per submission.
    subs: Vec<(u64, usize, u64, u64)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        2usize..=16,
        any::<u64>(),
        prop::collection::vec((0u64..6, 0usize..16, 120u64..900, 1u64..=2), 40..90),
    )
        .prop_map(|(vcs, seed, subs)| Case { vcs, seed, subs })
}

/// Runs the case on `threads` workers; returns the serialized report
/// and the number of fanned-out runs.
fn run_case(case: &Case, threads: usize) -> (String, u64) {
    let mut cfg = PlatformConfig::paper("meryn");
    cfg.seed = case.seed;
    cfg.private_capacity = case.vcs as u64 * (VMS_PER_VC + 2);
    cfg.vcs = (0..case.vcs)
        .map(|i| VcConfig::batch(format!("vc-{i:02}"), VMS_PER_VC))
        .collect();
    // Zero front-end latency keeps each wave's cohort on one instant;
    // the shard streams still draw for every acquisition latency.
    cfg.latencies.base = LatencyModel::ZERO;
    let workload: Vec<Submission> = case
        .subs
        .iter()
        .map(|&(wave, target, work, nb_vms)| {
            Submission::new(
                SimTime::from_secs(5 + wave * 120),
                VcTarget::Index(target % case.vcs),
                JobSpec::Batch {
                    work: SimDuration::from_secs(work),
                    nb_vms,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            )
        })
        .collect();
    at_threads(threads, || {
        let mut platform = Platform::new(cfg.clone());
        platform.enqueue_workload(&workload);
        platform.run_to_completion();
        let parallel_runs = platform.parallel_runs();
        let report = platform.finalize();
        (
            serde_json::to_string(&report).expect("report serializes"),
            parallel_runs,
        )
    })
}

proptest! {
    // Each case runs three full simulations; a handful of cases keeps
    // the battery meaningful without dominating the suite's wall time.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_workloads_are_thread_count_independent(case in case_strategy()) {
        let (sequential, runs_1) = run_case(&case, 1);
        prop_assert!(
            runs_1 > 0,
            "no run cleared the fan-out gate — the case never exercised the parallel path"
        );
        for threads in [2usize, 8] {
            let (threaded, runs_n) = run_case(&case, threads);
            prop_assert_eq!(
                &sequential,
                &threaded,
                "report diverged between 1 and {} threads", threads
            );
            prop_assert_eq!(
                runs_1,
                runs_n,
                "run batching must not depend on the thread count"
            );
        }
    }
}
