//! The shard-local control plane's determinism battery.
//!
//! PR 6 moved latency draws, SLA checks and VM choreography out of the
//! sequential control plane into the per-VC shards, which is exactly
//! what lets same-instant cross-shard runs fan out to worker threads.
//! This property test pins the contract that migration must honour:
//! for *random* workloads over 2–16 VCs, the finalized report is
//! **byte-identical** at 1, 2 and 8 threads — and the fan-out path
//! actually fires (`parallel_runs > 0`), so the equality is exercised,
//! not vacuous.
//!
//! The workload generator deliberately lands whole cohorts on shared
//! instants (wave arrivals, zero front-end latency) and keeps dozens
//! of applications live at once, so the 30-second controller-check
//! grid produces same-instant runs wide enough to clear the executor's
//! fan-out gate at every generated case.

use meryn_core::app::AppPhase;
use meryn_core::config::{PlatformConfig, VcConfig};
use meryn_core::{AppId, EngineCheckpoint, Platform, ReportMode};
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_vmm::LatencyModel;
use meryn_workloads::{Submission, VcTarget};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

/// VMs deployed per VC; capacity is sized so every VC's share fits.
const VMS_PER_VC: u64 = 4;

fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pool build is infallible")
        .install(op)
}

/// One random deployment + workload, fully described by plain data so
/// every thread-count run rebuilds an identical platform.
#[derive(Debug, Clone)]
struct Case {
    vcs: usize,
    seed: u64,
    /// `(wave, target, work_secs, nb_vms)` per submission.
    subs: Vec<(u64, usize, u64, u64)>,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        2usize..=16,
        any::<u64>(),
        prop::collection::vec((0u64..6, 0usize..16, 120u64..900, 1u64..=2), 40..90),
    )
        .prop_map(|(vcs, seed, subs)| Case { vcs, seed, subs })
}

/// The case's deployment. `zero_base` wipes the front-end latency so
/// every wave's cohort lands on one instant (the widest possible
/// same-instant runs); the streamed tests keep the paper's 7–15 s CM
/// handling so each cohort has a genuine negotiation window to
/// checkpoint inside.
fn case_cfg(case: &Case, zero_base: bool) -> PlatformConfig {
    let mut cfg = PlatformConfig::paper("meryn");
    cfg.seed = case.seed;
    cfg.private_capacity = case.vcs as u64 * (VMS_PER_VC + 2);
    cfg.vcs = (0..case.vcs)
        .map(|i| VcConfig::batch(format!("vc-{i:02}"), VMS_PER_VC))
        .collect();
    if zero_base {
        cfg.latencies.base = LatencyModel::ZERO;
    }
    cfg
}

fn case_workload(case: &Case) -> Vec<Submission> {
    build_workload(case)
}

/// The streaming contract wants arrival order (`at` nondecreasing);
/// the stable sort keeps same-instant submissions in generation order
/// so every run — and every resume — sees the identical sequence.
fn case_stream(case: &Case) -> Vec<Submission> {
    let mut workload = build_workload(case);
    workload.sort_by_key(|sub| sub.at);
    workload
}

fn build_workload(case: &Case) -> Vec<Submission> {
    case.subs
        .iter()
        .map(|&(wave, target, work, nb_vms)| {
            Submission::new(
                SimTime::from_secs(5 + wave * 120),
                VcTarget::Index(target % case.vcs),
                JobSpec::Batch {
                    work: SimDuration::from_secs(work),
                    nb_vms,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            )
        })
        .collect()
}

/// Runs the case on `threads` workers; returns the serialized report
/// and the number of fanned-out runs.
fn run_case(case: &Case, threads: usize) -> (String, u64) {
    let cfg = case_cfg(case, true);
    let workload = case_workload(case);
    at_threads(threads, || {
        let mut platform = Platform::new(cfg.clone());
        platform.enqueue_workload(&workload);
        platform.run_to_completion();
        let parallel_runs = platform.parallel_runs();
        let report = platform.finalize();
        (
            serde_json::to_string(&report).expect("report serializes"),
            parallel_runs,
        )
    })
}

/// The hyperscale configuration of the same case: aggregate reporting,
/// arrivals streamed (and pumped into the shard queues with their
/// pre-reserved tag blocks) instead of bulk-enqueued. Since PR 10 the
/// admission those arrivals trigger runs in-shard too.
fn streamed_platform(case: &Case) -> Platform {
    let workload = case_stream(case);
    let mut platform = Platform::new(case_cfg(case, false)).with_report_mode(ReportMode::Aggregate);
    platform
        .stream_workload(workload.len() as u64, workload)
        .expect("a fresh platform has no stream attached");
    platform
}

/// Full streamed run; returns the serialized report and fan-out count.
fn run_streamed(case: &Case, threads: usize) -> (String, u64) {
    at_threads(threads, || {
        let mut platform = streamed_platform(case);
        platform.run_to_completion();
        let parallel_runs = platform.parallel_runs();
        let report = platform.finalize();
        (
            serde_json::to_string(&report).expect("report serializes"),
            parallel_runs,
        )
    })
}

/// Streamed run interrupted at `stop_secs`: checkpoint, JSON
/// round-trip, resume with the same generated sequence, drain. Returns
/// the serialized report plus how many applications were checkpointed
/// mid-negotiation (phase [`AppPhase::Acquiring`] — between arrival
/// and framework hand-off).
fn run_streamed_resumed(case: &Case, threads: usize, stop_secs: u64) -> (String, usize) {
    at_threads(threads, || {
        let mut platform = streamed_platform(case);
        platform.run_until(SimTime::from_secs(stop_secs));
        let negotiating = (0..case.subs.len() as u64)
            .filter_map(|i| platform.app(AppId(i)))
            .filter(|app| app.phase == AppPhase::Acquiring)
            .count();
        let json = serde_json::to_string(&platform.checkpoint()).expect("checkpoint serializes");
        let cp: EngineCheckpoint = serde_json::from_str(&json).expect("checkpoint parses");
        let mut resumed = Platform::from_checkpoint_streaming(cp, case_stream(case));
        resumed.run_to_completion();
        let report = serde_json::to_string(&resumed.finalize()).expect("report serializes");
        (report, negotiating)
    })
}

proptest! {
    // Each case runs three full simulations; a handful of cases keeps
    // the battery meaningful without dominating the suite's wall time.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_workloads_are_thread_count_independent(case in case_strategy()) {
        let (sequential, runs_1) = run_case(&case, 1);
        prop_assert!(
            runs_1 > 0,
            "no run cleared the fan-out gate — the case never exercised the parallel path"
        );
        for threads in [2usize, 8] {
            let (threaded, runs_n) = run_case(&case, threads);
            prop_assert_eq!(
                &sequential,
                &threaded,
                "report diverged between 1 and {} threads", threads
            );
            prop_assert_eq!(
                runs_1,
                runs_n,
                "run batching must not depend on the thread count"
            );
        }
    }

    /// The same contract for the hyperscale configuration: aggregate
    /// reporting with arrivals streamed through the pump (pre-reserved
    /// seq-tag blocks, shard-side admission). Byte-identical at 1, 2
    /// and 8 threads, with the fan-out path exercised.
    #[test]
    fn streamed_aggregate_runs_are_thread_count_independent(case in case_strategy()) {
        let (sequential, runs_1) = run_streamed(&case, 1);
        prop_assert!(
            runs_1 > 0,
            "no streamed run cleared the fan-out gate — the parallel path went unexercised"
        );
        for threads in [2usize, 8] {
            let (threaded, runs_n) = run_streamed(&case, threads);
            prop_assert_eq!(
                &sequential,
                &threaded,
                "streamed report diverged between 1 and {} threads", threads
            );
            prop_assert_eq!(
                runs_1,
                runs_n,
                "streamed run batching must not depend on the thread count"
            );
        }
    }

    /// Checkpointing a streamed run **mid-negotiation** — after a
    /// wave's arrivals registered their applications in-shard but
    /// inside the 7–15 s CM-handling window, so `Effect::Place` is
    /// still in flight — then resuming through a JSON round-trip
    /// reproduces the uninterrupted run byte for byte, sequentially
    /// and threaded.
    #[test]
    fn streamed_checkpoint_mid_negotiation_resumes_byte_identically(
        case in case_strategy(),
        wave in 0u64..6,
        offset in 1u64..=6,
    ) {
        // 1–6 s past a wave instant is strictly below the minimum CM
        // handling draw, so every application that arrived on that
        // wave is still negotiating when the checkpoint is cut.
        let stop_secs = 5 + wave * 120 + offset;
        let (full, _) = run_streamed(&case, 1);
        let (resumed, negotiating) = run_streamed_resumed(&case, 1, stop_secs);
        prop_assert!(
            negotiating > 0 || !case.subs.iter().any(|&(w, ..)| w == wave),
            "a populated wave arrived {offset} s ago yet nothing is mid-negotiation"
        );
        prop_assert_eq!(
            &resumed, &full,
            "sequential mid-negotiation resume from t={} diverged", stop_secs
        );
        let (threaded, _) = run_streamed_resumed(&case, 8, stop_secs);
        prop_assert_eq!(
            &threaded, &full,
            "threaded mid-negotiation resume from t={} diverged", stop_secs
        );
    }
}
