//! The fault plane's determinism battery.
//!
//! Crashes, transient lease rejections and outage windows are all
//! drawn from dedicated seeded streams (per-shard fault streams, the
//! cloud's fault fork), so arming them must not cost a byte of
//! determinism: a fault-enabled run is **byte-identical** at 1, 2 and
//! 8 threads with the parallel fan-out actually firing, and a
//! checkpoint taken *inside* an outage window, restored through a
//! serde round trip, finishes byte-for-byte like the uninterrupted
//! run. The fixed-case tests assert the failure processes really
//! fired — determinism of a fault-free run would be vacuous — and a
//! proptest sweeps random fault regimes over random workloads.

use meryn_core::config::{FaultSpec, OutageWindow, PlatformConfig, VcConfig, ViolationPolicy};
use meryn_core::{EngineCheckpoint, Platform};
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_vmm::LatencyModel;
use meryn_workloads::{Submission, VcTarget};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

fn at_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pool build is infallible")
        .install(op)
}

/// A pressured multi-VC deployment with every failure process armed:
/// tight VM MTBF (stints run long enough that crashes are near
/// certain), a coin-flip lease rejection, and an outage window planted
/// across the early escalation burst.
fn chaotic_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::paper("meryn");
    cfg.private_capacity = 8 * 6;
    cfg.vcs = (0..8)
        .map(|i| VcConfig::batch(format!("vc-{i:02}"), 4))
        .collect();
    // Zero front-end latency keeps each wave's cohort on one instant,
    // which is what lets same-instant runs clear the fan-out gate.
    cfg.latencies.base = LatencyModel::ZERO;
    cfg.violation_policy = ViolationPolicy::EscalateToCloud;
    cfg.faults = FaultSpec {
        vm_mtbf_secs: Some(900),
        lease_rejection_prob: 0.5,
        lease_rejection_secs: 60,
        cloud_outages: vec![OutageWindow {
            cloud: 0,
            from_secs: 400,
            to_secs: 900,
        }],
        retry_max: 3,
        backoff_base_secs: 15,
        backoff_cap_secs: 120,
    };
    cfg
}

/// Wave arrivals over the eight VCs; enough same-instant work that
/// every VC overflows and the cloud market stays busy.
fn chaotic_workload() -> Vec<Submission> {
    let mut subs = Vec::new();
    for wave in 0..6u64 {
        for i in 0..24usize {
            subs.push(Submission::new(
                SimTime::from_secs(5 + wave * 120),
                VcTarget::Index(i % 8),
                JobSpec::Batch {
                    work: SimDuration::from_secs(300 + (i as u64 % 5) * 90),
                    nb_vms: 1 + (i as u64 % 2),
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            ));
        }
    }
    subs
}

fn run_chaotic(threads: usize) -> (String, u64) {
    let cfg = chaotic_config();
    let workload = chaotic_workload();
    at_threads(threads, || {
        let mut platform = Platform::new(cfg.clone());
        platform.enqueue_workload(&workload);
        platform.run_to_completion();
        let parallel_runs = platform.parallel_runs();
        let report = platform.finalize();
        (
            serde_json::to_string(&report).expect("report serializes"),
            parallel_runs,
        )
    })
}

#[test]
fn fault_enabled_run_is_thread_count_independent() {
    let (sequential, runs_1) = run_chaotic(1);
    assert!(
        runs_1 > 0,
        "no run cleared the fan-out gate — the case never exercised the parallel path"
    );
    let report: meryn_core::RunReport =
        serde_json::from_str(&sequential).expect("report deserializes");
    let faults = report
        .faults
        .expect("fault stats present when faults armed");
    assert!(faults.vm_crashes > 0, "no crash ever fired: {faults:?}");
    assert!(
        faults.lease_rejections > 0,
        "no lease was ever refused: {faults:?}"
    );
    for threads in [2usize, 8] {
        let (threaded, runs_n) = run_chaotic(threads);
        assert_eq!(
            sequential, threaded,
            "fault-enabled report diverged between 1 and {threads} threads"
        );
        assert_eq!(
            runs_1, runs_n,
            "run batching must not depend on the thread count"
        );
    }
}

/// One random fault-enabled deployment + workload, fully described by
/// plain data so every thread-count run rebuilds an identical
/// platform.
#[derive(Debug, Clone)]
struct FaultCase {
    vcs: usize,
    seed: u64,
    mtbf_secs: u64,
    rejection_pct: u8,
    outage: (u64, u64),
    /// `(wave, target, work_secs, nb_vms)` per submission.
    subs: Vec<(u64, usize, u64, u64)>,
}

fn fault_case_strategy() -> impl Strategy<Value = FaultCase> {
    (
        2usize..=12,
        any::<u64>(),
        300u64..2_000,
        0u8..=70,
        (100u64..800, 200u64..900),
        prop::collection::vec((0u64..6, 0usize..16, 120u64..900, 1u64..=2), 40..90),
    )
        .prop_map(
            |(vcs, seed, mtbf_secs, rejection_pct, (from, len), subs)| FaultCase {
                vcs,
                seed,
                mtbf_secs,
                rejection_pct,
                outage: (from, from + len),
                subs,
            },
        )
}

fn run_fault_case(case: &FaultCase, threads: usize) -> (String, u64) {
    let mut cfg = PlatformConfig::paper("meryn");
    cfg.seed = case.seed;
    cfg.private_capacity = case.vcs as u64 * 6;
    cfg.vcs = (0..case.vcs)
        .map(|i| VcConfig::batch(format!("vc-{i:02}"), 4))
        .collect();
    cfg.latencies.base = LatencyModel::ZERO;
    cfg.violation_policy = ViolationPolicy::EscalateToCloud;
    cfg.faults = FaultSpec {
        vm_mtbf_secs: Some(case.mtbf_secs),
        lease_rejection_prob: f64::from(case.rejection_pct) / 100.0,
        lease_rejection_secs: 60,
        cloud_outages: vec![OutageWindow {
            cloud: 0,
            from_secs: case.outage.0,
            to_secs: case.outage.1,
        }],
        retry_max: 3,
        backoff_base_secs: 15,
        backoff_cap_secs: 120,
    };
    let workload: Vec<Submission> = case
        .subs
        .iter()
        .map(|&(wave, target, work, nb_vms)| {
            Submission::new(
                SimTime::from_secs(5 + wave * 120),
                VcTarget::Index(target % case.vcs),
                JobSpec::Batch {
                    work: SimDuration::from_secs(work),
                    nb_vms,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            )
        })
        .collect();
    at_threads(threads, || {
        let mut platform = Platform::new(cfg.clone());
        platform.enqueue_workload(&workload);
        platform.run_to_completion();
        let parallel_runs = platform.parallel_runs();
        let report = platform.finalize();
        (
            serde_json::to_string(&report).expect("report serializes"),
            parallel_runs,
        )
    })
}

proptest! {
    // Each case runs three full simulations; a handful of cases keeps
    // the battery meaningful without dominating the suite's wall time.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// *Random* fault regimes (MTBF, rejection probability, outage
    /// window) over random workloads: the report stays byte-identical
    /// at 1, 2 and 8 threads with the fan-out firing. Whether the
    /// drawn hazard actually crashed anything is case-dependent — the
    /// fixed chaotic case above asserts the processes fire; this
    /// battery pins the equality across the whole parameter space.
    #[test]
    fn random_fault_regimes_are_thread_count_independent(case in fault_case_strategy()) {
        let (sequential, runs_1) = run_fault_case(&case, 1);
        prop_assert!(
            runs_1 > 0,
            "no run cleared the fan-out gate — the case never exercised the parallel path"
        );
        for threads in [2usize, 8] {
            let (threaded, runs_n) = run_fault_case(&case, threads);
            prop_assert_eq!(
                &sequential,
                &threaded,
                "fault-enabled report diverged between 1 and {} threads", threads
            );
            prop_assert_eq!(
                runs_1,
                runs_n,
                "run batching must not depend on the thread count"
            );
        }
    }
}

#[test]
fn checkpoint_inside_an_outage_window_resumes_byte_identically() {
    let cfg = chaotic_config();
    let workload = chaotic_workload();

    let mut uninterrupted = Platform::new(cfg.clone());
    uninterrupted.enqueue_workload(&workload);
    uninterrupted.run_to_completion();
    let expected = serde_json::to_string(&uninterrupted.finalize()).expect("report serializes");

    // Stop mid-outage (the 400–900 s window), snapshot, round-trip the
    // checkpoint through its JSON wire format, resume, finish.
    let mut interrupted = Platform::new(cfg);
    interrupted.enqueue_workload(&workload);
    let more = interrupted.run_until(SimTime::from_secs(600));
    assert!(more, "the run must still be in flight mid-outage");
    let wire = serde_json::to_string(&interrupted.checkpoint()).expect("checkpoint serializes");
    let cp: EngineCheckpoint = serde_json::from_str(&wire).expect("checkpoint deserializes");
    let mut resumed = Platform::from_checkpoint(cp);
    resumed.run_to_completion();
    let actual = serde_json::to_string(&resumed.finalize()).expect("report serializes");

    assert_eq!(
        expected, actual,
        "resuming across an outage window must reproduce the uninterrupted report"
    );
    let report: meryn_core::RunReport = serde_json::from_str(&actual).expect("report parses");
    let faults = report
        .faults
        .expect("fault stats present when faults armed");
    assert!(
        faults.vm_crashes > 0 && faults.lease_rejections > 0,
        "the checkpointed run never exercised the fault plane: {faults:?}"
    );
}
