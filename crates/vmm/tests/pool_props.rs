//! Property tests for the private pool: capacity is never exceeded and
//! slots are conserved under arbitrary start/stop interleavings.

use meryn_sim::{SimRng, SimTime};
use meryn_vmm::{ImageId, LatencyModel, PrivatePool, VmId, VmSpec, VmmError};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    BeginStart,
    CompleteStart(usize),
    BeginStop(usize),
    CompleteStop(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::BeginStart),
        (0usize..64).prop_map(Op::CompleteStart),
        (0usize..64).prop_map(Op::BeginStop),
        (0usize..64).prop_map(Op::CompleteStop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pool_capacity_invariants(
        capacity in 1u64..12,
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let mut pool = PrivatePool::with_vm_capacity(
            capacity,
            VmSpec::EC2_MEDIUM_LIKE,
            LatencyModel::fixed_secs(10),
            LatencyModel::fixed_secs(5),
            1.0,
            SimRng::new(1),
        );
        let mut starting: Vec<VmId> = Vec::new();
        let mut running: Vec<VmId> = Vec::new();
        let mut stopping: Vec<VmId> = Vec::new();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            match op {
                Op::BeginStart => match pool.begin_start(ImageId(0), now) {
                    Ok((vm, _)) => starting.push(vm),
                    Err(VmmError::CapacityExhausted { .. }) => {
                        // Refusal must coincide with a genuinely full pool.
                        prop_assert_eq!(pool.available(), 0);
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                },
                Op::CompleteStart(i) if !starting.is_empty() => {
                    let vm = starting.remove(i % starting.len());
                    pool.complete_start(vm, now).expect("starting VM completes");
                    running.push(vm);
                }
                Op::BeginStop(i) if !running.is_empty() => {
                    let vm = running.remove(i % running.len());
                    pool.begin_stop(vm, now).expect("running VM stops");
                    stopping.push(vm);
                }
                Op::CompleteStop(i) if !stopping.is_empty() => {
                    let vm = stopping.remove(i % stopping.len());
                    pool.complete_stop(vm, now).expect("stopping VM completes");
                }
                _ => {}
            }
            // The core invariants, after every operation:
            prop_assert!(pool.active_count() <= capacity);
            prop_assert_eq!(pool.available(), capacity - pool.active_count());
            prop_assert_eq!(
                pool.active_count() as usize,
                starting.len() + running.len() + stopping.len()
            );
            prop_assert_eq!(pool.running_count() as usize, running.len());
        }
    }

    /// Booting after stopping always succeeds when the pool had spare
    /// slots — the stop→boot chain the VM-exchange choreography relies
    /// on never deadlocks on placement.
    #[test]
    fn stop_then_start_round_trips(capacity in 1u64..8, churns in 1usize..30) {
        let mut pool = PrivatePool::with_vm_capacity(
            capacity,
            VmSpec::EC2_MEDIUM_LIKE,
            LatencyModel::ZERO,
            LatencyModel::ZERO,
            1.0,
            SimRng::new(2),
        );
        let now = SimTime::ZERO;
        let (mut vm, _) = pool.begin_start(ImageId(0), now).unwrap();
        pool.complete_start(vm, now).unwrap();
        for _ in 0..churns {
            pool.begin_stop(vm, now).unwrap();
            pool.complete_stop(vm, now).unwrap();
            let (next, _) = pool
                .begin_start(ImageId(1), now)
                .expect("slot just freed must be reusable");
            pool.complete_start(next, now).unwrap();
            prop_assert_ne!(next, vm, "VM ids are never recycled");
            vm = next;
        }
        prop_assert_eq!(pool.running_count(), 1);
    }
}
