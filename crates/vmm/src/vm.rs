//! The VM lifecycle state machine.
//!
//! ```text
//! begin_start          complete_start        begin_stop         complete_stop
//!     │                      │                   │                    │
//!     ▼                      ▼                   ▼                    ▼
//!  Starting ────────────► Running ─────────► Stopping ─────────► Terminated
//! ```
//!
//! Transitions out of order return [`VmmError::InvalidTransition`]; the
//! substrate never silently absorbs a protocol bug in the layers above.

use meryn_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::error::VmmError;
use crate::image::ImageId;
use crate::node::NodeId;
use crate::spec::{Location, VmId, VmSpec};

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmState {
    /// Provisioning/booting; not yet usable by a framework.
    Starting {
        /// When the boot began.
        since: SimTime,
    },
    /// Booted and available to its framework.
    Running {
        /// When the VM became usable.
        since: SimTime,
    },
    /// Shutting down; resources still held.
    Stopping {
        /// When the shutdown began.
        since: SimTime,
    },
    /// Gone; resources released.
    Terminated {
        /// When the shutdown completed.
        at: SimTime,
    },
}

impl VmState {
    /// Short state name for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            VmState::Starting { .. } => "Starting",
            VmState::Running { .. } => "Running",
            VmState::Stopping { .. } => "Stopping",
            VmState::Terminated { .. } => "Terminated",
        }
    }

    /// True while the VM holds host resources (anything but terminated).
    pub fn holds_resources(&self) -> bool {
        !matches!(self, VmState::Terminated { .. })
    }
}

/// One virtual machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Unique id.
    pub id: VmId,
    /// Resource shape.
    pub spec: VmSpec,
    /// Disk image it booted from.
    pub image: ImageId,
    /// Where it runs.
    pub location: Location,
    /// Physical node, for private VMs.
    pub node: Option<NodeId>,
    /// Relative CPU speed (1.0 = the reference private hardware; the
    /// paper's cloud runs the reference app in 1670 s vs 1550 s private,
    /// a factor of ≈0.928).
    pub speed: f64,
    state: VmState,
}

impl Vm {
    /// Creates a VM entering the `Starting` state at `now`.
    pub fn starting(
        id: VmId,
        spec: VmSpec,
        image: ImageId,
        location: Location,
        node: Option<NodeId>,
        speed: f64,
        now: SimTime,
    ) -> Self {
        assert!(speed > 0.0, "VM speed factor must be positive");
        Vm {
            id,
            spec,
            image,
            location,
            node,
            speed,
            state: VmState::Starting { since: now },
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// True when usable by a framework.
    pub fn is_running(&self) -> bool {
        matches!(self.state, VmState::Running { .. })
    }

    /// Instant the VM became running, if it is.
    pub fn running_since(&self) -> Option<SimTime> {
        match self.state {
            VmState::Running { since } => Some(since),
            _ => None,
        }
    }

    /// Completes the boot: `Starting → Running`.
    pub fn complete_start(&mut self, now: SimTime) -> Result<(), VmmError> {
        match self.state {
            VmState::Starting { .. } => {
                self.state = VmState::Running { since: now };
                Ok(())
            }
            s => Err(VmmError::InvalidTransition {
                vm: self.id,
                state: s.name(),
                op: "complete_start",
            }),
        }
    }

    /// Begins shutdown: `Running → Stopping`.
    pub fn begin_stop(&mut self, now: SimTime) -> Result<(), VmmError> {
        match self.state {
            VmState::Running { .. } => {
                self.state = VmState::Stopping { since: now };
                Ok(())
            }
            s => Err(VmmError::InvalidTransition {
                vm: self.id,
                state: s.name(),
                op: "begin_stop",
            }),
        }
    }

    /// Crashes the VM: `Starting | Running → Terminated`, skipping the
    /// graceful stop protocol. Fault-plane transition — a crashed VM
    /// releases its resources at the crash instant, with no `Stopping`
    /// interval. Crashing a VM already shutting down (or gone) is an
    /// [`VmmError::InvalidTransition`]: the stop protocol owns it.
    pub fn crash(&mut self, now: SimTime) -> Result<(), VmmError> {
        match self.state {
            VmState::Starting { .. } | VmState::Running { .. } => {
                self.state = VmState::Terminated { at: now };
                Ok(())
            }
            s => Err(VmmError::InvalidTransition {
                vm: self.id,
                state: s.name(),
                op: "crash",
            }),
        }
    }

    /// Completes shutdown: `Stopping → Terminated`.
    pub fn complete_stop(&mut self, now: SimTime) -> Result<(), VmmError> {
        match self.state {
            VmState::Stopping { .. } => {
                self.state = VmState::Terminated { at: now };
                Ok(())
            }
            s => Err(VmmError::InvalidTransition {
                vm: self.id,
                state: s.name(),
                op: "complete_stop",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HostTag;

    fn vm() -> Vm {
        Vm::starting(
            VmId::new(HostTag::PRIVATE, 0),
            VmSpec::EC2_MEDIUM_LIKE,
            ImageId(0),
            Location::Private,
            Some(NodeId(0)),
            1.0,
            SimTime::from_secs(10),
        )
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut v = vm();
        assert_eq!(v.state().name(), "Starting");
        assert!(!v.is_running());
        v.complete_start(SimTime::from_secs(40)).unwrap();
        assert!(v.is_running());
        assert_eq!(v.running_since(), Some(SimTime::from_secs(40)));
        v.begin_stop(SimTime::from_secs(100)).unwrap();
        assert_eq!(v.state().name(), "Stopping");
        assert!(v.state().holds_resources());
        v.complete_stop(SimTime::from_secs(110)).unwrap();
        assert_eq!(v.state().name(), "Terminated");
        assert!(!v.state().holds_resources());
    }

    #[test]
    fn out_of_order_transitions_fail() {
        let mut v = vm();
        // Cannot stop while starting.
        assert!(matches!(
            v.begin_stop(SimTime::from_secs(20)),
            Err(VmmError::InvalidTransition {
                op: "begin_stop",
                ..
            })
        ));
        v.complete_start(SimTime::from_secs(40)).unwrap();
        // Cannot complete a start twice.
        assert!(v.complete_start(SimTime::from_secs(41)).is_err());
        v.begin_stop(SimTime::from_secs(50)).unwrap();
        // Cannot begin stop twice.
        assert!(v.begin_stop(SimTime::from_secs(51)).is_err());
        v.complete_stop(SimTime::from_secs(60)).unwrap();
        // Terminated is terminal.
        assert!(v.complete_start(SimTime::from_secs(70)).is_err());
        assert!(v.begin_stop(SimTime::from_secs(70)).is_err());
        assert!(v.complete_stop(SimTime::from_secs(70)).is_err());
    }

    #[test]
    fn crash_terminates_from_starting_and_running() {
        let mut v = vm();
        v.crash(SimTime::from_secs(20)).unwrap();
        assert_eq!(v.state().name(), "Terminated");
        assert!(!v.state().holds_resources());

        let mut v = vm();
        v.complete_start(SimTime::from_secs(40)).unwrap();
        v.crash(SimTime::from_secs(50)).unwrap();
        assert_eq!(
            v.state(),
            VmState::Terminated {
                at: SimTime::from_secs(50)
            }
        );
    }

    #[test]
    fn crash_rejected_while_stopping_or_terminated() {
        let mut v = vm();
        v.complete_start(SimTime::from_secs(40)).unwrap();
        v.begin_stop(SimTime::from_secs(50)).unwrap();
        assert!(matches!(
            v.crash(SimTime::from_secs(51)),
            Err(VmmError::InvalidTransition { op: "crash", .. })
        ));
        v.complete_stop(SimTime::from_secs(60)).unwrap();
        assert!(v.crash(SimTime::from_secs(61)).is_err());
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn zero_speed_rejected() {
        Vm::starting(
            VmId::new(HostTag::PRIVATE, 0),
            VmSpec::EC2_MEDIUM_LIKE,
            ImageId(0),
            Location::Private,
            None,
            0.0,
            SimTime::ZERO,
        );
    }
}
