//! Physical nodes of the private infrastructure.
//!
//! The evaluation's private side is 9 parapluie nodes (2×6 cores, 48 GB)
//! hosting 50 EC2-medium-like VMs. A [`Node`] tracks core/memory headroom;
//! the pool places VMs on nodes first-fit.

use serde::{Deserialize, Serialize};

use crate::spec::VmSpec;

/// Identifier of a physical node within the private pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A physical machine with core and memory capacity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The node's id.
    pub id: NodeId,
    /// Total cores.
    pub cores: u32,
    /// Total memory in MiB.
    pub memory_mb: u32,
    used_cores: u32,
    used_memory_mb: u32,
}

impl Node {
    /// Creates an empty node.
    pub fn new(id: NodeId, cores: u32, memory_mb: u32) -> Self {
        Node {
            id,
            cores,
            memory_mb,
            used_cores: 0,
            used_memory_mb: 0,
        }
    }

    /// A parapluie-like node: 12 cores, 48 GiB (the paper's private
    /// cluster hardware).
    pub fn parapluie(id: NodeId) -> Self {
        Node::new(id, 12, 48 * 1024)
    }

    /// Cores currently allocated to VMs.
    pub fn used_cores(&self) -> u32 {
        self.used_cores
    }

    /// Memory currently allocated to VMs, in MiB.
    pub fn used_memory_mb(&self) -> u32 {
        self.used_memory_mb
    }

    /// True when a VM of `spec` fits in the remaining headroom.
    pub fn can_fit(&self, spec: VmSpec) -> bool {
        self.used_cores + spec.cpus <= self.cores
            && self.used_memory_mb + spec.memory_mb <= self.memory_mb
    }

    /// How many VMs of `spec` fit on an *empty* node of this shape.
    pub fn capacity_for(&self, spec: VmSpec) -> u64 {
        if spec.cpus == 0 || spec.memory_mb == 0 {
            return 0;
        }
        u64::from((self.cores / spec.cpus).min(self.memory_mb / spec.memory_mb))
    }

    /// Reserves resources for a VM of `spec`. Returns `false` (and
    /// changes nothing) when it does not fit.
    pub fn allocate(&mut self, spec: VmSpec) -> bool {
        if !self.can_fit(spec) {
            return false;
        }
        self.used_cores += spec.cpus;
        self.used_memory_mb += spec.memory_mb;
        true
    }

    /// Releases the resources of a VM of `spec`.
    ///
    /// Panics if more is released than was allocated — that is a
    /// double-free in the placement bookkeeping.
    pub fn release(&mut self, spec: VmSpec) {
        assert!(
            self.used_cores >= spec.cpus && self.used_memory_mb >= spec.memory_mb,
            "node {:?}: releasing more than allocated",
            self.id
        );
        self.used_cores -= spec.cpus;
        self.used_memory_mb -= spec.memory_mb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MEDIUM: VmSpec = VmSpec::EC2_MEDIUM_LIKE;

    #[test]
    fn parapluie_hosts_six_medium_vms() {
        // 12 cores / 2 = 6; 49152 MB / 3840 MB = 12 → core-bound at 6.
        let n = Node::parapluie(NodeId(0));
        assert_eq!(n.capacity_for(MEDIUM), 6);
    }

    #[test]
    fn allocate_until_full() {
        let mut n = Node::parapluie(NodeId(0));
        let mut placed = 0;
        while n.allocate(MEDIUM) {
            placed += 1;
        }
        assert_eq!(placed, 6);
        assert!(!n.can_fit(MEDIUM));
        assert_eq!(n.used_cores(), 12);
    }

    #[test]
    fn release_restores_headroom() {
        let mut n = Node::parapluie(NodeId(0));
        assert!(n.allocate(MEDIUM));
        n.release(MEDIUM);
        assert_eq!(n.used_cores(), 0);
        assert_eq!(n.used_memory_mb(), 0);
        assert!(n.can_fit(MEDIUM));
    }

    #[test]
    #[should_panic(expected = "releasing more than allocated")]
    fn double_release_panics() {
        let mut n = Node::parapluie(NodeId(0));
        n.release(MEDIUM);
    }

    #[test]
    fn memory_bound_capacity() {
        // Tiny-memory node: memory-bound despite many cores.
        let n = Node::new(NodeId(1), 64, 4000);
        assert_eq!(n.capacity_for(MEDIUM), 1);
    }

    #[test]
    fn zero_spec_capacity_is_zero() {
        let n = Node::parapluie(NodeId(0));
        assert_eq!(n.capacity_for(VmSpec::new(0, 0)), 0);
    }
}
