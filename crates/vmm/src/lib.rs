//! # meryn-vmm — simulated VM management substrate
//!
//! The paper's prototype drives two instances of the Snooze VM manager
//! (one on the private Grid'5000 cluster, one standing in for a public
//! cloud) through start-VM/stop-VM operations, and treats real IaaS
//! providers as price-quoting VM factories with effectively infinite
//! capacity. This crate reproduces that substrate as deterministic state
//! machines:
//!
//! * [`spec`] — VM instance models (the evaluation uses an EC2-medium-like
//!   2-vCPU/3.75 GB shape) and identifiers;
//! * [`node`] — physical nodes with core/memory capacity;
//! * [`image`] — per-framework disk images, which must be pre-staged to a
//!   cloud before it can boot them (§3.5);
//! * [`vm`] — the VM lifecycle (`Starting → Running → Stopping →
//!   Terminated`);
//! * [`pool`] — the private pool: fixed capacity, first-fit placement;
//! * [`cloud`] — public clouds: price models, staged images, leases;
//! * [`billing`] — the cost ledger the evaluation's Figure 6(b) sums over;
//! * [`latency`] — operation-latency models sampled from seeded RNG.
//!
//! ## The begin/complete protocol
//!
//! Every operation with a real-world duration is split in two: a
//! `begin_*` call validates, transitions the state machine and returns
//! the operation's duration; the caller (the simulation driver in
//! `meryn-core`) schedules an event and calls `complete_*` when it fires.
//! This keeps the substrate synchronous, independently testable, and free
//! of any event-queue dependency.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod billing;
pub mod cloud;
pub mod error;
pub mod image;
pub mod latency;
pub mod node;
pub mod pool;
pub mod spec;
pub mod vm;

pub use billing::{Ledger, LedgerEntry};
pub use cloud::{CloudId, PriceModel, PublicCloud};
pub use error::VmmError;
pub use image::{ImageId, ImageRegistry};
pub use latency::LatencyModel;
pub use pool::PrivatePool;
pub use spec::{HostTag, Location, VmId, VmSpec};
pub use vm::{Vm, VmState};
