//! The private VM pool.
//!
//! "Private resources consist of a fixed number of VMs shared between
//! multiple elastic Virtual Clusters" (§3.1). The pool owns the physical
//! nodes, places VMs first-fit, enforces the fixed hosting capacity (the
//! evaluation pins it to 50) and drives each VM's lifecycle through the
//! begin/complete protocol.

use std::collections::BTreeMap;

use meryn_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::error::VmmError;
use crate::image::ImageId;
use crate::latency::LatencyModel;
use crate::node::{Node, NodeId};
use crate::spec::{HostTag, Location, VmId, VmSpec};
use crate::vm::Vm;

/// The provider-owned VM pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrivatePool {
    tag: HostTag,
    nodes: Vec<Node>,
    vms: BTreeMap<VmId, Vm>,
    serial: u64,
    spec: VmSpec,
    max_vms: u64,
    boot: LatencyModel,
    stop: LatencyModel,
    speed: f64,
    /// VMs currently holding resources. The `vms` map is append-only
    /// (terminated VMs stay queryable), so this is maintained as a
    /// counter rather than recounted — `active_count` sits on the
    /// admission/transfer hot path and a scan would grow with the
    /// *history* of transfers, not the live estate. Serialized like any
    /// other field (no default): a snapshot missing it predates the
    /// counter and must fail loudly rather than deserialize desynced.
    active: u64,
    /// Serialized with the pool so a restored checkpoint resumes its
    /// jitter stream exactly where the snapshot left it.
    rng: SimRng,
}

impl PrivatePool {
    /// Creates a pool over explicit nodes, hosting VMs of the uniform
    /// `spec`, with the given boot/stop latency models, a relative CPU
    /// `speed` (1.0 = reference) and its own RNG stream.
    pub fn new(
        nodes: Vec<Node>,
        spec: VmSpec,
        max_vms: u64,
        boot: LatencyModel,
        stop: LatencyModel,
        speed: f64,
        rng: SimRng,
    ) -> Self {
        assert!(speed > 0.0, "pool speed factor must be positive");
        PrivatePool {
            tag: HostTag::PRIVATE,
            nodes,
            vms: BTreeMap::new(),
            serial: 0,
            spec,
            max_vms,
            boot,
            stop,
            speed,
            active: 0,
            rng,
        }
    }

    /// Convenience: a pool of parapluie-like nodes with exactly
    /// `capacity` VM slots of `spec` (the evaluation's "VM hosting
    /// capacity … fixed to 50 VMs").
    pub fn with_vm_capacity(
        capacity: u64,
        spec: VmSpec,
        boot: LatencyModel,
        stop: LatencyModel,
        speed: f64,
        rng: SimRng,
    ) -> Self {
        let per_node = Node::parapluie(NodeId(0)).capacity_for(spec).max(1);
        let node_count = capacity.div_ceil(per_node).max(1);
        let nodes = (0..node_count)
            .map(|i| Node::parapluie(NodeId(i as u32)))
            .collect();
        Self::new(nodes, spec, capacity, boot, stop, speed, rng)
    }

    /// The uniform VM shape this pool hosts.
    pub fn spec(&self) -> VmSpec {
        self.spec
    }

    /// The pool's relative CPU speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Fixed hosting capacity in VMs (the smaller of the configured cap
    /// and what the nodes physically fit).
    pub fn capacity(&self) -> u64 {
        let physical: u64 = self.nodes.iter().map(|n| n.capacity_for(self.spec)).sum();
        physical.min(self.max_vms)
    }

    /// VMs currently holding resources (starting, running or stopping).
    pub fn active_count(&self) -> u64 {
        debug_assert_eq!(
            self.active,
            self.vms
                .values()
                .filter(|v| v.state().holds_resources())
                .count() as u64,
            "active counter out of sync"
        );
        self.active
    }

    /// VMs currently usable by frameworks.
    pub fn running_count(&self) -> u64 {
        self.vms.values().filter(|v| v.is_running()).count() as u64
    }

    /// Free VM slots.
    pub fn available(&self) -> u64 {
        self.capacity() - self.active_count()
    }

    /// Looks a VM up.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// Iterates over all VMs (terminated included) in id order.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.values()
    }

    /// Begins booting a new VM from `image`. Returns the new id and the
    /// boot duration; the caller schedules [`PrivatePool::complete_start`]
    /// that far in the future.
    pub fn begin_start(
        &mut self,
        image: ImageId,
        now: SimTime,
    ) -> Result<(VmId, SimDuration), VmmError> {
        let capacity = self.capacity();
        if self.active_count() >= capacity {
            return Err(VmmError::CapacityExhausted { capacity });
        }
        let spec = self.spec;
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.can_fit(spec))
            .ok_or(VmmError::CapacityExhausted { capacity })?;
        assert!(node.allocate(spec), "can_fit then allocate must succeed");
        let node_id = node.id;
        let id = VmId::new(self.tag, self.serial);
        self.serial += 1;
        let vm = Vm::starting(
            id,
            spec,
            image,
            Location::Private,
            Some(node_id),
            self.speed,
            now,
        );
        self.vms.insert(id, vm);
        self.active += 1;
        Ok((id, self.boot.sample(&mut self.rng)))
    }

    /// Completes a boot begun earlier.
    pub fn complete_start(&mut self, id: VmId, now: SimTime) -> Result<(), VmmError> {
        self.vms
            .get_mut(&id)
            .ok_or(VmmError::UnknownVm(id))?
            .complete_start(now)
    }

    /// Begins shutting a VM down; returns the shutdown duration.
    pub fn begin_stop(&mut self, id: VmId, now: SimTime) -> Result<SimDuration, VmmError> {
        self.vms
            .get_mut(&id)
            .ok_or(VmmError::UnknownVm(id))?
            .begin_stop(now)?;
        Ok(self.stop.sample(&mut self.rng))
    }

    /// Recounts the `active` counter against actual VM states and the
    /// hosting capacity. [`PrivatePool::active_count`] runs the same
    /// recount as a `debug_assert` on the hot path; this promotes it to
    /// a `Result` so checkpoint/restore tests can audit a restored pool
    /// in release builds too.
    pub fn audit(&self) -> Result<(), String> {
        let counted = self
            .vms
            .values()
            .filter(|v| v.state().holds_resources())
            .count() as u64;
        if counted != self.active {
            return Err(format!(
                "private pool active counter desynced: counter {} vs {counted} VMs holding resources",
                self.active
            ));
        }
        let capacity = self.capacity();
        if self.active > capacity {
            return Err(format!(
                "private pool over capacity: {} active VMs on {capacity} slots",
                self.active
            ));
        }
        Ok(())
    }

    /// Completes a shutdown, releasing the VM's node resources.
    pub fn complete_stop(&mut self, id: VmId, now: SimTime) -> Result<(), VmmError> {
        let spec = self.spec;
        let vm = self.vms.get_mut(&id).ok_or(VmmError::UnknownVm(id))?;
        vm.complete_stop(now)?;
        let node_id = vm.node.expect("private VM must sit on a node");
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == node_id)
            .expect("VM's node must exist");
        node.release(spec);
        self.active -= 1;
        Ok(())
    }

    /// Crashes a starting/running VM at `now`: the fault-plane path.
    /// Resources release immediately (no `Stopping` interval, no stop
    /// latency draw — the RNG stream is untouched, so fault-free
    /// trajectories are byte-identical whether or not this method
    /// exists). The `active` counter and node allocation stay conserved
    /// exactly as in [`PrivatePool::complete_stop`], so
    /// [`PrivatePool::audit`] holds across crashes.
    pub fn crash_vm(&mut self, id: VmId, now: SimTime) -> Result<(), VmmError> {
        let spec = self.spec;
        let vm = self.vms.get_mut(&id).ok_or(VmmError::UnknownVm(id))?;
        vm.crash(now)?;
        let node_id = vm.node.expect("private VM must sit on a node");
        let node = self
            .nodes
            .iter_mut()
            .find(|n| n.id == node_id)
            .expect("VM's node must exist");
        node.release(spec);
        self.active -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: u64) -> PrivatePool {
        PrivatePool::with_vm_capacity(
            capacity,
            VmSpec::EC2_MEDIUM_LIKE,
            LatencyModel::uniform_secs(20, 30),
            LatencyModel::uniform_secs(5, 10),
            1.0,
            SimRng::new(42),
        )
    }

    #[test]
    fn capacity_is_enforced_exactly() {
        let p = pool(50);
        assert_eq!(p.capacity(), 50);
        assert_eq!(p.available(), 50);
    }

    #[test]
    fn start_until_capacity_exhausted() {
        let mut p = pool(5);
        let t = SimTime::ZERO;
        for _ in 0..5 {
            p.begin_start(ImageId(0), t).unwrap();
        }
        assert_eq!(p.active_count(), 5);
        assert_eq!(p.available(), 0);
        let err = p.begin_start(ImageId(0), t).unwrap_err();
        assert_eq!(err, VmmError::CapacityExhausted { capacity: 5 });
    }

    #[test]
    fn lifecycle_round_trip_frees_capacity() {
        let mut p = pool(2);
        let (id, boot) = p.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        assert!(boot >= SimDuration::from_secs(20) && boot <= SimDuration::from_secs(30));
        assert_eq!(p.running_count(), 0);
        p.complete_start(id, SimTime::ZERO + boot).unwrap();
        assert_eq!(p.running_count(), 1);
        let stop = p.begin_stop(id, SimTime::from_secs(100)).unwrap();
        assert!(stop >= SimDuration::from_secs(5) && stop <= SimDuration::from_secs(10));
        assert_eq!(p.available(), 1, "stopping VM still holds its slot");
        p.complete_stop(id, SimTime::from_secs(100) + stop).unwrap();
        assert_eq!(p.active_count(), 0);
        assert_eq!(p.available(), 2);
        assert!(!p.vm(id).unwrap().state().holds_resources());
    }

    #[test]
    fn unknown_vm_errors() {
        let mut p = pool(1);
        let ghost = VmId::new(HostTag::PRIVATE, 99);
        assert_eq!(
            p.complete_start(ghost, SimTime::ZERO),
            Err(VmmError::UnknownVm(ghost))
        );
        assert!(p.begin_stop(ghost, SimTime::ZERO).is_err());
    }

    #[test]
    fn ids_are_unique_and_private_tagged() {
        let mut p = pool(3);
        let (a, _) = p.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        let (b, _) = p.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        assert_ne!(a, b);
        assert_eq!(a.host(), HostTag::PRIVATE);
        assert!(p.vm(a).unwrap().location.is_private());
    }

    #[test]
    fn node_count_scales_with_capacity() {
        // 50 medium VMs at 6/node → 9 nodes, like the paper's 9 parapluie
        // nodes.
        let p = pool(50);
        assert_eq!(p.nodes.len(), 9);
    }

    #[test]
    fn capacity_cap_below_physical() {
        // 9 nodes could host 54, but the configured cap wins.
        let p = pool(50);
        let physical: u64 = p.nodes.iter().map(|n| n.capacity_for(p.spec())).sum();
        assert_eq!(physical, 54);
        assert_eq!(p.capacity(), 50);
    }

    #[test]
    fn stop_only_after_running() {
        let mut p = pool(1);
        let (id, _) = p.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        assert!(p.begin_stop(id, SimTime::ZERO).is_err());
    }

    #[test]
    fn crash_releases_slot_and_keeps_audit_conserved() {
        let mut p = pool(2);
        let (id, boot) = p.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        p.complete_start(id, SimTime::ZERO + boot).unwrap();
        assert_eq!(p.available(), 1);
        p.crash_vm(id, SimTime::from_secs(60)).unwrap();
        assert_eq!(p.active_count(), 0);
        assert_eq!(p.available(), 2, "crash releases the slot immediately");
        assert!(!p.vm(id).unwrap().state().holds_resources());
        p.audit().expect("crash keeps the active counter conserved");
        // A crashed VM cannot be crashed or stopped again.
        assert!(p.crash_vm(id, SimTime::from_secs(61)).is_err());
        assert!(p.begin_stop(id, SimTime::from_secs(61)).is_err());
        // The freed slot is reusable.
        p.begin_start(ImageId(0), SimTime::from_secs(62)).unwrap();
        p.audit().unwrap();
    }

    #[test]
    fn crash_consumes_no_rng_draws() {
        // Stop-latency draws after a crash must match a pool that never
        // crashed anything: the fault path is RNG-silent.
        let mut a = pool(4);
        let mut b = pool(4);
        let (ia, boot_a) = a.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        let (_ib, boot_b) = b.begin_start(ImageId(0), SimTime::ZERO).unwrap();
        assert_eq!(boot_a, boot_b);
        a.complete_start(ia, SimTime::ZERO + boot_a).unwrap();
        a.crash_vm(ia, SimTime::from_secs(40)).unwrap();
        let (_, next_a) = a.begin_start(ImageId(0), SimTime::from_secs(50)).unwrap();
        let (_, next_b) = b.begin_start(ImageId(0), SimTime::from_secs(50)).unwrap();
        assert_eq!(next_a, next_b, "crash must not advance the jitter stream");
    }

    #[test]
    fn determinism_same_seed_same_boot_times() {
        let mut a = pool(10);
        let mut b = pool(10);
        for _ in 0..10 {
            let (_, da) = a.begin_start(ImageId(0), SimTime::ZERO).unwrap();
            let (_, db) = b.begin_start(ImageId(0), SimTime::ZERO).unwrap();
            assert_eq!(da, db);
        }
    }
}
