//! Public IaaS clouds.
//!
//! The resource selection protocol "requests a set of public clouds their
//! current market VM prices and gets the cheapest cloud VM price" (§4.1),
//! then leases VMs from the winner. A [`PublicCloud`] quotes a
//! time-dependent price, enforces image pre-staging (§3.5) and drives
//! leased-VM lifecycles. The evaluation "assumes that the VM hosting
//! capacity in the public cloud is infinite"; a quota is still available
//! for ablations.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use meryn_sim::{SimDuration, SimRng, SimTime};
use meryn_sla::{Money, VmRate};
use serde::{Deserialize, Serialize};

use crate::error::VmmError;
use crate::image::ImageId;
use crate::latency::LatencyModel;
use crate::spec::{HostTag, Location, VmId, VmSpec};
use crate::vm::Vm;

/// Identifier of a public cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CloudId(pub u16);

/// How a cloud prices its VMs over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PriceModel {
    /// Constant price (the evaluation: cloud VM cost fixed at 4 units
    /// versus 2 private).
    Static(VmRate),
    /// Sinusoidal day/night price swing around `base`:
    /// `base × (1 + amplitude_pct/100 × sin(2πt/period))`.
    Diurnal {
        /// Mid price.
        base: VmRate,
        /// Peak deviation in percent of `base`.
        amplitude_pct: u32,
        /// Length of one full cycle.
        period: SimDuration,
    },
    /// Piecewise-constant schedule: `(from, rate)` change points, sorted
    /// by time; the first entry's rate also applies before its instant.
    Schedule(Vec<(SimTime, VmRate)>),
}

impl PriceModel {
    /// The market price at instant `t`.
    pub fn rate_at(&self, t: SimTime) -> VmRate {
        match self {
            PriceModel::Static(r) => *r,
            PriceModel::Diurnal {
                base,
                amplitude_pct,
                period,
            } => {
                let phase = (t.as_millis() % period.as_millis().max(1)) as f64
                    / period.as_millis().max(1) as f64;
                let swing = (*amplitude_pct as f64 / 100.0) * (std::f64::consts::TAU * phase).sin();
                base.scale(1.0 + swing)
            }
            PriceModel::Schedule(points) => {
                assert!(!points.is_empty(), "empty price schedule");
                let mut rate = points[0].1;
                for &(from, r) in points {
                    if from <= t {
                        rate = r;
                    } else {
                        break;
                    }
                }
                rate
            }
        }
    }

    /// Scales the whole price curve by `factor` — every variant, not
    /// just the static rate (price-ratio sweeps rely on this).
    pub fn scaled(self, factor: f64) -> Self {
        match self {
            PriceModel::Static(r) => PriceModel::Static(r.scale(factor)),
            PriceModel::Diurnal {
                base,
                amplitude_pct,
                period,
            } => PriceModel::Diurnal {
                base: base.scale(factor),
                amplitude_pct,
                period,
            },
            PriceModel::Schedule(points) => PriceModel::Schedule(
                points
                    .into_iter()
                    .map(|(from, r)| (from, r.scale(factor)))
                    .collect(),
            ),
        }
    }
}

/// The outcome of releasing a cloud VM: what the lease cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseClose {
    /// The VM released.
    pub vm: VmId,
    /// How long it was usable (running) — the paper charges by execution
    /// time rather than per started hour.
    pub running_for: SimDuration,
    /// The rate locked when the lease began.
    pub rate: VmRate,
    /// `running_for × rate`.
    pub cost: Money,
}

/// A public IaaS cloud.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PublicCloud {
    /// This cloud's id.
    pub id: CloudId,
    name: String,
    tag: HostTag,
    vms: BTreeMap<VmId, Vm>,
    lease_rates: BTreeMap<VmId, VmRate>,
    lease_started: BTreeMap<VmId, SimTime>,
    serial: u64,
    price: PriceModel,
    provision: LatencyModel,
    stop: LatencyModel,
    speed: f64,
    quota: Option<u64>,
    staged: BTreeSet<ImageId>,
    /// Leases currently holding resources; maintained as a counter
    /// because `vms` is append-only history and `can_lease` runs on the
    /// placement hot path for every arrival. No serde default: a
    /// snapshot missing the field must fail loudly, not desync.
    active: u64,
    /// Serialized with the cloud so a restored checkpoint resumes its
    /// latency stream exactly where the snapshot left it.
    rng: SimRng,
    /// Scheduled whole-cloud outage windows `[from, to)`, sorted by
    /// start. Inside a window every lease attempt returns
    /// [`VmmError::Unavailable`]; existing leases keep running (the
    /// fault plane models control-plane outages, not data-plane loss).
    outages: Vec<(SimTime, SimTime)>,
    /// Probability that one admission attempt is transiently rejected.
    rejection_prob: f64,
    /// How long a transient rejection blacks the cloud out.
    rejection_duration: SimDuration,
    /// End of the current transient-rejection window, if one is open.
    rejected_until: Option<SimTime>,
    /// Dedicated fault stream (forked from the latency stream at
    /// construction): rejection draws never perturb provisioning
    /// latencies, so a fault-free run is byte-identical to one where
    /// `rejection_prob == 0`.
    fault_rng: SimRng,
}

impl PublicCloud {
    /// Creates a cloud. `speed` is the relative CPU speed of its VMs
    /// (the evaluation's edel cloud runs the reference app ~7.7% slower
    /// than the private parapluie nodes). `quota` of `None` means the
    /// paper's "infinite" capacity.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: CloudId,
        name: impl Into<String>,
        price: PriceModel,
        provision: LatencyModel,
        stop: LatencyModel,
        speed: f64,
        quota: Option<u64>,
        rng: SimRng,
    ) -> Self {
        assert!(speed > 0.0, "cloud speed factor must be positive");
        let fault_rng = rng.fork(0xFA17);
        PublicCloud {
            id,
            name: name.into(),
            // Host tags 1.. belong to clouds (0 is the private pool).
            tag: HostTag(id.0 + 1),
            vms: BTreeMap::new(),
            lease_rates: BTreeMap::new(),
            lease_started: BTreeMap::new(),
            serial: 0,
            price,
            provision,
            stop,
            speed,
            quota,
            staged: BTreeSet::new(),
            active: 0,
            rng,
            outages: Vec::new(),
            rejection_prob: 0.0,
            rejection_duration: SimDuration::ZERO,
            rejected_until: None,
            fault_rng,
        }
    }

    /// Arms the fault plane on this cloud: scheduled outage windows and
    /// a per-admission transient-rejection process. With an empty window
    /// list and `rejection_prob == 0.0` (the default) the cloud behaves
    /// exactly as before — no draws, no rejections.
    pub fn with_faults(
        mut self,
        outages: Vec<(SimTime, SimTime)>,
        rejection_prob: f64,
        rejection_duration: SimDuration,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&rejection_prob),
            "rejection_prob must be a probability"
        );
        self.outages = outages;
        self.rejection_prob = rejection_prob;
        self.rejection_duration = rejection_duration;
        self
    }

    /// The cloud's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cloud's relative CPU speed factor.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Current market price per VM-second.
    pub fn price_at(&self, now: SimTime) -> VmRate {
        self.price.rate_at(now)
    }

    /// Pre-stages a framework disk image (§3.5 does this "before adding
    /// cloud VMs to VCs").
    pub fn stage_image(&mut self, image: ImageId) {
        self.staged.insert(image);
    }

    /// True if `image` has been staged here.
    pub fn has_image(&self, image: ImageId) -> bool {
        self.staged.contains(&image)
    }

    /// True when the cloud can lease `n` more VMs under its quota.
    /// Capacity only — availability (outages, open rejection windows)
    /// is [`PublicCloud::check_available`], so callers can tell "full"
    /// from "down".
    pub fn can_lease(&self, n: u64) -> bool {
        match self.quota {
            None => true,
            Some(q) => self.active_count() + n <= q,
        }
    }

    /// Checks the cloud's control plane at `now`: `Err(Unavailable)`
    /// inside a scheduled outage window or an open transient-rejection
    /// window. Deterministic — no draws.
    pub fn check_available(&self, now: SimTime) -> Result<(), VmmError> {
        for &(from, to) in &self.outages {
            if from <= now && now < to {
                return Err(VmmError::Unavailable {
                    until_secs: Some(to.as_secs()),
                });
            }
        }
        if let Some(until) = self.rejected_until {
            if now < until {
                return Err(VmmError::Unavailable {
                    until_secs: Some(until.as_secs()),
                });
            }
        }
        Ok(())
    }

    /// One admission attempt against the fault plane: hard
    /// unavailability first ([`PublicCloud::check_available`]), then —
    /// only when a rejection process is armed — a transient-rejection
    /// draw from the dedicated fault stream. A hit opens a rejection
    /// window of `rejection_duration` and returns `Unavailable`.
    /// With faults unarmed this is draw-free and always `Ok`.
    pub fn admit_lease(&mut self, now: SimTime) -> Result<(), VmmError> {
        self.check_available(now)?;
        if self.rejection_prob > 0.0 && self.fault_rng.chance(self.rejection_prob) {
            let until = now + self.rejection_duration;
            self.rejected_until = Some(until);
            return Err(VmmError::Unavailable {
                until_secs: Some(until.as_secs()),
            });
        }
        Ok(())
    }

    /// VMs currently holding resources here.
    pub fn active_count(&self) -> u64 {
        debug_assert_eq!(
            self.active,
            self.vms
                .values()
                .filter(|v| v.state().holds_resources())
                .count() as u64,
            "active counter out of sync"
        );
        self.active
    }

    /// VMs currently usable.
    pub fn running_count(&self) -> u64 {
        self.vms.values().filter(|v| v.is_running()).count() as u64
    }

    /// Looks a VM up.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// Recounts the `active` counter against actual VM states and the
    /// lease quota. [`PublicCloud::active_count`] runs the same recount
    /// as a `debug_assert` on the hot path; this promotes it to a
    /// `Result` so checkpoint/restore tests can audit a restored cloud
    /// in release builds too.
    pub fn audit(&self) -> Result<(), String> {
        let counted = self
            .vms
            .values()
            .filter(|v| v.state().holds_resources())
            .count() as u64;
        if counted != self.active {
            return Err(format!(
                "cloud {} active counter desynced: counter {} vs {counted} VMs holding resources",
                self.name, self.active
            ));
        }
        if let Some(q) = self.quota {
            if self.active > q {
                return Err(format!(
                    "cloud {} over quota: {} active VMs on a quota of {q}",
                    self.name, self.active
                ));
            }
        }
        Ok(())
    }

    /// Begins leasing a VM from `image`, locking the current market rate
    /// for the lease. Returns the id, the provisioning duration and the
    /// locked rate.
    pub fn begin_lease(
        &mut self,
        image: ImageId,
        spec: VmSpec,
        now: SimTime,
    ) -> Result<(VmId, SimDuration, VmRate), VmmError> {
        if !self.staged.contains(&image) {
            return Err(VmmError::ImageNotStaged(image));
        }
        self.check_available(now)?;
        if let Some(q) = self.quota {
            if self.active_count() >= q {
                return Err(VmmError::CapacityExhausted { capacity: q });
            }
        }
        let id = VmId::new(self.tag, self.serial);
        self.serial += 1;
        let vm = Vm::starting(
            id,
            spec,
            image,
            Location::Cloud(self.id),
            None,
            self.speed,
            now,
        );
        self.vms.insert(id, vm);
        self.active += 1;
        let rate = self.price.rate_at(now);
        self.lease_rates.insert(id, rate);
        Ok((id, self.provision.sample(&mut self.rng), rate))
    }

    /// Completes provisioning; the VM is usable (and billable) from `now`.
    pub fn complete_lease(&mut self, id: VmId, now: SimTime) -> Result<(), VmmError> {
        self.vms
            .get_mut(&id)
            .ok_or(VmmError::UnknownVm(id))?
            .complete_start(now)?;
        self.lease_started.insert(id, now);
        Ok(())
    }

    /// Begins releasing a leased VM; returns the stop duration.
    pub fn begin_release(&mut self, id: VmId, now: SimTime) -> Result<SimDuration, VmmError> {
        self.vms
            .get_mut(&id)
            .ok_or(VmmError::UnknownVm(id))?
            .begin_stop(now)?;
        Ok(self.stop.sample(&mut self.rng))
    }

    /// Completes a release and closes the lease, returning what it cost.
    pub fn complete_release(&mut self, id: VmId, now: SimTime) -> Result<LeaseClose, VmmError> {
        let vm = self.vms.get_mut(&id).ok_or(VmmError::UnknownVm(id))?;
        vm.complete_stop(now)?;
        self.active -= 1;
        let rate = self
            .lease_rates
            .remove(&id)
            .expect("leased VM must have a locked rate");
        let started = self
            .lease_started
            .remove(&id)
            .expect("released VM must have completed provisioning");
        let running_for = now.since(started);
        Ok(LeaseClose {
            vm: id,
            running_for,
            rate,
            cost: rate.cost_for(running_for),
        })
    }

    /// Crashes a leased VM at `now`, force-closing its lease: no
    /// `Stopping` interval, no stop-latency draw, billed through the
    /// crash instant at the locked rate. A lease crashed while still
    /// provisioning never became billable and closes at zero cost. The
    /// `active` counter stays conserved ([`PublicCloud::audit`] holds).
    pub fn crash_lease(&mut self, id: VmId, now: SimTime) -> Result<LeaseClose, VmmError> {
        let vm = self.vms.get_mut(&id).ok_or(VmmError::UnknownVm(id))?;
        vm.crash(now)?;
        self.active -= 1;
        let rate = self
            .lease_rates
            .remove(&id)
            .expect("leased VM must have a locked rate");
        // Crashed before provisioning completed → never billable.
        let running_for = match self.lease_started.remove(&id) {
            Some(started) => now.since(started),
            None => SimDuration::ZERO,
        };
        Ok(LeaseClose {
            vm: id,
            running_for,
            rate,
            cost: rate.cost_for(running_for),
        })
    }
}

impl fmt::Display for PublicCloud {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (cloud{})", self.name, self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(quota: Option<u64>) -> PublicCloud {
        let mut c = PublicCloud::new(
            CloudId(0),
            "edel",
            PriceModel::Static(VmRate::per_vm_second(4)),
            LatencyModel::uniform_secs(40, 60),
            LatencyModel::uniform_secs(5, 10),
            0.928,
            quota,
            SimRng::new(7),
        );
        c.stage_image(ImageId(0));
        c
    }

    #[test]
    fn lease_requires_staged_image() {
        let mut c = cloud(None);
        let err = c
            .begin_lease(ImageId(9), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, VmmError::ImageNotStaged(ImageId(9)));
        assert!(c.has_image(ImageId(0)));
        assert!(!c.has_image(ImageId(9)));
    }

    #[test]
    fn lease_lifecycle_and_billing() {
        let mut c = cloud(None);
        let (id, prov, rate) = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        assert_eq!(rate, VmRate::per_vm_second(4));
        assert!(prov >= SimDuration::from_secs(40) && prov <= SimDuration::from_secs(60));
        c.complete_lease(id, SimTime::from_secs(50)).unwrap();
        assert_eq!(c.running_count(), 1);
        let stop = c.begin_release(id, SimTime::from_secs(1720)).unwrap();
        let close = c
            .complete_release(id, SimTime::from_secs(1720) + stop)
            .unwrap();
        // Charged for running time only: 1670 s at 4 u/s … plus the stop
        // tail, since the VM ran until release completed.
        let expected = VmRate::per_vm_second(4).cost_for(SimDuration::from_secs(1670) + stop);
        assert_eq!(close.cost, expected);
        assert_eq!(c.active_count(), 0);
    }

    #[test]
    fn infinite_quota_allows_many() {
        let mut c = cloud(None);
        for _ in 0..100 {
            c.begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
                .unwrap();
        }
        assert_eq!(c.active_count(), 100);
    }

    #[test]
    fn quota_is_enforced() {
        let mut c = cloud(Some(2));
        c.begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        c.begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        let err = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, VmmError::CapacityExhausted { capacity: 2 });
    }

    #[test]
    fn cloud_vm_ids_use_cloud_tag() {
        let mut c = cloud(None);
        let (id, _, _) = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        assert_eq!(id.host(), HostTag(1));
        assert_eq!(c.vm(id).unwrap().location, Location::Cloud(CloudId(0)));
    }

    #[test]
    fn outage_window_returns_unavailable_not_capacity() {
        let mut c = cloud(None).with_faults(
            vec![(SimTime::from_secs(100), SimTime::from_secs(200))],
            0.0,
            SimDuration::ZERO,
        );
        // Before the window: fine.
        c.begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::from_secs(50))
            .unwrap();
        // Inside: Unavailable naming the window end, never CapacityExhausted.
        let err = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::from_secs(150))
            .unwrap_err();
        assert_eq!(
            err,
            VmmError::Unavailable {
                until_secs: Some(200)
            }
        );
        assert!(c.can_lease(1), "capacity is a separate question");
        // At the (half-open) window end: fine again.
        c.begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::from_secs(200))
            .unwrap();
    }

    #[test]
    fn transient_rejection_opens_a_window_then_heals() {
        let mut c = cloud(None).with_faults(vec![], 1.0, SimDuration::from_secs(30));
        let err = c.admit_lease(SimTime::from_secs(10)).unwrap_err();
        assert_eq!(
            err,
            VmmError::Unavailable {
                until_secs: Some(40)
            }
        );
        // The open window rejects deterministically (no further draws).
        assert!(c.check_available(SimTime::from_secs(39)).is_err());
        assert!(c.check_available(SimTime::from_secs(40)).is_ok());
        // Zero probability never rejects and never draws.
        let mut quiet = cloud(None).with_faults(vec![], 0.0, SimDuration::from_secs(30));
        for t in 0..50 {
            quiet.admit_lease(SimTime::from_secs(t)).unwrap();
        }
    }

    #[test]
    fn crash_lease_bills_through_the_crash_instant() {
        let mut c = cloud(None);
        let (id, _, rate) = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        c.complete_lease(id, SimTime::from_secs(50)).unwrap();
        let close = c.crash_lease(id, SimTime::from_secs(350)).unwrap();
        assert_eq!(close.running_for, SimDuration::from_secs(300));
        assert_eq!(close.cost, rate.cost_for(SimDuration::from_secs(300)));
        assert_eq!(c.active_count(), 0);
        c.audit().expect("crash keeps the active counter conserved");
        // Crashing again (or releasing) a dead lease fails.
        assert!(c.crash_lease(id, SimTime::from_secs(351)).is_err());
        assert!(c.begin_release(id, SimTime::from_secs(351)).is_err());
    }

    #[test]
    fn crash_lease_while_provisioning_is_free() {
        let mut c = cloud(None);
        let (id, _, _) = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        let close = c.crash_lease(id, SimTime::from_secs(10)).unwrap();
        assert_eq!(close.cost, Money::ZERO);
        c.audit().unwrap();
    }

    #[test]
    fn static_price_model() {
        let m = PriceModel::Static(VmRate::per_vm_second(4));
        assert_eq!(m.rate_at(SimTime::ZERO), VmRate::per_vm_second(4));
        assert_eq!(
            m.rate_at(SimTime::from_secs(9999)),
            VmRate::per_vm_second(4)
        );
    }

    #[test]
    fn diurnal_price_swings_around_base() {
        let m = PriceModel::Diurnal {
            base: VmRate::per_vm_second(4),
            amplitude_pct: 50,
            period: SimDuration::from_secs(86_400),
        };
        let base = VmRate::per_vm_second(4);
        // Quarter period: peak.
        let peak = m.rate_at(SimTime::from_secs(21_600));
        assert!(peak > base, "peak {peak} should exceed base");
        // Three-quarter period: trough.
        let trough = m.rate_at(SimTime::from_secs(64_800));
        assert!(trough < base, "trough {trough} should undercut base");
        // Start of cycle: at base.
        assert_eq!(m.rate_at(SimTime::ZERO), base);
    }

    #[test]
    fn schedule_price_steps() {
        let m = PriceModel::Schedule(vec![
            (SimTime::ZERO, VmRate::per_vm_second(4)),
            (SimTime::from_secs(100), VmRate::per_vm_second(6)),
        ]);
        assert_eq!(m.rate_at(SimTime::from_secs(50)), VmRate::per_vm_second(4));
        assert_eq!(m.rate_at(SimTime::from_secs(100)), VmRate::per_vm_second(6));
        assert_eq!(m.rate_at(SimTime::from_secs(500)), VmRate::per_vm_second(6));
    }

    #[test]
    fn lease_locks_rate_at_begin() {
        let mut c = PublicCloud::new(
            CloudId(1),
            "spot",
            PriceModel::Schedule(vec![
                (SimTime::ZERO, VmRate::per_vm_second(4)),
                (SimTime::from_secs(10), VmRate::per_vm_second(8)),
            ]),
            LatencyModel::ZERO,
            LatencyModel::ZERO,
            1.0,
            None,
            SimRng::new(1),
        );
        c.stage_image(ImageId(0));
        let (id, _, rate) = c
            .begin_lease(ImageId(0), VmSpec::EC2_MEDIUM_LIKE, SimTime::ZERO)
            .unwrap();
        assert_eq!(rate, VmRate::per_vm_second(4));
        c.complete_lease(id, SimTime::ZERO).unwrap();
        c.begin_release(id, SimTime::from_secs(100)).unwrap();
        let close = c.complete_release(id, SimTime::from_secs(100)).unwrap();
        // Billed at the locked 4 u/s, not the later 8 u/s.
        assert_eq!(close.cost, Money::from_units(400));
    }
}
