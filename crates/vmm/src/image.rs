//! Framework disk images.
//!
//! "For each framework there is a customized VM disk image that contains
//! all the necessary software and libraries" (§3.5), and those images must
//! be saved into every public cloud before bursting can use it. The
//! registry tracks the images; each [`crate::cloud::PublicCloud`] tracks
//! which of them have been staged to it.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a registered disk image.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ImageId(pub u32);

impl fmt::Debug for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "img{}", self.0)
    }
}

/// Metadata of a framework disk image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    /// The image's id.
    pub id: ImageId,
    /// Human-readable name, e.g. `"oge-6.2u7"` or `"hadoop-0.20.2"`.
    pub name: String,
    /// Image size in MiB (drives staging/boot costs in finer models).
    pub size_mb: u32,
}

/// The platform-wide image catalogue.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ImageRegistry {
    images: BTreeMap<ImageId, Image>,
    next: u32,
}

impl ImageRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an image and returns its id.
    pub fn register(&mut self, name: impl Into<String>, size_mb: u32) -> ImageId {
        let id = ImageId(self.next);
        self.next += 1;
        self.images.insert(
            id,
            Image {
                id,
                name: name.into(),
                size_mb,
            },
        );
        id
    }

    /// Looks an image up.
    pub fn get(&self, id: ImageId) -> Option<&Image> {
        self.images.get(&id)
    }

    /// True if the id is registered.
    pub fn contains(&self, id: ImageId) -> bool {
        self.images.contains_key(&id)
    }

    /// Number of registered images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True when no image is registered.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Iterates over images in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Image> {
        self.images.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_get() {
        let mut reg = ImageRegistry::new();
        let oge = reg.register("oge-6.2u7", 4096);
        let hadoop = reg.register("hadoop-0.20.2", 6144);
        assert_ne!(oge, hadoop);
        assert_eq!(reg.get(oge).unwrap().name, "oge-6.2u7");
        assert_eq!(reg.get(hadoop).unwrap().size_mb, 6144);
        assert_eq!(reg.len(), 2);
        assert!(reg.contains(oge));
        assert!(!reg.is_empty());
    }

    #[test]
    fn unknown_image_is_none() {
        let reg = ImageRegistry::new();
        assert!(reg.get(ImageId(9)).is_none());
        assert!(!reg.contains(ImageId(9)));
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut reg = ImageRegistry::new();
        let a = reg.register("a", 1);
        let b = reg.register("b", 1);
        let ids: Vec<ImageId> = reg.iter().map(|i| i.id).collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", ImageId(4)), "img4");
    }
}
