//! VM instance shapes, identifiers and locations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The resource shape of a VM instance.
///
/// The evaluation "used a VM instance model similar to the Amazon EC2
/// medium instance that consists of 2 CPUs and 3.75 GB of memory" —
/// that's [`VmSpec::EC2_MEDIUM_LIKE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmSpec {
    /// Virtual CPUs.
    pub cpus: u32,
    /// Memory in MiB.
    pub memory_mb: u32,
}

impl VmSpec {
    /// The paper's instance model: 2 vCPUs, 3.75 GB.
    pub const EC2_MEDIUM_LIKE: VmSpec = VmSpec {
        cpus: 2,
        memory_mb: 3840,
    };

    /// Creates a spec.
    pub const fn new(cpus: u32, memory_mb: u32) -> Self {
        VmSpec { cpus, memory_mb }
    }
}

impl fmt::Display for VmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}vCPU/{}MiB", self.cpus, self.memory_mb)
    }
}

/// Identifies a VM host domain (the private pool or one public cloud) so
/// VM ids are globally unique without central coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostTag(pub u16);

impl HostTag {
    /// Conventional tag for the private pool.
    pub const PRIVATE: HostTag = HostTag(0);
}

/// A globally unique VM identifier: the owning host's tag in the upper
/// 16 bits, a per-host serial in the lower 48.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(u64);

impl VmId {
    /// Builds an id from a host tag and per-host serial number.
    pub fn new(host: HostTag, serial: u64) -> Self {
        assert!(serial < (1 << 48), "VM serial space exhausted");
        VmId(((host.0 as u64) << 48) | serial)
    }

    /// The host domain that owns this VM.
    pub fn host(self) -> HostTag {
        HostTag((self.0 >> 48) as u16)
    }

    /// The per-host serial.
    pub fn serial(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Debug for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}.{}", self.host().0, self.serial())
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Where a VM physically runs — the private pool or a specific public
/// cloud. Billing rates and speed factors hang off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Location {
    /// The provider-owned pool.
    Private,
    /// A public cloud, by index.
    Cloud(crate::cloud::CloudId),
}

impl Location {
    /// True for the private pool.
    pub fn is_private(self) -> bool {
        matches!(self, Location::Private)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Private => write!(f, "private"),
            Location::Cloud(c) => write!(f, "cloud{}", c.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudId;

    #[test]
    fn ec2_medium_matches_paper() {
        assert_eq!(VmSpec::EC2_MEDIUM_LIKE.cpus, 2);
        assert_eq!(VmSpec::EC2_MEDIUM_LIKE.memory_mb, 3840);
    }

    #[test]
    fn vm_id_round_trips() {
        let id = VmId::new(HostTag(3), 12345);
        assert_eq!(id.host(), HostTag(3));
        assert_eq!(id.serial(), 12345);
    }

    #[test]
    fn vm_ids_from_different_hosts_differ() {
        let a = VmId::new(HostTag(0), 7);
        let b = VmId::new(HostTag(1), 7);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(VmId::new(HostTag(2), 9).to_string(), "vm2.9");
        assert_eq!(VmSpec::EC2_MEDIUM_LIKE.to_string(), "2vCPU/3840MiB");
        assert_eq!(Location::Private.to_string(), "private");
        assert_eq!(Location::Cloud(CloudId(1)).to_string(), "cloud1");
    }

    #[test]
    fn location_predicates() {
        assert!(Location::Private.is_private());
        assert!(!Location::Cloud(CloudId(0)).is_private());
    }

    #[test]
    #[should_panic(expected = "serial space exhausted")]
    fn serial_overflow_panics() {
        VmId::new(HostTag(0), 1 << 48);
    }
}
