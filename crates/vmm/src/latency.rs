//! Operation latency models.
//!
//! The paper reports measured operation times as ranges (Table 1:
//! "7~15 s", "60~84 s"). A [`LatencyModel`] reproduces such a range as a
//! seeded distribution so every simulated operation takes a plausible,
//! reproducible amount of virtual time.

use meryn_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// A distribution of operation durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Always exactly this long.
    Fixed(SimDuration),
    /// Uniform over `[lo, hi]` — the shape of the paper's measured ranges.
    Uniform {
        /// Lower bound (inclusive).
        lo: SimDuration,
        /// Upper bound (inclusive).
        hi: SimDuration,
    },
    /// Normal with the given mean and standard deviation, truncated at
    /// zero.
    Normal {
        /// Mean duration.
        mean: SimDuration,
        /// Standard deviation.
        sd: SimDuration,
    },
}

impl LatencyModel {
    /// A uniform model from a `lo..=hi` range in whole seconds — reads
    /// like the paper's tables: `LatencyModel::uniform_secs(7, 15)`.
    pub const fn uniform_secs(lo: u64, hi: u64) -> Self {
        LatencyModel::Uniform {
            lo: SimDuration::from_secs(lo),
            hi: SimDuration::from_secs(hi),
        }
    }

    /// A fixed model from whole seconds.
    pub const fn fixed_secs(secs: u64) -> Self {
        LatencyModel::Fixed(SimDuration::from_secs(secs))
    }

    /// Instantaneous (for tests and idealized ablations).
    pub const ZERO: LatencyModel = LatencyModel::Fixed(SimDuration::ZERO);

    /// Draws one duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency with lo > hi");
                rng.uniform_duration(lo, hi)
            }
            LatencyModel::Normal { mean, sd } => rng.normal(mean, sd),
        }
    }

    /// The largest duration the model can produce (mean+4σ for normal),
    /// for worst-case deadline sizing — the paper uses the maximum
    /// measured processing time (84 s) when computing deadlines.
    pub fn worst_case(&self) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { hi, .. } => hi,
            LatencyModel::Normal { mean, sd } => mean + sd * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let mut rng = SimRng::new(1);
        let m = LatencyModel::fixed_secs(9);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_secs(9));
        }
        assert_eq!(m.worst_case(), SimDuration::from_secs(9));
    }

    #[test]
    fn uniform_stays_in_range_and_varies() {
        let mut rng = SimRng::new(2);
        let m = LatencyModel::uniform_secs(7, 15);
        let samples: Vec<SimDuration> = (0..200).map(|_| m.sample(&mut rng)).collect();
        assert!(samples
            .iter()
            .all(|&d| d >= SimDuration::from_secs(7) && d <= SimDuration::from_secs(15)));
        assert!(samples.windows(2).any(|w| w[0] != w[1]), "should vary");
        assert_eq!(m.worst_case(), SimDuration::from_secs(15));
    }

    #[test]
    fn normal_truncated_and_bounded_worst_case() {
        let mut rng = SimRng::new(3);
        let m = LatencyModel::Normal {
            mean: SimDuration::from_secs(10),
            sd: SimDuration::from_secs(3),
        };
        for _ in 0..500 {
            let _ = m.sample(&mut rng); // must not panic
        }
        assert_eq!(m.worst_case(), SimDuration::from_secs(22));
    }

    #[test]
    fn zero_model() {
        let mut rng = SimRng::new(4);
        assert_eq!(LatencyModel::ZERO.sample(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_across_equal_seeds() {
        let m = LatencyModel::uniform_secs(40, 58);
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        for _ in 0..50 {
            assert_eq!(m.sample(&mut a), m.sample(&mut b));
        }
    }
}
