//! The platform cost ledger.
//!
//! The evaluation's Figure 6(b) sums "the cost of running the
//! applications": each VM-interval an application occupies is charged at
//! the VM's location cost (private 2 units/VM·s, cloud 4 units/VM·s in the
//! paper). The ledger records those intervals and answers the aggregate
//! queries the report needs.

use meryn_sim::{SimDuration, SimTime};
use meryn_sla::{Money, VmRate};
use serde::{Deserialize, Serialize};

use crate::spec::{Location, VmId};

/// One billed VM interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The VM used.
    pub vm: VmId,
    /// Where it ran (determines the rate).
    pub location: Location,
    /// Interval start.
    pub from: SimTime,
    /// Interval end.
    pub to: SimTime,
    /// Rate applied.
    pub rate: VmRate,
    /// `rate × (to − from)`.
    pub cost: Money,
}

impl LedgerEntry {
    /// Length of the billed interval.
    pub fn duration(&self) -> SimDuration {
        self.to.since(self.from)
    }
}

/// An append-only cost ledger.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges the interval `[from, to)` on `vm` at `rate` and records
    /// the entry. Returns the charged amount.
    pub fn charge(
        &mut self,
        vm: VmId,
        location: Location,
        from: SimTime,
        to: SimTime,
        rate: VmRate,
    ) -> Money {
        assert!(to >= from, "billing interval must not be negative");
        let cost = rate.cost_for(to.since(from));
        self.entries.push(LedgerEntry {
            vm,
            location,
            from,
            to,
            rate,
            cost,
        });
        cost
    }

    /// All recorded entries, in charge order.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total of all charges.
    pub fn total(&self) -> Money {
        self.entries.iter().map(|e| e.cost).sum()
    }

    /// Total of charges on private VMs.
    pub fn total_private(&self) -> Money {
        self.total_where(|e| e.location.is_private())
    }

    /// Total of charges on cloud VMs.
    pub fn total_cloud(&self) -> Money {
        self.total_where(|e| !e.location.is_private())
    }

    /// Total of charges matching a predicate.
    pub fn total_where(&self, pred: impl Fn(&LedgerEntry) -> bool) -> Money {
        self.entries
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.cost)
            .sum()
    }

    /// Total billed VM-seconds matching a predicate.
    pub fn vm_seconds_where(&self, pred: impl Fn(&LedgerEntry) -> bool) -> f64 {
        self.entries
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.duration().as_secs_f64())
            .sum()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was charged yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudId;
    use crate::spec::HostTag;

    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    #[test]
    fn charge_computes_cost() {
        let mut l = Ledger::new();
        let cost = l.charge(
            vid(0),
            Location::Private,
            SimTime::from_secs(100),
            SimTime::from_secs(1650),
            VmRate::per_vm_second(2),
        );
        // 1550 s × 2 u/s = 3100 u — the paper's private-run app cost.
        assert_eq!(cost, Money::from_units(3100));
        assert_eq!(l.total(), cost);
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].duration(), SimDuration::from_secs(1550));
    }

    #[test]
    fn split_by_location() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(100),
            VmRate::per_vm_second(2),
        );
        l.charge(
            VmId::new(HostTag(1), 0),
            Location::Cloud(CloudId(0)),
            SimTime::ZERO,
            SimTime::from_secs(100),
            VmRate::per_vm_second(4),
        );
        assert_eq!(l.total_private(), Money::from_units(200));
        assert_eq!(l.total_cloud(), Money::from_units(400));
        assert_eq!(l.total(), Money::from_units(600));
    }

    #[test]
    fn vm_seconds_aggregation() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(50),
            VmRate::per_vm_second(2),
        );
        l.charge(
            vid(1),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(25),
            VmRate::per_vm_second(2),
        );
        assert_eq!(l.vm_seconds_where(|_| true), 75.0);
    }

    #[test]
    fn empty_ledger() {
        let l = Ledger::new();
        assert!(l.is_empty());
        assert_eq!(l.total(), Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "must not be negative")]
    fn negative_interval_panics() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::from_secs(10),
            SimTime::from_secs(5),
            VmRate::per_vm_second(1),
        );
    }

    #[test]
    fn zero_length_interval_is_free() {
        let mut l = Ledger::new();
        let cost = l.charge(
            vid(0),
            Location::Private,
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            VmRate::per_vm_second(2),
        );
        assert_eq!(cost, Money::ZERO);
    }
}
