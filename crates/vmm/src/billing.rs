//! The platform cost ledger.
//!
//! The evaluation's Figure 6(b) sums "the cost of running the
//! applications": each VM-interval an application occupies is charged at
//! the VM's location cost (private 2 units/VM·s, cloud 4 units/VM·s in the
//! paper). The ledger records those intervals and answers the aggregate
//! queries the report needs.

use meryn_sim::{SimDuration, SimTime};
use meryn_sla::{Money, VmRate};
use serde::{Deserialize, Serialize};

use crate::spec::{Location, VmId};

/// One billed VM interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The VM used.
    pub vm: VmId,
    /// Where it ran (determines the rate).
    pub location: Location,
    /// Interval start.
    pub from: SimTime,
    /// Interval end.
    pub to: SimTime,
    /// Rate applied.
    pub rate: VmRate,
    /// `rate × (to − from)`.
    pub cost: Money,
}

impl LedgerEntry {
    /// Length of the billed interval.
    pub fn duration(&self) -> SimDuration {
        self.to.since(self.from)
    }
}

/// An append-only cost ledger with O(1) aggregate totals.
///
/// Per-location running totals are maintained at [`Ledger::charge`] time, so
/// `total*()` never rescans history. Entry retention is optional: detailed
/// per-interval queries ([`Ledger::entries`], [`Ledger::total_where`],
/// [`Ledger::vm_seconds_where`]) need the entries, but a long-running
/// aggregate-only simulation can drop them (see
/// [`Ledger::aggregate_only`]) and keep memory O(1) regardless of how many
/// intervals were billed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ledger {
    entries: Vec<LedgerEntry>,
    retain_entries: bool,
    charges: u64,
    total: Money,
    total_private: Money,
    total_cloud: Money,
}

impl Default for Ledger {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            retain_entries: true,
            charges: 0,
            total: Money::ZERO,
            total_private: Money::ZERO,
            total_cloud: Money::ZERO,
        }
    }
}

impl Ledger {
    /// Creates an empty ledger that retains every entry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty ledger that keeps only running totals: charges are
    /// counted and summed, but individual [`LedgerEntry`] records are
    /// dropped, so memory stays O(1) in the number of charges.
    pub fn aggregate_only() -> Self {
        Self {
            retain_entries: false,
            ..Self::default()
        }
    }

    /// Switches entry retention on or off. Turning retention off also drops
    /// entries already recorded; running totals are unaffected.
    pub fn set_retain_entries(&mut self, retain: bool) {
        self.retain_entries = retain;
        if !retain {
            self.entries = Vec::new();
        }
    }

    /// True when individual entries are kept (the default).
    pub fn retains_entries(&self) -> bool {
        self.retain_entries
    }

    /// Charges the interval `[from, to)` on `vm` at `rate`, updates the
    /// running totals and (when retention is on) records the entry.
    /// Returns the charged amount.
    pub fn charge(
        &mut self,
        vm: VmId,
        location: Location,
        from: SimTime,
        to: SimTime,
        rate: VmRate,
    ) -> Money {
        assert!(to >= from, "billing interval must not be negative");
        let cost = rate.cost_for(to.since(from));
        self.charges += 1;
        self.total += cost;
        if location.is_private() {
            self.total_private += cost;
        } else {
            self.total_cloud += cost;
        }
        if self.retain_entries {
            self.entries.push(LedgerEntry {
                vm,
                location,
                from,
                to,
                rate,
                cost,
            });
        }
        cost
    }

    /// All retained entries, in charge order. Empty when retention is off.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Total of all charges. O(1).
    pub fn total(&self) -> Money {
        self.total
    }

    /// Total of charges on private VMs. O(1).
    pub fn total_private(&self) -> Money {
        self.total_private
    }

    /// Total of charges on cloud VMs. O(1).
    pub fn total_cloud(&self) -> Money {
        self.total_cloud
    }

    /// Total of retained charges matching a predicate. Requires entry
    /// retention: with retention off this only sees an empty history.
    pub fn total_where(&self, pred: impl Fn(&LedgerEntry) -> bool) -> Money {
        self.entries
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.cost)
            .sum()
    }

    /// Total billed VM-seconds of retained charges matching a predicate.
    /// Requires entry retention, like [`Ledger::total_where`].
    pub fn vm_seconds_where(&self, pred: impl Fn(&LedgerEntry) -> bool) -> f64 {
        self.entries
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.duration().as_secs_f64())
            .sum()
    }

    /// Number of charges ever made (retained or not).
    pub fn len(&self) -> usize {
        self.charges as usize
    }

    /// True when nothing was charged yet.
    pub fn is_empty(&self) -> bool {
        self.charges == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudId;
    use crate::spec::HostTag;

    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    #[test]
    fn charge_computes_cost() {
        let mut l = Ledger::new();
        let cost = l.charge(
            vid(0),
            Location::Private,
            SimTime::from_secs(100),
            SimTime::from_secs(1650),
            VmRate::per_vm_second(2),
        );
        // 1550 s × 2 u/s = 3100 u — the paper's private-run app cost.
        assert_eq!(cost, Money::from_units(3100));
        assert_eq!(l.total(), cost);
        assert_eq!(l.len(), 1);
        assert_eq!(l.entries()[0].duration(), SimDuration::from_secs(1550));
    }

    #[test]
    fn split_by_location() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(100),
            VmRate::per_vm_second(2),
        );
        l.charge(
            VmId::new(HostTag(1), 0),
            Location::Cloud(CloudId(0)),
            SimTime::ZERO,
            SimTime::from_secs(100),
            VmRate::per_vm_second(4),
        );
        assert_eq!(l.total_private(), Money::from_units(200));
        assert_eq!(l.total_cloud(), Money::from_units(400));
        assert_eq!(l.total(), Money::from_units(600));
    }

    #[test]
    fn vm_seconds_aggregation() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(50),
            VmRate::per_vm_second(2),
        );
        l.charge(
            vid(1),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(25),
            VmRate::per_vm_second(2),
        );
        assert_eq!(l.vm_seconds_where(|_| true), 75.0);
    }

    #[test]
    fn empty_ledger() {
        let l = Ledger::new();
        assert!(l.is_empty());
        assert_eq!(l.total(), Money::ZERO);
    }

    #[test]
    #[should_panic(expected = "must not be negative")]
    fn negative_interval_panics() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::from_secs(10),
            SimTime::from_secs(5),
            VmRate::per_vm_second(1),
        );
    }

    #[test]
    fn aggregate_only_keeps_totals_without_entries() {
        let mut l = Ledger::aggregate_only();
        assert!(!l.retains_entries());
        l.charge(
            vid(0),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(100),
            VmRate::per_vm_second(2),
        );
        l.charge(
            VmId::new(HostTag(1), 0),
            Location::Cloud(CloudId(0)),
            SimTime::ZERO,
            SimTime::from_secs(100),
            VmRate::per_vm_second(4),
        );
        assert_eq!(l.total_private(), Money::from_units(200));
        assert_eq!(l.total_cloud(), Money::from_units(400));
        assert_eq!(l.total(), Money::from_units(600));
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
        assert!(l.entries().is_empty());
    }

    #[test]
    fn totals_match_entry_rescan() {
        let mut l = Ledger::new();
        for i in 0..10u64 {
            let loc = if i % 2 == 0 {
                Location::Private
            } else {
                Location::Cloud(CloudId(0))
            };
            l.charge(
                vid(i),
                loc,
                SimTime::from_secs(i),
                SimTime::from_secs(i + 7),
                VmRate::per_vm_second(1 + (i % 3) as i64),
            );
        }
        assert_eq!(l.total(), l.total_where(|_| true));
        assert_eq!(
            l.total_private(),
            l.total_where(|e| e.location.is_private())
        );
        assert_eq!(l.total_cloud(), l.total_where(|e| !e.location.is_private()));
    }

    #[test]
    fn disabling_retention_drops_history_not_totals() {
        let mut l = Ledger::new();
        l.charge(
            vid(0),
            Location::Private,
            SimTime::ZERO,
            SimTime::from_secs(10),
            VmRate::per_vm_second(2),
        );
        l.set_retain_entries(false);
        assert!(l.entries().is_empty());
        assert_eq!(l.total(), Money::from_units(20));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn zero_length_interval_is_free() {
        let mut l = Ledger::new();
        let cost = l.charge(
            vid(0),
            Location::Private,
            SimTime::from_secs(5),
            SimTime::from_secs(5),
            VmRate::per_vm_second(2),
        );
        assert_eq!(cost, Money::ZERO);
    }
}
