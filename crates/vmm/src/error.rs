//! Error types for VM management operations.

use std::fmt;

use crate::image::ImageId;
use crate::spec::VmId;

/// Errors surfaced by the pool and cloud state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmmError {
    /// No node (or cloud quota) can fit another VM.
    CapacityExhausted {
        /// Capacity of the domain that refused the request.
        capacity: u64,
    },
    /// The VM id is not known to this host domain.
    UnknownVm(VmId),
    /// The operation is invalid in the VM's current lifecycle state.
    InvalidTransition {
        /// The VM in question.
        vm: VmId,
        /// Current state name.
        state: &'static str,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// The disk image has not been registered.
    UnknownImage(ImageId),
    /// The image exists but was never staged to this cloud (§3.5 requires
    /// pre-saving framework images in every cloud that may be used).
    ImageNotStaged(ImageId),
    /// The VM crashed: its resources were force-released by the fault
    /// plane and any further lifecycle operation on it is invalid.
    Crashed(VmId),
    /// The host domain is temporarily refusing new leases — a scheduled
    /// outage window or a transient rejection — as opposed to being
    /// *full* ([`VmmError::CapacityExhausted`]). Callers retry with
    /// backoff or degrade to the private pool.
    Unavailable {
        /// Earliest instant (seconds) the domain may accept leases
        /// again, when known.
        until_secs: Option<u64>,
    },
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::CapacityExhausted { capacity } => {
                write!(f, "capacity exhausted ({capacity} VMs)")
            }
            VmmError::UnknownVm(id) => write!(f, "unknown VM {id}"),
            VmmError::InvalidTransition { vm, state, op } => {
                write!(f, "cannot {op} VM {vm} in state {state}")
            }
            VmmError::UnknownImage(id) => write!(f, "unknown image {id:?}"),
            VmmError::ImageNotStaged(id) => {
                write!(f, "image {id:?} not staged to this cloud")
            }
            VmmError::Crashed(id) => write!(f, "VM {id} crashed"),
            VmmError::Unavailable { until_secs } => match until_secs {
                Some(t) => write!(f, "host domain unavailable until t={t} s"),
                None => write!(f, "host domain unavailable"),
            },
        }
    }
}

impl std::error::Error for VmmError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::HostTag;

    #[test]
    fn messages_are_informative() {
        let vm = VmId::new(HostTag(0), 3);
        assert_eq!(
            VmmError::CapacityExhausted { capacity: 50 }.to_string(),
            "capacity exhausted (50 VMs)"
        );
        assert!(VmmError::UnknownVm(vm).to_string().contains("vm0.3"));
        let e = VmmError::InvalidTransition {
            vm,
            state: "Starting",
            op: "stop",
        };
        assert_eq!(e.to_string(), "cannot stop VM vm0.3 in state Starting");
    }

    #[test]
    fn crashed_names_the_vm() {
        let vm = VmId::new(HostTag(0), 3);
        assert_eq!(VmmError::Crashed(vm).to_string(), "VM vm0.3 crashed");
    }

    #[test]
    fn unavailable_is_distinct_from_capacity() {
        let e = VmmError::Unavailable {
            until_secs: Some(120),
        };
        assert_eq!(e.to_string(), "host domain unavailable until t=120 s");
        assert_eq!(
            VmmError::Unavailable { until_secs: None }.to_string(),
            "host domain unavailable"
        );
        assert_ne!(e, VmmError::CapacityExhausted { capacity: 120 });
    }
}
