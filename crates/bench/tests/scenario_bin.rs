//! Drives the `scenario` binary's failure paths: a missing, truncated
//! or corrupt checkpoint handed to `--resume` must produce a clear
//! diagnostic and exit code 2 — never a panic backtrace.

use std::path::PathBuf;
use std::process::Command;

fn scenario_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scenario"))
}

/// A minimal spec file for the failure-path invocations (the resume
/// paths bail before the workload ever runs). One file per test —
/// the harness runs tests concurrently.
fn spec_path(stem: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("meryn-scenario-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{stem}.json"));
    let (_, scenario) = meryn_bench::catalog::shipped()
        .into_iter()
        .next()
        .expect("catalog is non-empty");
    scenario.save(&path).expect("write spec");
    path
}

#[test]
fn resume_from_missing_checkpoint_exits_2_with_diagnostic() {
    let out = scenario_bin()
        .arg(spec_path("missing"))
        .args(["--resume", "/nonexistent/meryn-no-such-checkpoint.json"])
        .output()
        .expect("spawn scenario bin");
    assert_eq!(out.status.code(), Some(2), "missing checkpoint → exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot read checkpoint"),
        "diagnostic names the failure: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");
}

#[test]
fn resume_from_garbage_checkpoint_exits_2_with_diagnostic() {
    let spec = spec_path("garbage");
    let garbage = spec.with_file_name("garbage-checkpoint.json");
    std::fs::write(&garbage, "{\"this is\": \"not a checkpoint\"").expect("write garbage");
    let out = scenario_bin()
        .arg(spec)
        .arg("--resume")
        .arg(&garbage)
        .output()
        .expect("spawn scenario bin");
    assert_eq!(out.status.code(), Some(2), "corrupt checkpoint → exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a valid engine checkpoint"),
        "diagnostic names the failure: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "no panic backtrace: {stderr}");
}

#[test]
fn checkpoint_to_unwritable_path_exits_2_with_diagnostic() {
    let out = scenario_bin()
        .arg(spec_path("unwritable"))
        .args([
            "--checkpoint",
            "/nonexistent-dir/cp.json",
            "--checkpoint-at",
            "1",
        ])
        .output()
        .expect("spawn scenario bin");
    assert_eq!(out.status.code(), Some(2), "unwritable checkpoint → exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot write checkpoint"),
        "diagnostic names the failure: {stderr}"
    );
}
