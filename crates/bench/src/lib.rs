//! Shared helpers for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has one binary in
//! `src/bin/` (see DESIGN.md §5 for the index); this library holds the
//! fixtures they share: running the paper scenario under either policy,
//! forcing each Table 1 placement case, and small formatting utilities.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use meryn_core::config::{PlatformConfig, PolicyMode, VcConfig};
use meryn_core::report::RunReport;
use meryn_core::Platform;
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::stats::Summary;
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_workloads::{paper_workload, PaperWorkloadParams, Submission, VcTarget};

/// Runs the paper's 65-app workload under `mode` with the given seed.
pub fn run_paper(mode: PolicyMode, seed: u64) -> RunReport {
    let cfg = PlatformConfig::paper(mode).with_seed(seed);
    Platform::new(cfg).run(&paper_workload(PaperWorkloadParams::default()))
}

/// Runs an arbitrary config against the paper workload.
pub fn run_paper_with(cfg: PlatformConfig) -> RunReport {
    Platform::new(cfg).run(&paper_workload(PaperWorkloadParams::default()))
}

fn batch_sub(at: u64, vc: usize, work: u64) -> Submission {
    Submission::new(
        SimTime::from_secs(at),
        VcTarget::Index(vc),
        JobSpec::Batch {
            work: SimDuration::from_secs(work),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        },
        UserStrategy::AcceptCheapest,
    )
}

fn slack_sub(at: u64, vc: usize, work: u64, deadline: u64) -> Submission {
    Submission::new(
        SimTime::from_secs(at),
        VcTarget::Index(vc),
        JobSpec::Batch {
            work: SimDuration::from_secs(work),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        },
        UserStrategy::ImposeDeadline {
            deadline: SimDuration::from_secs(deadline),
            concession_pct: 10,
        },
    )
}

/// The five Table 1 placement cases.
pub const TABLE1_CASES: [&str; 5] = [
    "local-vm",
    "vc-vm",
    "cloud-vm",
    "local-vm after suspension",
    "vc-vm after suspension",
];

/// Paper-measured processing-time ranges (seconds) for Table 1.
pub fn paper_range(case: &str) -> (f64, f64) {
    match case {
        "local-vm" => (7.0, 15.0),
        "vc-vm" => (40.0, 58.0),
        "cloud-vm" => (60.0, 84.0),
        "local-vm after suspension" => (10.0, 17.0),
        "vc-vm after suspension" => (60.0, 68.0),
        _ => unreachable!("unknown Table 1 case {case}"),
    }
}

/// Runs one micro-scenario that forces the given Table 1 placement
/// case and returns the target app's processing time in seconds.
pub fn measure_case(case: &str, seed: u64) -> f64 {
    let (cfg, workload, target_idx) = match case {
        "local-vm" => {
            let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 1)];
            (cfg, vec![batch_sub(5, 0, 100)], 0usize)
        }
        "vc-vm" => {
            let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 0), VcConfig::batch("VC2", 1)];
            (cfg, vec![batch_sub(5, 0, 100)], 0)
        }
        "cloud-vm" => {
            let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 0)];
            (cfg, vec![batch_sub(5, 0, 100)], 0)
        }
        "local-vm after suspension" => {
            let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 1)];
            cfg.clouds.clear();
            (
                cfg,
                vec![slack_sub(5, 0, 500, 50_000), batch_sub(40, 0, 100)],
                1,
            )
        }
        "vc-vm after suspension" => {
            let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 0), VcConfig::batch("VC2", 1)];
            cfg.clouds.clear();
            (
                cfg,
                vec![slack_sub(5, 1, 500, 50_000), batch_sub(40, 0, 100)],
                1,
            )
        }
        _ => unreachable!("unknown Table 1 case {case}"),
    };
    let report = Platform::new(cfg.with_seed(seed)).run(&workload);
    let app = &report.apps[target_idx];
    assert_eq!(
        app.placement, case,
        "scenario must force the intended placement"
    );
    app.processing
        .expect("target app reached the framework")
        .as_secs_f64()
}

pub mod sweep;

/// Formats a summary as `min~max (mean μ, n samples)`.
pub fn fmt_summary(s: &Summary) -> String {
    if s.is_empty() {
        return "—".to_owned();
    }
    format!(
        "{:.0}~{:.0} s (mean {:.1}, n={})",
        s.min(),
        s.max(),
        s.mean(),
        s.count()
    )
}

/// Prints a horizontal rule with a title.
pub fn section(title: &str) {
    println!("\n════ {title} ═══════════════════════════════════════");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_is_forcible() {
        for case in TABLE1_CASES {
            let secs = measure_case(case, 1);
            assert!(secs > 0.0, "{case}: {secs}");
        }
    }

    #[test]
    fn paper_ranges_are_ordered() {
        for case in TABLE1_CASES {
            let (lo, hi) = paper_range(case);
            assert!(lo < hi);
        }
    }

    #[test]
    fn run_paper_smoke() {
        let r = run_paper(PolicyMode::Meryn, 3);
        assert_eq!(r.apps.len(), 65);
    }
}
