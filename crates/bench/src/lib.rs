//! Experiment front-end for the paper's evaluation.
//!
//! Every table and figure of the paper has one binary in `src/bin/`;
//! since the declarative scenario redesign they are all *thin
//! wrappers*: each builds (or loads) a [`meryn_scenario::Scenario`] and
//! hands it to the one [`meryn_scenario::run_scenario`] entry point —
//! the `scenario` binary runs any spec file under `scenarios/`. This
//! crate re-exports the `meryn-scenario` API (the harness lived here
//! before the split, and the workspace tests still address it as
//! `meryn_bench::sweep`) plus a few formatting helpers the binaries
//! share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use meryn_scenario::spec;
pub use meryn_scenario::sweep;
pub use meryn_scenario::{
    bench_scenario, catalog, measure_case, paper_range, run_paper, run_paper_with, run_scenario,
    single_run_resume, single_run_start, BenchReport, Scenario, ScenarioReport, TABLE1_CASES,
};

use meryn_sim::stats::Summary;

/// Formats a summary as `min~max (mean μ, n samples)`.
pub fn fmt_summary(s: &Summary) -> String {
    if s.is_empty() {
        return "—".to_owned();
    }
    format!(
        "{:.0}~{:.0} s (mean {:.1}, n={})",
        s.min(),
        s.max(),
        s.mean(),
        s.count()
    )
}

/// Prints a horizontal rule with a title.
pub fn section(title: &str) {
    println!("\n════ {title} ═══════════════════════════════════════");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_reach_the_scenario_api() {
        // The paths the rest of the workspace (tests, CI docs) rely on.
        let r = run_paper("meryn", 3);
        assert_eq!(r.apps.len(), 65);
        assert_eq!(paper_range("local-vm"), Some((7.0, 15.0)));
        assert_eq!(paper_range("nonsense"), None);
        assert_eq!(sweep::DEFAULT_BASE_SEED, 0xC0FFEE);
    }

    #[test]
    fn fmt_summary_handles_empty_and_filled() {
        assert_eq!(fmt_summary(&Summary::new()), "—");
        let s = Summary::from_slice(&[1.0, 3.0]);
        assert_eq!(fmt_summary(&s), "1~3 s (mean 2.0, n=2)");
    }
}
