//! **Ablation A7** — SLA violation handling.
//!
//! §3.3: when the Application Controller detects a violation, "the
//! Cluster Manager proceeds to address the SLA violation according to
//! specific policies that are not treated in this paper". This ablation
//! compares the paper's implicit policy (report and carry on) against an
//! enforcement policy that withdraws at-risk *queued* jobs from the
//! framework and bursts them to the cheapest cloud.
//!
//! Scenario: a small private estate with a quota-limited cloud, so load
//! spikes leave jobs waiting in the queue with their deadlines burning.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_escalation
//! ```

use meryn_bench::section;
use meryn_bench::sweep::fanout;
use meryn_core::config::{PlatformConfig, PolicyMode, VcConfig, ViolationPolicy};
use meryn_core::Platform;
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_workloads::{Submission, VcTarget};

fn workload() -> Vec<Submission> {
    // 24 jobs in quick succession against 4 private VMs: a deep queue.
    (0..24)
        .map(|i| {
            Submission::new(
                SimTime::from_secs(5 + i * 15),
                VcTarget::Index(0),
                JobSpec::Batch {
                    work: SimDuration::from_secs(600),
                    nb_vms: 1,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            )
        })
        .collect()
}

fn run(policy: ViolationPolicy) -> meryn_core::RunReport {
    let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
    cfg.private_capacity = 4;
    cfg.vcs = vec![VcConfig::batch("VC1", 4)];
    // A tight cloud quota: the initial bursting saturates it, later
    // arrivals queue; the quota frees up as bursted jobs finish.
    // Suspension is disabled so waiting happens in the queue (held
    // lending victims cannot be escalated).
    cfg.clouds[0].quota = Some(4);
    cfg.suspension_enabled = false;
    cfg.controller_check_interval = Some(SimDuration::from_secs(15));
    cfg.violation_policy = policy;
    Platform::new(cfg).run(&workload())
}

fn main() {
    section("Ablation A7 — violation policy: report vs escalate-to-cloud");
    let mut results = fanout(
        vec![ViolationPolicy::Report, ViolationPolicy::EscalateToCloud],
        run,
    )
    .into_iter();
    let (report_only, escalate) = (results.next().unwrap(), results.next().unwrap());

    println!("{:<26} {:>12} {:>12}", "", "report-only", "escalate");
    for (label, a, b) in [
        (
            "violations",
            report_only.violations() as f64,
            escalate.violations() as f64,
        ),
        (
            "escalations",
            report_only.escalations as f64,
            escalate.escalations as f64,
        ),
        ("bursts", report_only.bursts as f64, escalate.bursts as f64),
        (
            "completion [s]",
            report_only.completion_secs(),
            escalate.completion_secs(),
        ),
        (
            "total cost [u]",
            report_only.total_cost().as_units_f64(),
            escalate.total_cost().as_units_f64(),
        ),
        (
            "total penalties [u]",
            report_only
                .apps
                .iter()
                .map(|x| x.penalty.as_units_f64())
                .sum(),
            escalate.apps.iter().map(|x| x.penalty.as_units_f64()).sum(),
        ),
        (
            "profit [u]",
            report_only.profit().as_units_f64(),
            escalate.profit().as_units_f64(),
        ),
    ] {
        println!("{label:<26} {a:>12.0} {b:>12.0}");
    }
    println!(
        "\nReading: escalation buys back lateness with cloud spend — the \
         workload finishes ~10 minutes sooner and penalties shrink, but \
         in this deep-overload scenario the extra leases cost more than \
         the refunded penalties, so report-only keeps more profit while \
         escalation keeps the users happier. Which side wins pivots on \
         the penalty factor N, the cloud price and how early the \
         controller intervenes."
    );
}
