//! **Ablation A7** — SLA violation handling.
//!
//! §3.3: when the Application Controller detects a violation, "the
//! Cluster Manager proceeds to address the SLA violation according to
//! specific policies that are not treated in this paper". This ablation
//! compares the paper's implicit policy (report and carry on) against an
//! enforcement policy that withdraws at-risk *queued* jobs from the
//! framework and bursts them to the cheapest cloud. A thin wrapper: a
//! quota-limited platform + explicit deep-queue workload scenario with
//! a `ViolationPolicy` sweep axis.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_escalation
//! ```

use meryn_bench::spec::{OutputSpec, Scenario, SweepAxis, SweepSpec, WorkloadSpec};
use meryn_bench::{run_scenario, section};
use meryn_core::config::{PlatformConfig, VcConfig, ViolationPolicy};
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_workloads::{Submission, VcTarget};

fn workload() -> Vec<Submission> {
    // 24 jobs in quick succession against 4 private VMs: a deep queue.
    (0..24)
        .map(|i| {
            Submission::new(
                SimTime::from_secs(5 + i * 15),
                VcTarget::Index(0),
                JobSpec::Batch {
                    work: SimDuration::from_secs(600),
                    nb_vms: 1,
                    scaling: ScalingLaw::Fixed,
                },
                UserStrategy::AcceptCheapest,
            )
        })
        .collect()
}

fn main() {
    let mut platform = PlatformConfig::paper("meryn");
    platform.private_capacity = 4;
    platform.vcs = vec![VcConfig::batch("VC1", 4)];
    // A tight cloud quota: the initial bursting saturates it, later
    // arrivals queue; the quota frees up as bursted jobs finish.
    // Suspension is disabled so waiting happens in the queue (held
    // lending victims cannot be escalated).
    platform.clouds[0].quota = Some(4);
    platform.suspension_enabled = false;
    platform.controller_check_interval = Some(SimDuration::from_secs(15));
    let scenario = Scenario {
        name: "ablation-escalation".into(),
        description: String::new(),
        platform,
        workload: WorkloadSpec::Explicit {
            submissions: workload(),
        },
        sweep: SweepSpec {
            replicas: 0,
            axes: vec![SweepAxis::ViolationPolicy {
                values: vec![ViolationPolicy::Report, ViolationPolicy::EscalateToCloud],
            }],
            ..Default::default()
        },
        outputs: OutputSpec::default(),
    };
    let report = run_scenario(&scenario).expect("explicit workload needs no files");
    let (report_only, escalate) = (report.variants[0].summary(), report.variants[1].summary());

    section("Ablation A7 — violation policy: report vs escalate-to-cloud");
    println!("{:<26} {:>12} {:>12}", "", "report-only", "escalate");
    for (label, a, b) in [
        (
            "violations",
            report_only.violations as f64,
            escalate.violations as f64,
        ),
        (
            "escalations",
            report_only.escalations as f64,
            escalate.escalations as f64,
        ),
        ("bursts", report_only.bursts as f64, escalate.bursts as f64),
        (
            "completion [s]",
            report_only.completion_secs,
            escalate.completion_secs,
        ),
        (
            "total cost [u]",
            report_only.total_cost_units,
            escalate.total_cost_units,
        ),
        (
            "total penalties [u]",
            report_only.penalties_units,
            escalate.penalties_units,
        ),
        (
            "profit [u]",
            report_only.profit_units,
            escalate.profit_units,
        ),
    ] {
        println!("{label:<26} {a:>12.0} {b:>12.0}");
    }
    println!(
        "\nReading: escalation buys back lateness with cloud spend — the \
         workload finishes ~10 minutes sooner and penalties shrink, but \
         in this deep-overload scenario the extra leases cost more than \
         the refunded penalties, so report-only keeps more profit while \
         escalation keeps the users happier. Which side wins pivots on \
         the penalty factor N, the cloud price and how early the \
         controller intervenes."
    );
}
