//! Compares two `ScenarioReport` JSON files and prints per-metric
//! deltas — or regenerates the shipped goldens and reports what moved.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin scenario-diff -- a.json b.json
//! cargo run --release -p meryn-bench --bin scenario-diff -- --regen [goldens-dir]
//! ```
//!
//! `--regen` re-runs every `meryn_scenario::catalog::shipped()` spec
//! (the same source of truth the checked-in `scenarios/*.json` files
//! byte-match) and rewrites `scenarios/goldens/<stem>.json`, printing
//! the per-metric delta of each golden that changed. Run it once per
//! intentional behaviour change and commit the summary with the
//! rewrite — that is the repository's re-baseline policy.
//!
//! Exit status: `0` when the reports are identical (no golden moved),
//! `1` when any metric differs (CI gates on this — e.g. the
//! golden-report comparison), `2` on usage or I/O errors. Numeric
//! leaves print `a → b (Δ)`; structural mismatches (missing keys,
//! different lengths or kinds) are reported at their JSON path.

use meryn_bench::{catalog, run_scenario};
use serde_json::Value;

fn usage() -> ! {
    eprintln!("usage: scenario-diff <a.json> <b.json> [--quiet]");
    eprintln!("       scenario-diff --regen [goldens-dir] [--quiet]");
    std::process::exit(2);
}

/// One observed difference at a JSON path.
struct Diff {
    path: String,
    detail: String,
}

fn fmt_leaf(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::F64(n) => format!("{n}"),
        Value::Str(s) => format!("{s:?}"),
        Value::Seq(s) => format!("[…; {}]", s.len()),
        Value::Map(m) => format!("{{…; {}}}", m.len()),
    }
}

/// Numeric view of a leaf, when it has one.
fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::I64(n) => Some(*n as f64),
        Value::U64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn walk(path: &str, a: &Value, b: &Value, out: &mut Vec<Diff>) {
    match (a, b) {
        (Value::Map(ma), Value::Map(mb)) => {
            for (k, va) in ma {
                match serde::value::get(mb, k) {
                    Some(vb) => walk(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(Diff {
                        path: format!("{path}.{k}"),
                        detail: format!("only in a: {}", fmt_leaf(va)),
                    }),
                }
            }
            for (k, vb) in mb {
                if serde::value::get(ma, k).is_none() {
                    out.push(Diff {
                        path: format!("{path}.{k}"),
                        detail: format!("only in b: {}", fmt_leaf(vb)),
                    });
                }
            }
        }
        (Value::Seq(sa), Value::Seq(sb)) => {
            if sa.len() != sb.len() {
                out.push(Diff {
                    path: path.to_owned(),
                    detail: format!("length {} vs {}", sa.len(), sb.len()),
                });
            }
            for (i, (va, vb)) in sa.iter().zip(sb).enumerate() {
                walk(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ => {
            if a == b {
                return;
            }
            let detail = match (as_number(a), as_number(b)) {
                (Some(na), Some(nb)) => {
                    format!("{} → {} (Δ {:+})", fmt_leaf(a), fmt_leaf(b), nb - na)
                }
                _ => format!("{} → {}", fmt_leaf(a), fmt_leaf(b)),
            };
            out.push(Diff {
                path: path.to_owned(),
                detail,
            });
        }
    }
}

fn load(path: &str) -> Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde_json::from_str::<Value>(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

/// `--regen`: rewrite every shipped golden from the catalog, printing
/// a per-metric delta summary of the ones that moved.
fn regen(dir: &str, quiet: bool) -> ! {
    let mut rewritten = 0usize;
    for (stem, scenario) in catalog::shipped() {
        let path = format!("{dir}/{stem}.json");
        let fresh = match run_scenario(&scenario) {
            Ok(report) => report.to_json(),
            Err(e) => {
                eprintln!("error: {stem}: {e}");
                std::process::exit(2);
            }
        };
        let old_text = std::fs::read_to_string(&path).ok();
        if old_text.as_deref() == Some(fresh.as_str()) {
            if !quiet {
                println!("unchanged: {path}");
            }
            continue;
        }
        rewritten += 1;
        if let Err(e) = std::fs::write(&path, &fresh) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        if quiet {
            continue;
        }
        match old_text {
            None => println!("new golden: {path}"),
            Some(old) => {
                let (a, b): (Value, Value) =
                    match (serde_json::from_str(&old), serde_json::from_str(&fresh)) {
                        (Ok(a), Ok(b)) => (a, b),
                        _ => {
                            println!("rewritten (old golden was not valid JSON): {path}");
                            continue;
                        }
                    };
                let mut diffs = Vec::new();
                walk("$", &a, &b, &mut diffs);
                println!("rewritten: {path} — {} metric(s) moved:", diffs.len());
                for d in &diffs {
                    println!("  {:<60} {}", d.path, d.detail);
                }
            }
        }
    }
    if !quiet {
        println!(
            "{rewritten} golden(s) rewritten — verify with `cargo test --release -q` \
             (tests/golden_scenarios.rs byte-compares every spec)"
        );
    }
    std::process::exit(if rewritten == 0 { 0 } else { 1 });
}

fn main() {
    let mut paths = Vec::new();
    let mut quiet = false;
    let mut do_regen = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" => quiet = true,
            "--regen" => do_regen = true,
            other if !other.starts_with("--") => paths.push(other.to_owned()),
            _ => usage(),
        }
    }
    if do_regen {
        let dir = match paths.as_slice() {
            [] => "scenarios/goldens",
            [dir] => dir.as_str(),
            _ => usage(),
        };
        regen(dir, quiet);
    }
    let [a_path, b_path] = paths.as_slice() else {
        usage()
    };
    let a = load(a_path);
    let b = load(b_path);
    let mut diffs = Vec::new();
    walk("$", &a, &b, &mut diffs);
    if diffs.is_empty() {
        if !quiet {
            println!("identical: {a_path} == {b_path}");
        }
        return;
    }
    if !quiet {
        println!("{} metric(s) differ ({a_path} vs {b_path}):", diffs.len());
        for d in &diffs {
            println!("  {:<60} {}", d.path, d.detail);
        }
    }
    std::process::exit(1);
}
