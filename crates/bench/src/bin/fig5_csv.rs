//! Machine-readable variant of the Figure 5 regeneration: emits the
//! used-VM series for both policies as one merged CSV on stdout, ready
//! for plotting (`time_s,meryn_private,meryn_cloud,static_private,
//! static_cloud`). The two policy runs execute in parallel through the
//! shared sweep harness.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig5_csv > fig5.csv
//! ```

use meryn_bench::run_paper;
use meryn_bench::sweep::{fanout, DEFAULT_BASE_SEED};
use meryn_core::config::PolicyMode;
use meryn_sim::{SimDuration, SimTime};

fn main() {
    let mut reports = fanout(vec![PolicyMode::Meryn, PolicyMode::Static], |mode| {
        run_paper(mode, DEFAULT_BASE_SEED)
    })
    .into_iter();
    let (meryn, stat) = (reports.next().unwrap(), reports.next().unwrap());
    let horizon = meryn.series.horizon().max_of(stat.series.horizon());
    let step = SimDuration::from_secs(10);

    println!("time_s,meryn_private,meryn_cloud,static_private,static_cloud");
    let mut t = SimTime::ZERO;
    loop {
        println!(
            "{},{},{},{},{}",
            t.as_secs(),
            meryn.series.get(0).value_at(t),
            meryn.series.get(1).value_at(t),
            stat.series.get(0).value_at(t),
            stat.series.get(1).value_at(t),
        );
        if t >= horizon {
            break;
        }
        t += step;
    }
}
