//! Machine-readable variant of the Figure 5 regeneration: emits the
//! used-VM series for both policies as one merged CSV on stdout, ready
//! for plotting (`time_s,meryn_private,meryn_cloud,static_private,
//! static_cloud`).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig5_csv > fig5.csv
//! ```

use meryn_bench::run_paper;
use meryn_core::config::PolicyMode;
use meryn_sim::{SimDuration, SimTime};

fn main() {
    let meryn = run_paper(PolicyMode::Meryn, 0xC0FFEE);
    let stat = run_paper(PolicyMode::Static, 0xC0FFEE);
    let horizon = meryn.series.horizon().max_of(stat.series.horizon());
    let step = SimDuration::from_secs(10);

    println!("time_s,meryn_private,meryn_cloud,static_private,static_cloud");
    let mut t = SimTime::ZERO;
    loop {
        println!(
            "{},{},{},{},{}",
            t.as_secs(),
            meryn.series.get(0).value_at(t),
            meryn.series.get(1).value_at(t),
            stat.series.get(0).value_at(t),
            stat.series.get(1).value_at(t),
        );
        if t >= horizon {
            break;
        }
        t += step;
    }
}
