//! Machine-readable variant of the Figure 5 regeneration: emits the
//! used-VM series for both policies as one merged CSV on stdout, ready
//! for plotting (`time_s,meryn_private,meryn_cloud,static_private,
//! static_cloud`). A thin wrapper over the paper scenario with the
//! series output requested.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig5_csv > fig5.csv
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario};
use meryn_sim::{SimDuration, SimTime};

fn main() {
    let mut s = catalog::paper();
    s.name = "fig5_csv".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.axes = vec![SweepAxis::Policy {
        values: vec!["meryn".into(), "static".into()],
    }];
    s.outputs = OutputSpec {
        series: true,
        ..Default::default()
    };
    let report = run_scenario(&s).expect("paper workload needs no files");
    let meryn = report.variants[0]
        .series
        .as_ref()
        .expect("series requested");
    let stat = report.variants[1]
        .series
        .as_ref()
        .expect("series requested");

    let horizon = meryn.horizon().max_of(stat.horizon());
    let step = SimDuration::from_secs(10);

    println!("time_s,meryn_private,meryn_cloud,static_private,static_cloud");
    let mut t = SimTime::ZERO;
    loop {
        println!(
            "{},{},{},{},{}",
            t.as_secs(),
            meryn.get(0).value_at(t),
            meryn.get(1).value_at(t),
            stat.get(0).value_at(t),
            stat.get(1).value_at(t),
        );
        if t >= horizon {
            break;
        }
        t += step;
    }
}
