//! **Ablation A4** — load sweep: Meryn vs static as arrival pressure
//! grows.
//!
//! Shrinks the paper workload's inter-arrival gap. At low load both
//! policies stay private (no difference); as pressure grows, static
//! bursts for all of VC1's overflow while Meryn first drains VC2's
//! idle VMs — the gap between the two is the value of the exchange.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_load
//! ```

use meryn_bench::section;
use meryn_bench::sweep::fanout;
use meryn_core::config::{PlatformConfig, PolicyMode};
use meryn_core::Platform;
use meryn_sim::SimDuration;
use meryn_workloads::{paper_workload, PaperWorkloadParams};

fn main() {
    section("Ablation A4 — inter-arrival sweep (65-app workload)");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "gap [s]", "meryn cost", "static cost", "m. bursts", "s. bursts", "transfers"
    );
    let gaps = vec![60u64, 30, 10, 5, 2];
    let rows: Vec<String> = fanout(gaps, |gap| {
        let workload = paper_workload(PaperWorkloadParams {
            interarrival: SimDuration::from_secs(gap),
            ..Default::default()
        });
        let meryn = Platform::new(PlatformConfig::paper(PolicyMode::Meryn)).run(&workload);
        let stat = Platform::new(PlatformConfig::paper(PolicyMode::Static)).run(&workload);
        format!(
            "{:>8} {:>14.0} {:>14.0} {:>12} {:>12} {:>10}",
            gap,
            meryn.total_cost().as_units_f64(),
            stat.total_cost().as_units_f64(),
            meryn.bursts,
            stat.bursts,
            meryn.transfers
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nReading: the cost gap between static and Meryn is the cloud \
         spend avoided by VC-to-VC exchange; it widens with load until \
         the private estate saturates entirely."
    );
}
