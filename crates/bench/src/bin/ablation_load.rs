//! **Ablation A4** — load sweep: Meryn vs static as arrival pressure
//! grows.
//!
//! Shrinks the paper workload's inter-arrival gap. At low load both
//! policies stay private (no difference); as pressure grows, static
//! bursts for all of VC1's overflow while Meryn first drains VC2's
//! idle VMs — the gap between the two is the value of the exchange.
//! A thin wrapper: the paper scenario with `InterarrivalSecs` × `Policy`
//! sweep axes.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_load
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let gaps = [60u64, 30, 10, 5, 2];
    let mut s = catalog::paper();
    s.name = "ablation-load".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.axes = vec![
        SweepAxis::InterarrivalSecs {
            values: gaps.to_vec(),
        },
        SweepAxis::Policy {
            values: vec!["meryn".into(), "static".into()],
        },
    ];
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section("Ablation A4 — inter-arrival sweep (65-app workload)");
    println!(
        "{:>8} {:>14} {:>14} {:>12} {:>12} {:>10}",
        "gap [s]", "meryn cost", "static cost", "m. bursts", "s. bursts", "transfers"
    );
    for (pair, gap) in report.variants.chunks(2).zip(gaps) {
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>12} {:>12} {:>10}",
            gap,
            pair[0].summary().total_cost_units,
            pair[1].summary().total_cost_units,
            pair[0].summary().bursts,
            pair[1].summary().bursts,
            pair[0].summary().transfers
        );
    }
    println!(
        "\nReading: the cost gap between static and Meryn is the cloud \
         spend avoided by VC-to-VC exchange; it widens with load until \
         the private estate saturates entirely."
    );
}
