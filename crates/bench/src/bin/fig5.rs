//! Regenerates **Figure 5** — "The proportion of the used private and
//! cloud VMs in (a) Meryn and (b) the Static Approach". A thin wrapper:
//! builds the paper scenario with the used-VM series requested and
//! hands it to `run_scenario`.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig5 -- meryn    # Fig 5(a)
//! cargo run --release -p meryn-bench --bin fig5 -- static   # Fig 5(b)
//! cargo run --release -p meryn-bench --bin fig5             # both
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario, section};
use meryn_sim::SimDuration;

fn scenario_for(policies: Vec<String>) -> meryn_bench::Scenario {
    let mut s = catalog::paper();
    s.name = "fig5".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.axes = vec![SweepAxis::Policy { values: policies }];
    s.outputs = OutputSpec {
        series: true,
        ..Default::default()
    };
    s
}

fn main() {
    let policies = match std::env::args().nth(1).as_deref() {
        Some("meryn") => vec!["meryn".to_owned()],
        Some("static") => vec!["static".to_owned()],
        _ => vec!["meryn".to_owned(), "static".to_owned()],
    };
    let report = run_scenario(&scenario_for(policies)).expect("paper workload needs no files");

    for variant in &report.variants {
        let (panel, paper_private, paper_cloud) = match variant.policy.as_str() {
            "meryn" => ("Figure 5(a) — Meryn", 50, 15),
            _ => ("Figure 5(b) — Static Approach", 40, 25),
        };
        section(panel);
        println!(
            "peak private VMs: {:.0} | peak cloud VMs: {:.0} (paper: {} / {})",
            variant.summary().peak_private_vms,
            variant.summary().peak_cloud_vms,
            paper_private,
            paper_cloud,
        );
        let series = variant.series.as_ref().expect("series requested");
        println!("\nCSV series (60 s grid):");
        print!("{}", series.to_csv(SimDuration::from_secs(60)));
        println!("\nShape:");
        print!("{}", series.to_ascii_chart(60, SimDuration::from_secs(120)));
    }
}
