//! Regenerates **Figure 5** — "The proportion of the used private and
//! cloud VMs in (a) Meryn and (b) the Static Approach": the used-VM
//! step series over the paper workload, as CSV plus an ASCII shape.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig5 -- meryn    # Fig 5(a)
//! cargo run --release -p meryn-bench --bin fig5 -- static   # Fig 5(b)
//! cargo run --release -p meryn-bench --bin fig5             # both
//! ```

use meryn_bench::{run_paper, section};
use meryn_core::config::PolicyMode;
use meryn_sim::SimDuration;

fn emit(mode: PolicyMode) {
    let label = match mode {
        PolicyMode::Meryn => "Figure 5(a) — Meryn",
        PolicyMode::Static => "Figure 5(b) — Static Approach",
    };
    let report = run_paper(mode, 0xC0FFEE);
    section(label);
    println!(
        "peak private VMs: {:.0} | peak cloud VMs: {:.0} (paper: {} / {})",
        report.peak_private,
        report.peak_cloud,
        match mode {
            PolicyMode::Meryn => "50",
            PolicyMode::Static => "40",
        },
        match mode {
            PolicyMode::Meryn => "15",
            PolicyMode::Static => "25",
        },
    );
    println!("\nCSV series (60 s grid):");
    print!("{}", report.series.to_csv(SimDuration::from_secs(60)));
    println!("\nShape:");
    print!(
        "{}",
        report
            .series
            .to_ascii_chart(60, SimDuration::from_secs(120))
    );
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("meryn") => emit(PolicyMode::Meryn),
        Some("static") => emit(PolicyMode::Static),
        _ => {
            emit(PolicyMode::Meryn);
            emit(PolicyMode::Static);
        }
    }
}
