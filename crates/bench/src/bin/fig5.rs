//! Regenerates **Figure 5** — "The proportion of the used private and
//! cloud VMs in (a) Meryn and (b) the Static Approach": the used-VM
//! step series over the paper workload, as CSV plus an ASCII shape.
//! When both panels are requested their runs execute in parallel via
//! the shared sweep harness.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig5 -- meryn    # Fig 5(a)
//! cargo run --release -p meryn-bench --bin fig5 -- static   # Fig 5(b)
//! cargo run --release -p meryn-bench --bin fig5             # both
//! ```

use meryn_bench::sweep::{fanout, DEFAULT_BASE_SEED};
use meryn_bench::{run_paper, section};
use meryn_core::config::PolicyMode;
use meryn_core::RunReport;
use meryn_sim::SimDuration;

fn print_panel(mode: PolicyMode, report: &RunReport) {
    let label = match mode {
        PolicyMode::Meryn => "Figure 5(a) — Meryn",
        PolicyMode::Static => "Figure 5(b) — Static Approach",
    };
    section(label);
    println!(
        "peak private VMs: {:.0} | peak cloud VMs: {:.0} (paper: {} / {})",
        report.peak_private,
        report.peak_cloud,
        match mode {
            PolicyMode::Meryn => "50",
            PolicyMode::Static => "40",
        },
        match mode {
            PolicyMode::Meryn => "15",
            PolicyMode::Static => "25",
        },
    );
    println!("\nCSV series (60 s grid):");
    print!("{}", report.series.to_csv(SimDuration::from_secs(60)));
    println!("\nShape:");
    print!(
        "{}",
        report
            .series
            .to_ascii_chart(60, SimDuration::from_secs(120))
    );
}

fn emit(modes: Vec<PolicyMode>) {
    let reports = fanout(modes.clone(), |mode| run_paper(mode, DEFAULT_BASE_SEED));
    for (mode, report) in modes.into_iter().zip(&reports) {
        print_panel(mode, report);
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("meryn") => emit(vec![PolicyMode::Meryn]),
        Some("static") => emit(vec![PolicyMode::Static]),
        _ => emit(vec![PolicyMode::Meryn, PolicyMode::Static]),
    }
}
