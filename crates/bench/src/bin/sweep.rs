//! Replica sweep: runs the paper scenario across many seed-derived
//! replicas in parallel (threaded rayon shim) and reports mean ± std of
//! the headline metrics. A thin wrapper: the paper scenario with the
//! replica count from the command line.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin sweep [replicas] [--json FILE]
//! ```
//!
//! The JSON report is deterministic for a given replica count at any
//! thread count (CI byte-compares the `RAYON_NUM_THREADS=1` and threaded
//! runs), because replica seeds are derived streams and aggregation
//! happens in replica order after an order-preserving collect.

use meryn_bench::spec::OutputSpec;
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let mut replicas: u64 = 30;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("error: --json requires a file path");
                    std::process::exit(2);
                }
            },
            other => match other.parse() {
                Ok(n) => replicas = n,
                Err(_) => {
                    eprintln!("error: unrecognized argument {other:?} (usage: sweep [replicas] [--json FILE])");
                    std::process::exit(2);
                }
            },
        }
    }

    let mut s = catalog::paper();
    s.name = "sweep".into();
    s.description.clear();
    s.sweep.replicas = replicas;
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section(&format!(
        "Seed sweep — {replicas} replicas per policy (paper workload)"
    ));
    println!(
        "{:<8} {:>22} {:>22} {:>12} {:>11}",
        "mode", "completion [s]", "total cost [u]", "peak cloud", "violations"
    );
    for variant in &report.variants {
        let Some(a) = variant.replicas.as_ref() else {
            // `sweep 0`: nothing to aggregate — fall back to the
            // single base-seed run.
            let base = variant.base.as_ref().expect("summary requested");
            println!(
                "{:<8} {:>14.1} (single) {:>14.0} {:>10.0} {:>11}",
                variant.policy,
                base.completion_secs,
                base.total_cost_units,
                base.peak_cloud_vms,
                base.violations,
            );
            continue;
        };
        println!(
            "{:<8} {:>14.1} ± {:<5.1} {:>14.0} ± {:<5.0} {:>6.1} ± {:<3.1} {:>6.2} ± {:<4.2}",
            variant.policy,
            a.completion.mean(),
            a.completion.std_dev(),
            a.cost.mean(),
            a.cost.std_dev(),
            a.peak_cloud.mean(),
            a.peak_cloud.std_dev(),
            a.violations.mean(),
            a.violations.std_dev(),
        );
    }
    println!(
        "\nReading: placement decisions are seed-independent (peak cloud \
         has zero variance); only operation latencies jitter, moving the \
         completion time by a few tens of seconds — the same order as \
         the paper's 2021 s vs 2091 s gap."
    );

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write sweep JSON");
        println!("\nwrote {path}");
    }
}
