//! Replica sweep: runs the paper scenario across many seed-derived
//! replicas in parallel (threaded rayon shim) and reports mean ± std of
//! the headline metrics — the confidence behind every number in
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin sweep [replicas] [--json FILE]
//! ```
//!
//! The JSON report is deterministic for a given replica count at any
//! thread count (CI byte-compares the `RAYON_NUM_THREADS=1` and threaded
//! runs), because replica seeds are derived streams and aggregation
//! happens in replica order after an order-preserving collect.

use meryn_bench::section;
use meryn_bench::sweep::{SweepReport, DEFAULT_BASE_SEED};

fn main() {
    let mut replicas: u64 = 30;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("error: --json requires a file path");
                    std::process::exit(2);
                }
            },
            other => match other.parse() {
                Ok(n) => replicas = n,
                Err(_) => {
                    eprintln!("error: unrecognized argument {other:?} (usage: sweep [replicas] [--json FILE])");
                    std::process::exit(2);
                }
            },
        }
    }

    section(&format!(
        "Seed sweep — {replicas} replicas per policy (paper workload)"
    ));
    let report = SweepReport::collect_both(DEFAULT_BASE_SEED, replicas);
    println!(
        "{:<8} {:>22} {:>22} {:>12} {:>11}",
        "mode", "completion [s]", "total cost [u]", "peak cloud", "violations"
    );
    for entry in &report.modes {
        let a = &entry.stats;
        println!(
            "{:<8} {:>14.1} ± {:<5.1} {:>14.0} ± {:<5.0} {:>6.1} ± {:<3.1} {:>6.2} ± {:<4.2}",
            entry.mode,
            a.completion.mean(),
            a.completion.std_dev(),
            a.cost.mean(),
            a.cost.std_dev(),
            a.peak_cloud.mean(),
            a.peak_cloud.std_dev(),
            a.violations.mean(),
            a.violations.std_dev(),
        );
    }
    println!(
        "\nReading: placement decisions are seed-independent (peak cloud \
         has zero variance); only operation latencies jitter, moving the \
         completion time by a few tens of seconds — the same order as \
         the paper's 2021 s vs 2091 s gap."
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&report).expect("sweep report serializes");
        std::fs::write(&path, json + "\n").expect("write sweep JSON");
        println!("\nwrote {path}");
    }
}
