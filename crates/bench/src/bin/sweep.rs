//! Replica sweep harness: runs the paper scenario across many seeds in
//! parallel (rayon) and reports mean ± std of the headline metrics —
//! the confidence behind every number in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin sweep [replicas]
//! ```

use meryn_bench::{run_paper, section};
use meryn_core::config::PolicyMode;
use meryn_sim::stats::OnlineStats;
use rayon::prelude::*;

struct Agg {
    completion: OnlineStats,
    cost: OnlineStats,
    peak_cloud: OnlineStats,
    violations: OnlineStats,
}

fn aggregate(mode: PolicyMode, replicas: u64) -> Agg {
    let per_seed: Vec<(f64, f64, f64, f64)> = (0..replicas)
        .into_par_iter()
        .map(|seed| {
            let r = run_paper(mode, seed);
            (
                r.completion_secs(),
                r.total_cost().as_units_f64(),
                r.peak_cloud,
                r.violations() as f64,
            )
        })
        .collect();
    let mut agg = Agg {
        completion: OnlineStats::new(),
        cost: OnlineStats::new(),
        peak_cloud: OnlineStats::new(),
        violations: OnlineStats::new(),
    };
    for (c, cost, peak, v) in per_seed {
        agg.completion.push(c);
        agg.cost.push(cost);
        agg.peak_cloud.push(peak);
        agg.violations.push(v);
    }
    agg
}

fn main() {
    let replicas: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    section(&format!(
        "Seed sweep — {replicas} replicas per policy (paper workload)"
    ));
    println!(
        "{:<8} {:>22} {:>22} {:>12} {:>11}",
        "mode", "completion [s]", "total cost [u]", "peak cloud", "violations"
    );
    for mode in [PolicyMode::Meryn, PolicyMode::Static] {
        let a = aggregate(mode, replicas);
        println!(
            "{:<8} {:>14.1} ± {:<5.1} {:>14.0} ± {:<5.0} {:>6.1} ± {:<3.1} {:>6.2} ± {:<4.2}",
            mode.label(),
            a.completion.mean(),
            a.completion.std_dev(),
            a.cost.mean(),
            a.cost.std_dev(),
            a.peak_cloud.mean(),
            a.peak_cloud.std_dev(),
            a.violations.mean(),
            a.violations.std_dev(),
        );
    }
    println!(
        "\nReading: placement decisions are seed-independent (peak cloud \
         has zero variance); only operation latencies jitter, moving the \
         completion time by a few tens of seconds — the same order as \
         the paper's 2021 s vs 2091 s gap."
    );
}
