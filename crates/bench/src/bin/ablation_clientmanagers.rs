//! **Ablation A8** — Client Manager bottleneck (§3.2).
//!
//! "Meryn may have several Client Managers in order to avoid a potential
//! bottleneck, which could happen in peak periods." This sweep hammers
//! the front door with 1 s inter-arrivals and varies the number of
//! Client Manager instances: with one CM, every arrival waits for the
//! previous submission's 7–15 s of handling, processing times balloon
//! past the SLA allowance and deadlines start falling; a handful of CMs
//! restores the uncontended Table 1 latencies.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_clientmanagers
//! ```

use meryn_bench::section;
use meryn_bench::sweep::fanout;
use meryn_core::config::{PlatformConfig, PolicyMode};
use meryn_core::Platform;
use meryn_sim::stats::Summary;
use meryn_sim::SimDuration;
use meryn_workloads::{paper_workload, PaperWorkloadParams};

fn main() {
    section("Ablation A8 — Client Manager instances under a 1 s arrival burst");
    println!(
        "{:>6} {:>22} {:>14} {:>12}",
        "CMs", "processing mean/max [s]", "completion [s]", "violations"
    );
    let workload = paper_workload(PaperWorkloadParams {
        interarrival: SimDuration::from_secs(1),
        ..Default::default()
    });
    let variants: Vec<Option<usize>> = vec![Some(1), Some(2), Some(4), Some(8), None];
    let rows: Vec<String> = fanout(variants, |cms| {
        let mut cfg = PlatformConfig::paper(PolicyMode::Meryn);
        cfg.client_managers = cms;
        let r = Platform::new(cfg).run(&workload);
        let mut proc = Summary::new();
        for a in &r.apps {
            if let Some(p) = a.processing {
                proc.push(p.as_secs_f64());
            }
        }
        format!(
            "{:>6} {:>13.1} /{:>6.0} {:>14.0} {:>12}",
            cms.map_or("∞".to_owned(), |k| k.to_string()),
            proc.mean(),
            proc.max(),
            r.completion_secs(),
            r.violations()
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nReading: a single Client Manager serializes the burst — the \
         65th arrival waits behind ~64 × 11 s of handling, blowing the \
         84 s processing allowance; a few instances absorb the peak, \
         matching §3.2's motivation for replicating the entry point."
    );
}
