//! **Ablation A8** — Client Manager bottleneck (§3.2).
//!
//! "Meryn may have several Client Managers in order to avoid a potential
//! bottleneck, which could happen in peak periods." This sweep hammers
//! the front door with 1 s inter-arrivals and varies the number of
//! Client Manager instances. A thin wrapper: the paper scenario at a
//! 1 s inter-arrival with a `ClientManagers` sweep axis.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_clientmanagers
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis, WorkloadSpec};
use meryn_bench::{catalog, run_scenario, section};
use meryn_sim::SimDuration;
use meryn_workloads::PaperWorkloadParams;

fn main() {
    let mut s = catalog::paper();
    s.name = "ablation-clientmanagers".into();
    s.description.clear();
    s.workload = WorkloadSpec::Paper(PaperWorkloadParams {
        interarrival: SimDuration::from_secs(1),
        ..Default::default()
    });
    s.sweep.replicas = 0;
    s.sweep.axes = vec![SweepAxis::ClientManagers {
        values: vec![Some(1), Some(2), Some(4), Some(8), None],
    }];
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section("Ablation A8 — Client Manager instances under a 1 s arrival burst");
    println!(
        "{:>26} {:>22} {:>14} {:>12}",
        "CMs", "processing mean/max [s]", "completion [s]", "violations"
    );
    for v in &report.variants {
        println!(
            "{:>26} {:>13.1} /{:>6.0} {:>14.0} {:>12}",
            v.label,
            v.summary().processing_mean_s,
            v.summary().processing_max_s,
            v.summary().completion_secs,
            v.summary().violations
        );
    }
    println!(
        "\nReading: a single Client Manager serializes the burst — the \
         65th arrival waits behind ~64 × 11 s of handling, blowing the \
         84 s processing allowance; a few instances absorb the peak, \
         matching §3.2's motivation for replicating the entry point."
    );
}
