//! **Ablation A5** — the MapReduce bid model (the paper's stated future
//! work: "propose a bid computation model and an SLA function for
//! MapReduce applications").
//!
//! A lightly loaded batch VC shares the estate with a MapReduce VC that
//! receives a wave of 4-VM jobs overflowing its partition. Under Meryn
//! the overflow drains the batch VC's idle VMs through zero bids before
//! any lease; the static baseline bursts for every overflow job. A thin
//! wrapper: a custom platform + explicit workload scenario with a
//! `Policy` sweep axis.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_mapreduce
//! ```

use meryn_bench::spec::{OutputSpec, Scenario, SweepAxis, SweepSpec, WorkloadSpec};
use meryn_bench::{run_scenario, section};
use meryn_core::config::{PlatformConfig, VcConfig};
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_workloads::{Submission, VcTarget};

fn workload() -> Vec<Submission> {
    let mut subs = Vec::new();
    // A light stream of 1-VM batch jobs: the batch VC keeps idle VMs.
    for i in 0..6 {
        subs.push(Submission::new(
            SimTime::from_secs(5 + i * 300),
            VcTarget::Index(0),
            JobSpec::Batch {
                work: SimDuration::from_secs(1200),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            },
            UserStrategy::AcceptCheapest,
        ));
    }
    // A wave of 4-VM MapReduce jobs overflowing the MR partition.
    for i in 0..12 {
        subs.push(Submission::new(
            SimTime::from_secs(10 + i * 60),
            VcTarget::Index(1),
            JobSpec::MapReduce {
                map_tasks: 24,
                map_work: SimDuration::from_secs(45),
                reduce_tasks: 4,
                reduce_work: SimDuration::from_secs(90),
                nb_vms: 4,
                slots_per_vm: 2,
            },
            UserStrategy::AcceptCheapest,
        ));
    }
    subs
}

fn main() {
    let mut platform = PlatformConfig::paper("meryn");
    platform.private_capacity = 24;
    platform.vcs = vec![
        VcConfig::batch("batch", 12),
        VcConfig::mapreduce("hadoop", 12),
    ];
    let scenario = Scenario {
        name: "ablation-mapreduce".into(),
        description: String::new(),
        platform,
        workload: WorkloadSpec::Explicit {
            submissions: workload(),
        },
        sweep: SweepSpec {
            replicas: 0,
            axes: vec![SweepAxis::Policy {
                values: vec!["meryn".into(), "static".into()],
            }],
            ..Default::default()
        },
        outputs: OutputSpec::default(),
    };
    let report = run_scenario(&scenario).expect("explicit workload needs no files");
    let (meryn, stat) = (report.variants[0].summary(), report.variants[1].summary());

    section("Ablation A5 — mixed batch + MapReduce workload");
    println!("{:<22} {:>10} {:>10}", "", "Meryn", "Static");
    for (label, a, b) in [
        (
            "total cost [u]",
            meryn.total_cost_units,
            stat.total_cost_units,
        ),
        ("profit [u]", meryn.profit_units, stat.profit_units),
        ("peak cloud VMs", meryn.peak_cloud_vms, stat.peak_cloud_vms),
        ("transfers", meryn.transfers as f64, stat.transfers as f64),
        ("bursts", meryn.bursts as f64, stat.bursts as f64),
        (
            "suspensions",
            meryn.suspensions as f64,
            stat.suspensions as f64,
        ),
        (
            "violations",
            meryn.violations as f64,
            stat.violations as f64,
        ),
    ] {
        println!("{label:<22} {a:>10.0} {b:>10.0}");
    }
    for (i, group) in meryn.groups.iter().enumerate() {
        println!(
            "{:<10} avg exec [s] {:>9.0} {:>10.0} | avg cost [u] {:>8.0} vs {:>8.0}",
            group.vc,
            group.avg_exec_secs,
            stat.groups[i].avg_exec_secs,
            group.avg_cost_units,
            stat.groups[i].avg_cost_units
        );
    }
    println!(
        "\nReading: the MapReduce overflow drains the batch VC's idle VMs \
         (zero bids) before leasing; a bursted MapReduce job also runs \
         its map waves slower (locality penalty), which the wave model \
         prices into its deadline automatically."
    );
}
