//! **Ablation A5** — the MapReduce bid model (the paper's stated future
//! work: "propose a bid computation model and an SLA function for
//! MapReduce applications").
//!
//! A lightly loaded batch VC shares the estate with a MapReduce VC that
//! receives a wave of 4-VM jobs overflowing its partition. Under Meryn
//! the overflow drains the batch VC's idle VMs through zero bids before
//! any lease; the static baseline bursts for every overflow job.
//! MapReduce jobs participate in Algorithms 1/2 exactly like batch jobs
//! — the wave-model performance estimate feeds the same SLA pricing —
//! demonstrating the extensibility claim of §2.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_mapreduce
//! ```

use meryn_bench::section;
use meryn_bench::sweep::fanout;
use meryn_core::config::{PlatformConfig, PolicyMode, VcConfig};
use meryn_core::{Platform, VcId};
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_workloads::{Submission, VcTarget};

fn workload() -> Vec<Submission> {
    let mut subs = Vec::new();
    // A light stream of 1-VM batch jobs: the batch VC keeps idle VMs.
    for i in 0..6 {
        subs.push(Submission::new(
            SimTime::from_secs(5 + i * 300),
            VcTarget::Index(0),
            JobSpec::Batch {
                work: SimDuration::from_secs(1200),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            },
            UserStrategy::AcceptCheapest,
        ));
    }
    // A wave of 4-VM MapReduce jobs overflowing the MR partition.
    for i in 0..12 {
        subs.push(Submission::new(
            SimTime::from_secs(10 + i * 60),
            VcTarget::Index(1),
            JobSpec::MapReduce {
                map_tasks: 24,
                map_work: SimDuration::from_secs(45),
                reduce_tasks: 4,
                reduce_work: SimDuration::from_secs(90),
                nb_vms: 4,
                slots_per_vm: 2,
            },
            UserStrategy::AcceptCheapest,
        ));
    }
    subs.sort_by_key(|s| s.at);
    subs
}

fn main() {
    section("Ablation A5 — mixed batch + MapReduce workload");
    let mk = |mode| {
        let mut cfg = PlatformConfig::paper(mode);
        cfg.private_capacity = 24;
        cfg.vcs = vec![
            VcConfig::batch("batch", 12),
            VcConfig::mapreduce("hadoop", 12),
        ];
        Platform::new(cfg).run(&workload())
    };
    let mut results = fanout(vec![PolicyMode::Meryn, PolicyMode::Static], mk).into_iter();
    let (meryn, stat) = (results.next().unwrap(), results.next().unwrap());

    println!("{:<22} {:>10} {:>10}", "", "Meryn", "Static");
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "total cost [u]",
        meryn.total_cost().as_units_f64(),
        stat.total_cost().as_units_f64()
    );
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "profit [u]",
        meryn.profit().as_units_f64(),
        stat.profit().as_units_f64()
    );
    println!(
        "{:<22} {:>10.0} {:>10.0}",
        "peak cloud VMs", meryn.peak_cloud, stat.peak_cloud
    );
    println!(
        "{:<22} {:>10} {:>10}",
        "transfers", meryn.transfers, stat.transfers
    );
    println!("{:<22} {:>10} {:>10}", "bursts", meryn.bursts, stat.bursts);
    println!(
        "{:<22} {:>10} {:>10}",
        "suspensions", meryn.suspensions, stat.suspensions
    );
    println!(
        "{:<22} {:>10} {:>10}",
        "violations",
        meryn.violations(),
        stat.violations()
    );
    for (name, idx) in [("batch", 0usize), ("hadoop", 1)] {
        let m = meryn.group(Some(VcId(idx)));
        let s = stat.group(Some(VcId(idx)));
        println!(
            "{name:<10} avg exec [s] {:>9.0} {:>10.0} | avg cost [u] {:>8.0} vs {:>8.0}",
            m.avg_exec_secs, s.avg_exec_secs, m.avg_cost_units, s.avg_cost_units
        );
    }
    println!(
        "\nReading: the MapReduce overflow drains the batch VC's idle VMs \
         (zero bids) before leasing; a bursted MapReduce job also runs \
         its map waves slower (locality penalty), which the wave model \
         prices into its deadline automatically."
    );
}
