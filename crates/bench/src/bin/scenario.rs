//! Runs any declarative scenario spec file (`scenarios/*.json`).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/paper.json
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/paper.json --json out.json
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/representative-datacenter.json --bench
//! ```
//!
//! The `--json` report is byte-identical at any thread count (CI
//! byte-compares `RAYON_NUM_THREADS=1` against the threaded run for
//! every checked-in spec). `--quiet` suppresses the human rendering.
//! `--bench` measures engine throughput instead of producing a report:
//! it times every variant's base-seed run and prints events/second
//! (with `--json`, writes the `BENCH_4.json`-style artifact — timings
//! are machine-dependent, so bench JSON is never byte-compared).
//! `--emit-shipped DIR` regenerates the checked-in spec files from the
//! `meryn_scenario::catalog` source of truth instead of running one.

use meryn_bench::{bench_scenario, catalog, run_scenario, Scenario};

fn usage() -> ! {
    eprintln!(
        "usage: scenario <spec.json> [--json FILE] [--quiet] [--bench] \
         | scenario --emit-shipped DIR"
    );
    std::process::exit(2);
}

fn main() {
    let mut spec_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut bench = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => usage(),
            },
            "--emit-shipped" => {
                let Some(dir) = args.next() else { usage() };
                for (stem, scenario) in catalog::shipped() {
                    let path = std::path::Path::new(&dir).join(format!("{stem}.json"));
                    scenario.save(&path).expect("write shipped spec");
                    println!("wrote {}", path.display());
                }
                return;
            }
            "--quiet" => quiet = true,
            "--bench" => bench = true,
            other if spec_path.is_none() && !other.starts_with("--") => {
                spec_path = Some(other.to_owned());
            }
            _ => usage(),
        }
    }
    let Some(spec_path) = spec_path else { usage() };

    let scenario = match Scenario::load(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot load scenario: {e}");
            std::process::exit(2);
        }
    };
    if bench {
        let report = match bench_scenario(&scenario) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: bench failed: {e}");
                std::process::exit(1);
            }
        };
        if !quiet {
            print!("{}", report.render());
        }
        if let Some(path) = json_path {
            std::fs::write(&path, report.to_json()).expect("write bench JSON");
            if !quiet {
                println!("\nwrote {path}");
            }
        }
        return;
    }
    let report = match run_scenario(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scenario failed: {e}");
            std::process::exit(1);
        }
    };
    if !quiet {
        print!("{}", report.render());
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write scenario report JSON");
        if !quiet {
            println!("\nwrote {path}");
        }
    }
}
