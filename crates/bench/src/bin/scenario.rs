//! Runs any declarative scenario spec file (`scenarios/*.json`).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/paper.json
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/paper.json --json out.json
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/representative-datacenter.json --bench
//! cargo run --release -p meryn-bench --bin scenario -- --catalog hyperscale --bench
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/hyperscale-ci.json --single --json full.json
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/hyperscale-ci.json --checkpoint cp.json --checkpoint-at 1200000
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/hyperscale-ci.json --resume cp.json --json resumed.json
//! ```
//!
//! The `--json` report is byte-identical at any thread count (CI
//! byte-compares `RAYON_NUM_THREADS=1` against the threaded run for
//! every checked-in spec). `--quiet` suppresses the human rendering.
//! `--bench` measures engine throughput instead of producing a report:
//! it times every variant's base-seed run and prints events/second and
//! peak RSS (with `--json`, writes the `BENCH_4.json`-style artifact —
//! timings are machine-dependent, so bench JSON is never
//! byte-compared). `--emit-shipped DIR` regenerates the checked-in
//! spec files from the `meryn_scenario::catalog` source of truth
//! instead of running one. `--catalog NAME` loads a catalog entry by
//! name instead of a file — the only way to reach the unshipped full
//! `hyperscale` spec.
//!
//! The checkpoint workflow operates on the scenario's base-seed
//! first-variant run (see `meryn_scenario::single_run_start`):
//! `--single` runs it uninterrupted and writes its `RunReport`;
//! `--checkpoint FILE --checkpoint-at SECS` stops at the first event
//! due after SECS, snapshots the complete engine state to FILE and
//! exits; `--resume FILE` restores and runs to completion. The
//! resumed report is byte-identical to the `--single` one — CI `cmp`s
//! them.

use meryn_bench::{
    bench_scenario, catalog, run_scenario, single_run_resume, single_run_start, Scenario,
};
use meryn_core::EngineCheckpoint;
use meryn_sim::SimTime;

fn usage() -> ! {
    eprintln!(
        "usage: scenario <spec.json | --catalog NAME> [--json FILE] [--quiet] [--bench] \
         [--single | --checkpoint FILE --checkpoint-at SECS | --resume FILE] \
         | scenario --emit-shipped DIR"
    );
    std::process::exit(2);
}

/// [`single_run_start`] with the bin's diagnostic convention: workload
/// materialization and stream-attachment failures are user-input
/// problems, reported on stderr with exit 2 (like an unreadable spec or
/// a corrupt checkpoint) rather than a panic.
fn start_single_run(scenario: &Scenario) -> meryn_core::Platform {
    match single_run_start(scenario) {
        Ok(platform) => platform,
        Err(e) => {
            eprintln!("error: cannot start {}: {e}", scenario.name);
            std::process::exit(2);
        }
    }
}

fn write_run_report(report: &meryn_core::RunReport, json_path: Option<&str>, quiet: bool) {
    if let Some(path) = json_path {
        let mut json = serde_json::to_string_pretty(report).expect("report serializes");
        json.push('\n');
        std::fs::write(path, json).expect("write run report JSON");
        if !quiet {
            println!("wrote {path}");
        }
    }
}

fn main() {
    let mut spec_path: Option<String> = None;
    let mut catalog_name: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut bench = false;
    let mut single = false;
    let mut checkpoint_path: Option<String> = None;
    let mut checkpoint_at: Option<u64> = None;
    let mut resume_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => usage(),
            },
            "--emit-shipped" => {
                let Some(dir) = args.next() else { usage() };
                for (stem, scenario) in catalog::shipped() {
                    let path = std::path::Path::new(&dir).join(format!("{stem}.json"));
                    scenario.save(&path).expect("write shipped spec");
                    println!("wrote {}", path.display());
                }
                return;
            }
            "--catalog" => match args.next() {
                Some(name) => catalog_name = Some(name),
                None => usage(),
            },
            "--quiet" => quiet = true,
            "--bench" => bench = true,
            "--single" => single = true,
            "--checkpoint" => match args.next() {
                Some(path) => checkpoint_path = Some(path),
                None => usage(),
            },
            "--checkpoint-at" => match args.next().and_then(|s| s.parse().ok()) {
                Some(secs) => checkpoint_at = Some(secs),
                None => usage(),
            },
            "--resume" => match args.next() {
                Some(path) => resume_path = Some(path),
                None => usage(),
            },
            other if spec_path.is_none() && !other.starts_with("--") => {
                spec_path = Some(other.to_owned());
            }
            _ => usage(),
        }
    }

    let scenario = match (&spec_path, &catalog_name) {
        (Some(path), None) => match Scenario::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot load scenario: {e}");
                std::process::exit(2);
            }
        },
        (None, Some(name)) => match catalog::all().into_iter().find(|(stem, _)| stem == name) {
            Some((_, s)) => s,
            None => {
                let names: Vec<&str> = catalog::all().iter().map(|(stem, _)| *stem).collect();
                eprintln!("error: unknown catalog scenario {name:?}; known: {names:?}");
                std::process::exit(2);
            }
        },
        _ => usage(),
    };

    // The single-run checkpoint workflow.
    if single {
        let mut platform = start_single_run(&scenario);
        platform.run_to_completion();
        let report = platform.finalize();
        write_run_report(&report, json_path.as_deref(), quiet);
        return;
    }
    if let Some(cp_path) = checkpoint_path {
        let Some(secs) = checkpoint_at else { usage() };
        let mut platform = start_single_run(&scenario);
        let more = platform.run_until(SimTime::from_secs(secs));
        let cp = platform.checkpoint();
        let mut json = serde_json::to_string(&cp).expect("checkpoint serializes");
        json.push('\n');
        if let Err(e) = std::fs::write(&cp_path, json) {
            eprintln!("error: cannot write checkpoint {cp_path}: {e}");
            std::process::exit(2);
        }
        if !quiet {
            println!(
                "checkpointed {} at t={} s ({}): {cp_path}",
                scenario.name,
                cp.taken_at().as_secs(),
                if more { "events remain" } else { "drained" },
            );
        }
        return;
    }
    if let Some(cp_path) = resume_path {
        let text = match std::fs::read_to_string(&cp_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read checkpoint {cp_path}: {e}");
                std::process::exit(2);
            }
        };
        let cp: EngineCheckpoint = match serde_json::from_str(&text) {
            Ok(cp) => cp,
            Err(e) => {
                eprintln!(
                    "error: {cp_path} is not a valid engine checkpoint \
                     (truncated or corrupt?): {e}"
                );
                std::process::exit(2);
            }
        };
        let mut platform = single_run_resume(&scenario, cp);
        platform.run_to_completion();
        let report = platform.finalize();
        write_run_report(&report, json_path.as_deref(), quiet);
        return;
    }

    if bench {
        let report = match bench_scenario(&scenario) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: bench failed: {e}");
                std::process::exit(1);
            }
        };
        if !quiet {
            print!("{}", report.render());
        }
        if let Some(path) = json_path {
            std::fs::write(&path, report.to_json()).expect("write bench JSON");
            if !quiet {
                println!("\nwrote {path}");
            }
        }
        return;
    }
    let report = match run_scenario(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scenario failed: {e}");
            std::process::exit(1);
        }
    };
    if !quiet {
        print!("{}", report.render());
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write scenario report JSON");
        if !quiet {
            println!("\nwrote {path}");
        }
    }
}
