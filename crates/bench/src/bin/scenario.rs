//! Runs any declarative scenario spec file (`scenarios/*.json`).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/paper.json
//! cargo run --release -p meryn-bench --bin scenario -- scenarios/paper.json --json out.json
//! ```
//!
//! The `--json` report is byte-identical at any thread count (CI
//! byte-compares `RAYON_NUM_THREADS=1` against the threaded run for
//! every checked-in spec). `--quiet` suppresses the human rendering.
//! `--emit-shipped DIR` regenerates the checked-in spec files from the
//! `meryn_scenario::catalog` source of truth instead of running one.

use meryn_bench::{catalog, run_scenario, Scenario};

fn usage() -> ! {
    eprintln!("usage: scenario <spec.json> [--json FILE] [--quiet] | scenario --emit-shipped DIR");
    std::process::exit(2);
}

fn main() {
    let mut spec_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => usage(),
            },
            "--emit-shipped" => {
                let Some(dir) = args.next() else { usage() };
                for (stem, scenario) in catalog::shipped() {
                    let path = std::path::Path::new(&dir).join(format!("{stem}.json"));
                    scenario.save(&path).expect("write shipped spec");
                    println!("wrote {}", path.display());
                }
                return;
            }
            "--quiet" => quiet = true,
            other if spec_path.is_none() && !other.starts_with("--") => {
                spec_path = Some(other.to_owned());
            }
            _ => usage(),
        }
    }
    let Some(spec_path) = spec_path else { usage() };

    let scenario = match Scenario::load(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot load scenario: {e}");
            std::process::exit(2);
        }
    };
    let report = match run_scenario(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scenario failed: {e}");
            std::process::exit(1);
        }
    };
    if !quiet {
        print!("{}", report.render());
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write scenario report JSON");
        if !quiet {
            println!("\nwrote {path}");
        }
    }
}
