//! **Ablation A2** — cloud/private price ratio sweep.
//!
//! The paper fixes cloud VM cost at 2× private. This sweep varies the
//! ratio and locates where bursting stops paying off against suspension
//! lending (and where the static approach's over-bursting hurts most).
//! A thin wrapper: the paper scenario with `CloudPriceFactor` × `Policy`
//! sweep axes.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_price_ratio
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let factors = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0];
    let mut s = catalog::paper();
    s.name = "ablation-price-ratio".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.axes = vec![
        SweepAxis::CloudPriceFactor {
            values: factors.to_vec(),
        },
        SweepAxis::Policy {
            values: vec!["meryn".into(), "static".into()],
        },
    ];
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section("Ablation A2 — cloud price factor sweep (paper workload)");
    println!(
        "{:>7} {:>16} {:>16} {:>13} {:>10}",
        "factor", "meryn cost [u]", "static cost [u]", "meryn saves", "suspends"
    );
    // Variants come in (factor-major, policy-minor) order: meryn/static
    // pairs per factor.
    for (pair, factor) in report.variants.chunks(2).zip(factors) {
        let (mc, sc) = (
            pair[0].summary().total_cost_units,
            pair[1].summary().total_cost_units,
        );
        println!(
            "{:>7.1} {:>16.0} {:>16.0} {:>12.1}% {:>10}",
            factor,
            mc,
            sc,
            (sc - mc) / sc * 100.0,
            pair[0].summary().suspensions
        );
    }
    println!(
        "\nReading: the pricier the cloud, the more Meryn's exchange \
         (and eventually suspension) pays off against static bursting."
    );
}
