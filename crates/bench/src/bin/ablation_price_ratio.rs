//! **Ablation A2** — cloud/private price ratio sweep.
//!
//! The paper fixes cloud VM cost at 2× private. This sweep varies the
//! ratio and locates where bursting stops paying off against suspension
//! lending (and where the static approach's over-bursting hurts most).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_price_ratio
//! ```

use meryn_bench::sweep::fanout;
use meryn_bench::{run_paper_with, section};
use meryn_core::config::{PlatformConfig, PolicyMode};

fn main() {
    section("Ablation A2 — cloud price factor sweep (paper workload)");
    println!(
        "{:>7} {:>16} {:>16} {:>13} {:>10}",
        "factor", "meryn cost [u]", "static cost [u]", "meryn saves", "suspends"
    );
    let factors = vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0];
    let rows: Vec<String> = fanout(factors, |f| {
        let meryn =
            run_paper_with(PlatformConfig::paper(PolicyMode::Meryn).with_cloud_price_factor(f));
        let stat =
            run_paper_with(PlatformConfig::paper(PolicyMode::Static).with_cloud_price_factor(f));
        let mc = meryn.total_cost().as_units_f64();
        let sc = stat.total_cost().as_units_f64();
        format!(
            "{:>7.1} {:>16.0} {:>16.0} {:>12.1}% {:>10}",
            f,
            mc,
            sc,
            (sc - mc) / sc * 100.0,
            meryn.suspensions
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nReading: the pricier the cloud, the more Meryn's exchange \
         (and eventually suspension) pays off against static bursting."
    );
}
