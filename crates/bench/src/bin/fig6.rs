//! Regenerates **Figure 6** — "(a) the overall workload completion time
//! and the average execution time of applications, and (b) the overall
//! workload cost and the average cost of applications", Meryn vs the
//! static approach. A thin wrapper: the paper scenario with the
//! first-two-variants comparison requested.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig6
//! ```

use meryn_bench::spec::OutputSpec;
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let mut s = catalog::paper();
    s.name = "fig6".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.outputs = OutputSpec {
        comparison: true,
        ..Default::default()
    };
    let report = run_scenario(&s).expect("paper workload needs no files");
    let (meryn, stat) = (report.variants[0].summary(), report.variants[1].summary());

    section("Figure 6(a) — Completion Time Comparison [s]");
    println!("{:<16} {:>10} {:>10}", "", "Meryn", "Static");
    println!(
        "{:<16} {:>10.0} {:>10.0}   (paper: 2021 vs 2091)",
        "Workload", meryn.completion_secs, stat.completion_secs
    );
    println!(
        "{:<16} {:>10.0} {:>10.0}",
        "All applis", meryn.avg_exec_secs, stat.avg_exec_secs
    );
    for (i, group) in meryn.groups.iter().enumerate() {
        println!(
            "{:<16} {:>10.0} {:>10.0}",
            format!("{} applis", group.vc),
            group.avg_exec_secs,
            stat.groups[i].avg_exec_secs
        );
    }

    section("Figure 6(b) — Cost Comparison [units]");
    println!("{:<16} {:>10} {:>10}", "", "Meryn", "Static");
    println!(
        "{:<16} {:>10.0} {:>10.0}   (×100 in the paper's axis)",
        "Workload (x100)",
        meryn.total_cost_units / 100.0,
        stat.total_cost_units / 100.0
    );
    println!(
        "{:<16} {:>10.0} {:>10.0}",
        "All applis", meryn.avg_cost_units, stat.avg_cost_units
    );
    for (i, group) in meryn.groups.iter().enumerate() {
        println!(
            "{:<16} {:>10.0} {:>10.0}",
            format!("{} applis", group.vc),
            group.avg_cost_units,
            stat.groups[i].avg_cost_units
        );
    }

    let cmp = report.comparison.as_ref().expect("comparison requested");
    section("Headline deltas (Meryn vs Static)");
    println!(
        "completion improvement : {:>6.2}%   (paper:  3.34%)",
        cmp.completion_improvement_pct
    );
    let vc1_m = meryn.groups[0].avg_cost_units;
    let vc1_s = stat.groups[0].avg_cost_units;
    println!(
        "VC1 avg cost improve   : {:>6.2}%   (paper: 16.72%)",
        (vc1_s - vc1_m) / vc1_s * 100.0
    );
    println!(
        "overall cost improve   : {:>6.2}%   (paper: 14.07%)",
        cmp.cost_improvement_pct
    );
    println!(
        "workload cost saved    : {:.0}u   (paper: 41158 units)",
        cmp.cost_saved_units
    );
    println!(
        "cloud VM peak          : {:.0} vs {:.0} (paper: 15 vs 25)",
        cmp.peak_cloud_a, cmp.peak_cloud_b
    );
    println!(
        "violations             : {} vs {} (paper: 0 vs 0)",
        meryn.violations, stat.violations
    );
    println!(
        "revenue (equal ⇒ profit follows cost): {:.0}u vs {:.0}u",
        meryn.revenue_units, stat.revenue_units
    );
}
