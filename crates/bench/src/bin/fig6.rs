//! Regenerates **Figure 6** — "(a) the overall workload completion time
//! and the average execution time of applications, and (b) the overall
//! workload cost and the average cost of applications", Meryn vs the
//! static approach on the paper workload. The two policy runs execute
//! in parallel through the shared sweep harness.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin fig6
//! ```

use meryn_bench::sweep::{fanout, DEFAULT_BASE_SEED};
use meryn_bench::{run_paper, section};
use meryn_core::config::PolicyMode;
use meryn_core::report::compare;
use meryn_core::VcId;

fn main() {
    let mut reports = fanout(vec![PolicyMode::Meryn, PolicyMode::Static], |mode| {
        run_paper(mode, DEFAULT_BASE_SEED)
    })
    .into_iter();
    let (meryn, stat) = (reports.next().unwrap(), reports.next().unwrap());

    section("Figure 6(a) — Completion Time Comparison [s]");
    println!("{:<16} {:>10} {:>10}", "", "Meryn", "Static");
    println!(
        "{:<16} {:>10.0} {:>10.0}   (paper: 2021 vs 2091)",
        "Workload",
        meryn.completion_secs(),
        stat.completion_secs()
    );
    for (label, vc) in [
        ("All applis", None),
        ("VC1 applis", Some(VcId(0))),
        ("VC2 applis", Some(VcId(1))),
    ] {
        println!(
            "{:<16} {:>10.0} {:>10.0}",
            label,
            meryn.group(vc).avg_exec_secs,
            stat.group(vc).avg_exec_secs
        );
    }

    section("Figure 6(b) — Cost Comparison [units]");
    println!("{:<16} {:>10} {:>10}", "", "Meryn", "Static");
    println!(
        "{:<16} {:>10.0} {:>10.0}   (×100 in the paper's axis)",
        "Workload (x100)",
        meryn.total_cost().as_units_f64() / 100.0,
        stat.total_cost().as_units_f64() / 100.0
    );
    for (label, vc) in [
        ("All applis", None),
        ("VC1 applis", Some(VcId(0))),
        ("VC2 applis", Some(VcId(1))),
    ] {
        println!(
            "{:<16} {:>10.0} {:>10.0}",
            label,
            meryn.group(vc).avg_cost_units,
            stat.group(vc).avg_cost_units
        );
    }

    let cmp = compare(&meryn, &stat);
    section("Headline deltas (Meryn vs Static)");
    println!(
        "completion improvement : {:>6.2}%   (paper:  3.34%)",
        cmp.completion_improvement_pct
    );
    let vc1_m = meryn.group(Some(VcId(0))).avg_cost_units;
    let vc1_s = stat.group(Some(VcId(0))).avg_cost_units;
    println!(
        "VC1 avg cost improve   : {:>6.2}%   (paper: 16.72%)",
        (vc1_s - vc1_m) / vc1_s * 100.0
    );
    println!(
        "overall cost improve   : {:>6.2}%   (paper: 14.07%)",
        cmp.cost_improvement_pct
    );
    println!(
        "workload cost saved    : {}   (paper: 41158 units)",
        cmp.cost_saved
    );
    println!(
        "cloud VM peak          : {:.0} vs {:.0} (paper: 15 vs 25)",
        cmp.peak_cloud_a, cmp.peak_cloud_b
    );
    println!(
        "violations             : {} vs {} (paper: 0 vs 0)",
        meryn.violations(),
        stat.violations()
    );
    println!(
        "revenue (equal ⇒ profit follows cost): {} vs {}",
        meryn.total_revenue(),
        stat.total_revenue()
    );
}
