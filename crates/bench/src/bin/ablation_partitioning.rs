//! **Ablation A6** — initial VC partitioning: fair vs trace-based.
//!
//! §3.1: "The initial division of resources among VCs could be fair or
//! based on past traces." The paper's evaluation splits 25/25; a
//! trace-informed split matching the 50:15 demand would be ~38/12.
//! This sweep shows how much the exchange protocol compensates for a
//! bad initial split. A thin wrapper: the paper scenario with
//! `InitialVms` × `Policy` sweep axes.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_partitioning
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let splits: [(u64, u64, &str); 4] = [
        (25, 25, "fair"),
        (38, 12, "trace-based"),
        (10, 40, "inverted"),
        (45, 5, "skewed-to-vc1"),
    ];
    let mut s = catalog::paper();
    s.name = "ablation-partitioning".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.axes = vec![
        SweepAxis::InitialVms {
            values: splits.iter().map(|&(a, b, _)| vec![a, b]).collect(),
        },
        SweepAxis::Policy {
            values: vec!["meryn".into(), "static".into()],
        },
    ];
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section("Ablation A6 — initial partitioning sweep (50/15 demand)");
    println!(
        "{:>9} {:>7} {:>17} {:>10} {:>9} {:>17}",
        "split", "mode", "cost [u]", "transfers", "bursts", "peak cloud VMs"
    );
    for (pair, (a, b, label)) in report.variants.chunks(2).zip(splits) {
        for v in pair {
            println!(
                "{:>4}/{:<4} {:>7} {:>13.0} ({label}) {:>6} {:>9} {:>17.0}",
                a,
                b,
                v.policy,
                v.summary().total_cost_units,
                v.summary().transfers,
                v.summary().bursts,
                v.summary().peak_cloud_vms
            );
        }
    }
    println!(
        "\nReading: under Meryn the initial split barely matters — the \
         zero-bid exchange re-balances VMs toward demand. Static pays \
         the full cloud premium for any mismatch."
    );
}
