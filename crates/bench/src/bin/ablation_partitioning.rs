//! **Ablation A6** — initial VC partitioning: fair vs trace-based.
//!
//! §3.1: "The initial division of resources among VCs could be fair or
//! based on past traces." The paper's evaluation splits 25/25; a
//! trace-informed split matching the 50:15 demand would be ~38/12.
//! This sweep shows how much the exchange protocol compensates for a
//! bad initial split — the closer the split to demand, the fewer
//! transfers are needed, but the final cost barely moves under Meryn
//! (the protocol fixes the partitioning), while static pays dearly.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_partitioning
//! ```

use meryn_bench::sweep::fanout;
use meryn_bench::{run_paper_with, section};
use meryn_core::config::{PlatformConfig, PolicyMode, VcConfig};

fn main() {
    section("Ablation A6 — initial partitioning sweep (50/15 demand)");
    println!(
        "{:>9} {:>7} {:>17} {:>10} {:>9} {:>17}",
        "split", "mode", "cost [u]", "transfers", "bursts", "peak cloud VMs"
    );
    let splits: Vec<(u64, u64, &str)> = vec![
        (25, 25, "fair"),
        (38, 12, "trace-based"),
        (10, 40, "inverted"),
        (45, 5, "skewed-to-vc1"),
    ];
    let rows: Vec<Vec<String>> = fanout(splits, |(a, b, label)| {
        let mut out = Vec::new();
        for mode in [PolicyMode::Meryn, PolicyMode::Static] {
            let mut cfg = PlatformConfig::paper(mode);
            cfg.vcs = vec![VcConfig::batch("VC1", a), VcConfig::batch("VC2", b)];
            let r = run_paper_with(cfg);
            out.push(format!(
                "{:>4}/{:<4} {:>7} {:>13.0} ({label}) {:>6} {:>9} {:>17.0}",
                a,
                b,
                mode.label(),
                r.total_cost().as_units_f64(),
                r.transfers,
                r.bursts,
                r.peak_cloud
            ));
        }
        out
    });
    for pair in rows {
        for row in pair {
            println!("{row}");
        }
    }
    println!(
        "\nReading: under Meryn the initial split barely matters — the \
         zero-bid exchange re-balances VMs toward demand. Static pays \
         the full cloud premium for any mismatch."
    );
}
