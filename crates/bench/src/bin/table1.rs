//! Regenerates **Table 1** — "Processing Time Measurement": the
//! end-to-end submission processing time for each of the five placement
//! cases against the paper's measured ranges. A thin wrapper: the paper
//! scenario with the Table 1 micro-scenario sweep requested (the
//! ordering check re-runs it from an independent seed family).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin table1 [samples-per-case]
//! ```

use meryn_bench::spec::OutputSpec;
use meryn_bench::sweep::DEFAULT_BASE_SEED;
use meryn_bench::{catalog, run_scenario, section, Scenario};

/// Base seed of the secondary, independent sample set behind the
/// ordering check (distinct stream family from the headline sweep).
const ORDERING_BASE_SEED: u64 = DEFAULT_BASE_SEED ^ 0x1000;

fn scenario_for(samples: u64, base_seed: u64) -> Scenario {
    let mut s = catalog::paper();
    s.name = "table1".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.base_seed = base_seed;
    s.sweep.axes.clear();
    s.outputs = OutputSpec {
        summary: false,
        table1_samples: Some(samples),
        ..Default::default()
    };
    s
}

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    let report = run_scenario(&scenario_for(samples, DEFAULT_BASE_SEED)).expect("no files needed");
    section("Table 1 — Processing Time Measurement");
    println!(
        "{:<28} {:>12} {:>30}",
        "Case", "Paper [s]", "Measured (this reproduction)"
    );
    let rows = report.table1.as_ref().expect("table1 requested");
    for row in rows {
        // `paper_range` returns `None` for cases the paper did not
        // measure; print the row anyway (dropping it silently would make
        // the table look complete when it is not) and flag it.
        let paper = match row.paper_range_s {
            Some((lo, hi)) => format!("{lo:.0}~{hi:.0}"),
            None => {
                eprintln!(
                    "warning: no paper-measured range for Table 1 case {:?}; \
                     printing measured values only",
                    row.case
                );
                "—".to_owned()
            }
        };
        println!(
            "{:<28} {:>12} {:>17.0}~{:.0} s (mean {:.1}, n={})",
            row.case, paper, row.min_s, row.max_s, row.mean_s, row.samples
        );
    }

    let ordering =
        run_scenario(&scenario_for(samples.min(30), ORDERING_BASE_SEED)).expect("no files needed");
    println!("\nOrdering check (paper: local < local-susp < vc < vc-susp ≈ cloud):");
    for row in ordering.table1.as_ref().expect("table1 requested") {
        println!("  {:<28} mean {:6.1} s", row.case, row.mean_s);
    }
}
