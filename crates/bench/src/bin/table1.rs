//! Regenerates **Table 1** — "Processing Time Measurement": the
//! end-to-end submission processing time for each of the five placement
//! cases, measured over many seeded micro-scenarios, against the
//! paper's measured ranges.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin table1 [samples-per-case]
//! ```

use meryn_bench::{fmt_summary, measure_case, paper_range, section, TABLE1_CASES};
use meryn_sim::stats::Summary;
use rayon::prelude::*;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    section("Table 1 — Processing Time Measurement");
    println!(
        "{:<28} {:>12} {:>30}",
        "Case", "Paper [s]", "Measured (this reproduction)"
    );

    for case in TABLE1_CASES {
        let secs: Vec<f64> = (0..samples)
            .into_par_iter()
            .map(|seed| measure_case(case, seed))
            .collect();
        let summary = Summary::from_slice(&secs);
        let (lo, hi) = paper_range(case);
        println!(
            "{:<28} {:>7.0}~{:<4.0} {:>30}",
            case,
            lo,
            hi,
            fmt_summary(&summary)
        );
    }

    println!("\nOrdering check (paper: local < local-susp < vc < vc-susp ≈ cloud):");
    let means: Vec<(String, f64)> = TABLE1_CASES
        .iter()
        .map(|&case| {
            let secs: Vec<f64> = (0..samples.min(30))
                .into_par_iter()
                .map(|seed| measure_case(case, seed + 1000))
                .collect();
            (case.to_owned(), Summary::from_slice(&secs).mean())
        })
        .collect();
    for (case, mean) in &means {
        println!("  {case:<28} mean {mean:6.1} s");
    }
}
