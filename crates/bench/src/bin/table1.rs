//! Regenerates **Table 1** — "Processing Time Measurement": the
//! end-to-end submission processing time for each of the five placement
//! cases, measured over many seeded micro-scenarios, against the
//! paper's measured ranges. Samples fan out through the shared sweep
//! harness (seed-derived replica streams, threaded rayon shim), so the
//! numbers are identical at any thread count.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin table1 [samples-per-case]
//! ```

use meryn_bench::sweep::{case_sweep, DEFAULT_BASE_SEED};
use meryn_bench::{fmt_summary, paper_range, section, TABLE1_CASES};

/// Base seed of the secondary, independent sample set behind the
/// ordering check (distinct stream family from the headline sweep).
const ORDERING_BASE_SEED: u64 = DEFAULT_BASE_SEED ^ 0x1000;

fn main() {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);

    section("Table 1 — Processing Time Measurement");
    println!(
        "{:<28} {:>12} {:>30}",
        "Case", "Paper [s]", "Measured (this reproduction)"
    );

    for case in TABLE1_CASES {
        let summary = case_sweep(case, DEFAULT_BASE_SEED, samples);
        let (lo, hi) = paper_range(case);
        println!(
            "{:<28} {:>7.0}~{:<4.0} {:>30}",
            case,
            lo,
            hi,
            fmt_summary(&summary)
        );
    }

    println!("\nOrdering check (paper: local < local-susp < vc < vc-susp ≈ cloud):");
    for case in TABLE1_CASES {
        let mean = case_sweep(case, ORDERING_BASE_SEED, samples.min(30)).mean();
        println!("  {case:<28} mean {mean:6.1} s");
    }
}
