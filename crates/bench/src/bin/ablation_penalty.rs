//! **Ablation A1** — the penalty factor N of eq. 3.
//!
//! The paper: "a high N value is more advantageous for the provider
//! while a low N value is more advantageous for the user". N also feeds
//! Algorithm 2's bids: weak penalties (high N) make suspensions cheap,
//! so the protocol starts lending VMs instead of bursting. This sweep
//! shows the trade: cloud spend falls, but suspended apps risk delay.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_penalty
//! ```

use meryn_bench::sweep::fanout;
use meryn_bench::{run_paper_with, section};
use meryn_core::config::{PlatformConfig, PolicyMode};

fn main() {
    section("Ablation A1 — penalty factor N sweep (paper workload)");
    println!(
        "{:>4} {:>9} {:>7} {:>12} {:>11} {:>11} {:>11}",
        "N", "suspends", "bursts", "peak cloud", "violations", "cost [u]", "profit [u]"
    );
    let ns = vec![1u64, 2, 4, 8, 16];
    let rows: Vec<String> = fanout(ns, |n| {
        let cfg = PlatformConfig::paper(PolicyMode::Meryn).with_penalty_factor(n);
        let r = run_paper_with(cfg);
        format!(
            "{:>4} {:>9} {:>7} {:>12.0} {:>11} {:>11.0} {:>11.0}",
            n,
            r.suspensions,
            r.bursts,
            r.peak_cloud,
            r.violations(),
            r.total_cost().as_units_f64(),
            r.profit().as_units_f64()
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nReading: N=1 reproduces the paper (no suspensions, 15 cloud \
         VMs); larger N shifts Algorithm 1 from bursting to lending."
    );
}
