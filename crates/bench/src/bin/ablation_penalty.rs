//! **Ablation A1** — the penalty factor N of eq. 3.
//!
//! The paper: "a high N value is more advantageous for the provider
//! while a low N value is more advantageous for the user". N also feeds
//! Algorithm 2's bids: weak penalties (high N) make suspensions cheap,
//! so the protocol starts lending VMs instead of bursting. A thin
//! wrapper: the paper scenario with a `PenaltyFactor` sweep axis.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_penalty
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let mut s = catalog::paper();
    s.name = "ablation-penalty".into();
    s.description.clear();
    s.sweep.replicas = 0;
    s.sweep.axes = vec![SweepAxis::PenaltyFactor {
        values: vec![1, 2, 4, 8, 16],
    }];
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section("Ablation A1 — penalty factor N sweep (paper workload)");
    println!(
        "{:>18} {:>9} {:>7} {:>12} {:>11} {:>11} {:>11}",
        "variant", "suspends", "bursts", "peak cloud", "violations", "cost [u]", "profit [u]"
    );
    for v in &report.variants {
        println!(
            "{:>18} {:>9} {:>7} {:>12.0} {:>11} {:>11.0} {:>11.0}",
            v.label,
            v.summary().suspensions,
            v.summary().bursts,
            v.summary().peak_cloud_vms,
            v.summary().violations,
            v.summary().total_cost_units,
            v.summary().profit_units
        );
    }
    println!(
        "\nReading: N=1 reproduces the paper (no suspensions, 15 cloud \
         VMs); larger N shifts Algorithm 1 from bursting to lending."
    );
}
