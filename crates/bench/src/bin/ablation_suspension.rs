//! **Ablation A3** — when does Algorithm 2's suspension path win?
//!
//! Sweeps the minimal-suspension-cost rate (the storage term of
//! Algorithm 2). A near-zero storage rate makes suspension bids
//! aggressive; an exorbitant one disables suspension entirely (the
//! platform behaves as if only options 1, 2 and 5 existed).
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_suspension
//! ```

use meryn_bench::sweep::fanout;
use meryn_bench::{run_paper_with, section};
use meryn_core::config::{PlatformConfig, PolicyMode};
use meryn_sla::VmRate;

fn main() {
    section("Ablation A3 — storage rate (min suspension cost) sweep");
    println!(
        "{:>12} {:>9} {:>7} {:>11} {:>12} {:>12}",
        "storage u/s", "suspends", "bursts", "violations", "cost [u]", "profit [u]"
    );
    // With N=4 suspensions are competitive; the storage rate then
    // decides how competitive.
    let rates_micro: Vec<i64> = vec![0, 100_000, 500_000, 2_000_000, 50_000_000];
    let rows: Vec<String> = fanout(rates_micro, |micro| {
        let mut cfg = PlatformConfig::paper(PolicyMode::Meryn).with_penalty_factor(4);
        cfg.storage_rate = VmRate::from_micro(micro);
        let r = run_paper_with(cfg);
        format!(
            "{:>12.2} {:>9} {:>7} {:>11} {:>12.0} {:>12.0}",
            micro as f64 / 1_000_000.0,
            r.suspensions,
            r.bursts,
            r.violations(),
            r.total_cost().as_units_f64(),
            r.profit().as_units_f64()
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nReading: cheap suspension displaces bursting but risks delay \
         penalties; an exorbitant storage rate reproduces a \
         no-suspension platform."
    );
}
