//! **Ablation A3** — when does Algorithm 2's suspension path win?
//!
//! Sweeps the minimal-suspension-cost rate (the storage term of
//! Algorithm 2). A near-zero storage rate makes suspension bids
//! aggressive; an exorbitant one disables suspension entirely (the
//! platform behaves as if only options 1, 2 and 5 existed). A thin
//! wrapper: the paper scenario at N=4 with a `StorageRateMicro` axis.
//!
//! ```text
//! cargo run --release -p meryn-bench --bin ablation_suspension
//! ```

use meryn_bench::spec::{OutputSpec, SweepAxis};
use meryn_bench::{catalog, run_scenario, section};

fn main() {
    let rates_micro = [0i64, 100_000, 500_000, 2_000_000, 50_000_000];
    let mut s = catalog::paper();
    s.name = "ablation-suspension".into();
    s.description.clear();
    // With N=4 suspensions are competitive; the storage rate then
    // decides how competitive.
    s.platform.penalty_factor = 4;
    s.sweep.replicas = 0;
    s.sweep.axes = vec![SweepAxis::StorageRateMicro {
        values: rates_micro.to_vec(),
    }];
    s.outputs = OutputSpec::default();
    let report = run_scenario(&s).expect("paper workload needs no files");

    section("Ablation A3 — storage rate (min suspension cost) sweep");
    println!(
        "{:>12} {:>9} {:>7} {:>11} {:>12} {:>12}",
        "storage u/s", "suspends", "bursts", "violations", "cost [u]", "profit [u]"
    );
    for (v, micro) in report.variants.iter().zip(rates_micro) {
        println!(
            "{:>12.2} {:>9} {:>7} {:>11} {:>12.0} {:>12.0}",
            micro as f64 / 1_000_000.0,
            v.summary().suspensions,
            v.summary().bursts,
            v.summary().violations,
            v.summary().total_cost_units,
            v.summary().profit_units
        );
    }
    println!(
        "\nReading: cheap suspension displaces bursting but risks delay \
         penalties; an exorbitant storage rate reproduces a \
         no-suspension platform."
    );
}
