//! Criterion micro-benchmark: Algorithm 1 resource selection latency as
//! the number of sibling VCs (and hence bid requests) grows. The paper
//! argues the decentralized protocol avoids "prohibitive communication
//! and computation costs" — this measures the computation side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meryn_core::app::{AppPhase, Application};
use meryn_core::bidding::BidRequest;
use meryn_core::cluster_manager::{VcView, VirtualCluster};
use meryn_core::policy::{self, StandardBidding};
use meryn_core::protocol::select_resources;
use meryn_core::{AppId, Placement, VcId};
use meryn_frameworks::{BatchFramework, FrameworkKind, JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimRng, SimTime};
use meryn_sla::pricing::PricingParams;
use meryn_sla::{AppTimes, Money, SlaContract, SlaTerms, VmRate};
use meryn_vmm::{CloudId, HostTag, ImageId, LatencyModel, Location, PriceModel, PublicCloud, VmId};

fn pricing() -> PricingParams {
    PricingParams::new(VmRate::per_vm_second(4), 1)
}

/// Builds `n_vcs` fully loaded VCs with `apps_per_vc` running apps each.
fn fixture(
    n_vcs: usize,
    apps_per_vc: usize,
) -> (
    Vec<VirtualCluster>,
    meryn_core::app::AppMap,
    Vec<PublicCloud>,
) {
    let mut apps = meryn_core::app::AppMap::default();
    let mut next = 0u64;
    let mut vcs = Vec::with_capacity(n_vcs);
    for v in 0..n_vcs {
        let mut vc = VirtualCluster::new(
            VcId(v),
            format!("VC{v}"),
            FrameworkKind::Batch,
            ImageId(0),
            Box::new(BatchFramework::new()),
            pricing(),
        );
        for i in 0..apps_per_vc {
            let vm = VmId::new(HostTag(v as u16 + 1), i as u64);
            vc.add_slave(vm, 1.0, Location::Private, VmRate::per_vm_second(2))
                .unwrap();
        }
        for _ in 0..apps_per_vc {
            let spec = JobSpec::Batch {
                work: SimDuration::from_secs(1000),
                nb_vms: 1,
                scaling: ScalingLaw::Fixed,
            };
            let job = vc.framework.submit(spec, SimTime::ZERO).unwrap();
            vc.framework.try_dispatch(SimTime::ZERO);
            let id = AppId(next);
            next += 1;
            vc.job_to_app.insert(job, id);
            let mut times = AppTimes::submitted(
                SimTime::ZERO,
                SimDuration::from_secs(1000),
                SimDuration::from_secs(1200),
            );
            times.start(SimTime::ZERO);
            apps.insert(
                id,
                Application {
                    id,
                    vc: VcId(v),
                    spec,
                    contract: SlaContract::sign(
                        SlaTerms::new(SimDuration::from_secs(1200), Money::from_units(4000), 1),
                        SimTime::ZERO,
                        pricing(),
                    ),
                    times,
                    job: Some(job),
                    placement: Placement::Local,
                    phase: AppPhase::Submitted,
                    framework_submitted_at: Some(SimTime::ZERO),
                    cost: Money::ZERO,
                    negotiation_rounds: 1,
                    suspensions: 0,
                    violation_detected: None,
                },
            );
        }
        vcs.push(vc);
    }
    let mut cloud = PublicCloud::new(
        CloudId(0),
        "bench-cloud",
        PriceModel::Static(VmRate::per_vm_second(4)),
        LatencyModel::ZERO,
        LatencyModel::ZERO,
        1.0,
        None,
        SimRng::new(1),
    );
    cloud.stage_image(ImageId(0));
    (vcs, apps, vec![cloud])
}

/// One shard view per VC, every view over the shared app map.
fn views<'a>(vcs: &'a [VirtualCluster], apps: &'a meryn_core::app::AppMap) -> Vec<VcView<'a>> {
    vcs.iter().map(|vc| VcView { vc, apps }).collect()
}

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_select_resources");
    for &n_vcs in &[2usize, 4, 8, 16] {
        let (vcs, apps, clouds) = fixture(n_vcs, 25);
        let shards = views(&vcs, &apps);
        group.bench_with_input(BenchmarkId::new("vcs", n_vcs), &n_vcs, |b, _| {
            let meryn = policy::placement("meryn").expect("registered");
            b.iter(|| {
                select_resources(
                    meryn.as_ref(),
                    &StandardBidding,
                    VcId(0),
                    &shards,
                    &clouds,
                    BidRequest {
                        nb_vms: 1,
                        duration: SimDuration::from_secs(1754),
                    },
                    SimTime::from_secs(100),
                    meryn_core::protocol::ProtocolParams::new(VmRate::from_micro(500_000)),
                )
            })
        });
    }
    group.finish();
}

fn bench_static_vs_meryn(c: &mut Criterion) {
    let (vcs, apps, clouds) = fixture(4, 25);
    let shards = views(&vcs, &apps);
    let mut group = c.benchmark_group("policy_decision_cost");
    for mode in ["meryn", "static"] {
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |b, &mode| {
            let placement = policy::placement(mode).expect("registered");
            b.iter(|| {
                select_resources(
                    placement.as_ref(),
                    &StandardBidding,
                    VcId(0),
                    &shards,
                    &clouds,
                    BidRequest {
                        nb_vms: 1,
                        duration: SimDuration::from_secs(1754),
                    },
                    SimTime::from_secs(100),
                    meryn_core::protocol::ProtocolParams::new(VmRate::from_micro(500_000)),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select, bench_static_vs_meryn);
criterion_main!(benches);
