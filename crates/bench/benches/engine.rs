//! Criterion macro-benchmarks: event-queue throughput and whole paper
//! scenarios end-to-end (events/second of the simulation kernel and the
//! full platform).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meryn_bench::run_paper;
use meryn_sim::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Scatter times deterministically.
                    q.push(SimTime::from_millis(((i * 2654435761) % n) as u64), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_paper_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_scenario_end_to_end");
    group.sample_size(10);
    for mode in ["meryn", "static"] {
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |b, &mode| {
            b.iter(|| run_paper(mode, 42))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_paper_scenario);
criterion_main!(benches);
