//! Criterion macro-benchmarks: event-queue throughput and whole paper
//! scenarios end-to-end (events/second of the simulation kernel and the
//! full platform).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meryn_bench::spec::{WorkloadModifier, WorkloadSpec};
use meryn_bench::{catalog, run_paper};
use meryn_core::Platform;
use meryn_sim::{EventQueue, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Scatter times deterministically.
                    q.push(SimTime::from_millis(((i * 2654435761) % n) as u64), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_paper_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_scenario_end_to_end");
    group.sample_size(10);
    for mode in ["meryn", "static"] {
        group.bench_with_input(BenchmarkId::new("mode", mode), &mode, |b, &mode| {
            b.iter(|| run_paper(mode, 42))
        });
    }
    group.finish();
}

/// Engine throughput on a scaled-down representative-datacenter slice:
/// the `BENCH_4.json` quantity, sized for a bench iteration (10k of the
/// scenario's 100k submissions).
fn bench_engine_throughput(c: &mut Criterion) {
    let mut scenario = catalog::representative_datacenter();
    let WorkloadSpec::Generated { config, .. } = &mut scenario.workload else {
        panic!("representative-datacenter uses a generated workload");
    };
    config.count = 10_000;
    let workload = scenario
        .workload
        .materialize(&WorkloadModifier::default())
        .expect("generated workload needs no files");

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for policy in ["meryn", "static"] {
        let mut cfg = scenario.platform.clone();
        cfg.policy = policy.into();
        group.bench_with_input(
            BenchmarkId::new("representative_10k", policy),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    Platform::new(cfg.clone())
                        .with_series_recording(false)
                        .run(&workload)
                        .events_processed
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_paper_scenario,
    bench_engine_throughput
);
criterion_main!(benches);
