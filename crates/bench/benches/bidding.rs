//! Criterion micro-benchmark: Algorithm 2 bid computation as the number
//! of running applications (suspension candidates) grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meryn_core::app::{AppPhase, Application};
use meryn_core::bidding::{compute_bid, BidRequest};
use meryn_core::cluster_manager::VirtualCluster;
use meryn_core::{AppId, Placement, VcId};
use meryn_frameworks::{BatchFramework, FrameworkKind, JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::pricing::PricingParams;
use meryn_sla::{AppTimes, Money, SlaContract, SlaTerms, VmRate};
use meryn_vmm::{HostTag, ImageId, Location, VmId};

fn fixture(apps_running: usize) -> (VirtualCluster, meryn_core::app::AppMap) {
    let pricing = PricingParams::new(VmRate::per_vm_second(4), 1);
    let mut vc = VirtualCluster::new(
        VcId(0),
        "VC",
        FrameworkKind::Batch,
        ImageId(0),
        Box::new(BatchFramework::new()),
        pricing,
    );
    let mut apps = meryn_core::app::AppMap::default();
    for i in 0..apps_running {
        vc.add_slave(
            VmId::new(HostTag(1), i as u64),
            1.0,
            Location::Private,
            VmRate::per_vm_second(2),
        )
        .unwrap();
    }
    for i in 0..apps_running {
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(1000 + i as u64),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        };
        let job = vc.framework.submit(spec, SimTime::ZERO).unwrap();
        vc.framework.try_dispatch(SimTime::ZERO);
        let id = AppId(i as u64);
        vc.job_to_app.insert(job, id);
        let deadline = SimDuration::from_secs(1200 + 10 * i as u64);
        let mut times = AppTimes::submitted(SimTime::ZERO, SimDuration::from_secs(1000), deadline);
        times.start(SimTime::ZERO);
        apps.insert(
            id,
            Application {
                id,
                vc: VcId(0),
                spec,
                contract: SlaContract::sign(
                    SlaTerms::new(deadline, Money::from_units(4000), 1),
                    SimTime::ZERO,
                    pricing,
                ),
                times,
                job: Some(job),
                placement: Placement::Local,
                phase: AppPhase::Submitted,
                framework_submitted_at: Some(SimTime::ZERO),
                cost: Money::ZERO,
                negotiation_rounds: 1,
                suspensions: 0,
                violation_detected: None,
            },
        );
    }
    (vc, apps)
}

fn bench_bid(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_compute_bid");
    for &n in &[10usize, 50, 200, 1000] {
        let (vc, apps) = fixture(n);
        group.bench_with_input(BenchmarkId::new("running_apps", n), &n, |b, _| {
            b.iter(|| {
                compute_bid(
                    &vc,
                    &apps,
                    BidRequest {
                        nb_vms: 1,
                        duration: SimDuration::from_secs(1754),
                    },
                    SimTime::from_secs(100),
                    VmRate::from_micro(500_000),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bid);
criterion_main!(benches);
