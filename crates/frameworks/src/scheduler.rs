//! The generic dedicated-VM scheduler.
//!
//! Both frameworks in the paper's prototype are configured so that "the
//! batch framework scheduler … attributes a number of VMs to each single
//! application". [`DedicatedScheduler`] captures that discipline once:
//! a FIFO queue (with optional backfill), exclusive slave assignment,
//! epoch-guarded completion prediction, and suspend/resume with
//! remaining-work accounting. The frameworks differ only in their
//! [`ExecModel`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use meryn_sim::DetHashMap;

use meryn_sim::{SimDuration, SimTime};
use meryn_vmm::VmId;
use serde::{Deserialize, Serialize};

use crate::error::FrameworkError;
use crate::job::{Dispatch, JobDone, JobId, JobSpec, JobState};

/// What the execution model needs to know about a slave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaveInfo {
    /// The slave VM.
    pub vm: VmId,
    /// Relative CPU speed (1.0 = reference).
    pub speed: f64,
    /// True when the slave is a leased cloud VM (remote to the data).
    pub remote: bool,
}

/// A framework-specific execution-time model.
pub trait ExecModel {
    /// Job type this model understands, for error messages.
    fn expected_type(&self) -> &'static str;

    /// Predicted execution time of the *whole* job `spec` on `slaves`.
    /// Returns [`FrameworkError::WrongJobType`] for foreign specs.
    fn exec_time(
        &self,
        spec: &JobSpec,
        slaves: &[SlaveInfo],
    ) -> Result<SimDuration, FrameworkError>;
}

/// A job tracked by the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// The job's id.
    pub id: JobId,
    /// What it runs.
    pub spec: JobSpec,
    /// When it was submitted to the framework.
    pub submitted: SimTime,
    /// Lifecycle state.
    pub state: JobState,
    /// Dispatch epoch; bumped on every dispatch and suspension.
    pub epoch: u64,
    /// Fraction of the job's work still to do (1.0 before any stint).
    pub remaining_fraction: f64,
    /// How many times it has been suspended.
    pub suspensions: u32,
}

impl Job {
    /// The dedicated VM count the job requires.
    pub fn nb_vms(&self) -> u64 {
        self.spec.nb_vms()
    }

    /// True while executing.
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running { .. })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Slave {
    speed: f64,
    remote: bool,
    busy: Option<JobId>,
    /// Reserved for a specific in-flight submission: invisible to the
    /// FIFO dispatcher until the pinned submit claims it.
    reserved: bool,
}

/// The scheduler shared by both frameworks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DedicatedScheduler<M> {
    model: M,
    slaves: BTreeMap<VmId, Slave>,
    /// Append-only job table: finished jobs stay queryable for the
    /// report, so this grows with the whole submission history. Keyed
    /// lookups only — dispatch order comes from `queue`/`running`/
    /// `held`, never from iterating this map — so the deterministic
    /// hash map keeps every lookup O(1) instead of paying a tree walk
    /// over the history (see `meryn_sim::hash`).
    jobs: DetHashMap<JobId, Job>,
    queue: VecDeque<JobId>,
    held: BTreeSet<JobId>,
    /// Ids of jobs currently in [`JobState::Running`]. The `jobs` map is
    /// append-only (finished jobs stay queryable), so bid computation —
    /// which scans running jobs on every arrival — must not pay for the
    /// full history; this index keeps that scan proportional to the
    /// VC's actual occupancy. No serde default: a snapshot missing the
    /// index must fail loudly, not deserialize with an empty one.
    running: BTreeSet<JobId>,
    next_job: u64,
    backfill: bool,
}

impl<M: ExecModel> DedicatedScheduler<M> {
    /// Creates a scheduler with strict FIFO dispatch.
    pub fn new(model: M) -> Self {
        DedicatedScheduler {
            model,
            slaves: BTreeMap::new(),
            jobs: DetHashMap::default(),
            queue: VecDeque::new(),
            held: BTreeSet::new(),
            running: BTreeSet::new(),
            next_job: 0,
            backfill: false,
        }
    }

    /// Enables backfill: when the queue head does not fit, later jobs
    /// that do fit may start ahead of it.
    pub fn with_backfill(mut self, backfill: bool) -> Self {
        self.backfill = backfill;
        self
    }

    /// The execution model (for quoting).
    pub fn model(&self) -> &M {
        &self.model
    }

    // ---- slave management -------------------------------------------------

    /// Registers a slave VM with the framework ("configures them and adds
    /// them to the framework resources", §3.4).
    pub fn add_slave(&mut self, vm: VmId, speed: f64, remote: bool) -> Result<(), FrameworkError> {
        if self.slaves.contains_key(&vm) {
            return Err(FrameworkError::DuplicateSlave(vm));
        }
        self.slaves.insert(
            vm,
            Slave {
                speed,
                remote,
                busy: None,
                reserved: false,
            },
        );
        Ok(())
    }

    /// Marks an idle slave as reserved: it will not be handed to queued
    /// jobs until a pinned submit claims it (or it is unreserved).
    pub fn reserve_slave(&mut self, vm: VmId) -> Result<(), FrameworkError> {
        let slave = self
            .slaves
            .get_mut(&vm)
            .ok_or(FrameworkError::UnknownSlave(vm))?;
        if let Some(job) = slave.busy {
            return Err(FrameworkError::SlaveBusy(vm, job));
        }
        slave.reserved = true;
        Ok(())
    }

    /// Releases a reservation.
    pub fn unreserve_slave(&mut self, vm: VmId) -> Result<(), FrameworkError> {
        let slave = self
            .slaves
            .get_mut(&vm)
            .ok_or(FrameworkError::UnknownSlave(vm))?;
        slave.reserved = false;
        Ok(())
    }

    /// Unregisters an idle slave. Busy slaves are refused — suspend the
    /// occupying job first.
    pub fn remove_slave(&mut self, vm: VmId) -> Result<(), FrameworkError> {
        let slave = self
            .slaves
            .get(&vm)
            .ok_or(FrameworkError::UnknownSlave(vm))?;
        if let Some(job) = slave.busy {
            return Err(FrameworkError::SlaveBusy(vm, job));
        }
        self.slaves.remove(&vm);
        Ok(())
    }

    /// Idle, unreserved slaves in deterministic (id) order.
    pub fn idle_slaves(&self) -> Vec<VmId> {
        self.slaves
            .iter()
            .filter(|(_, s)| s.busy.is_none() && !s.reserved)
            .map(|(&vm, _)| vm)
            .collect()
    }

    /// Appends up to `limit` idle, unreserved slaves to `out`, in id
    /// order, without allocating a full listing.
    pub fn idle_slaves_into(&self, limit: usize, out: &mut Vec<VmId>) {
        out.extend(
            self.slaves
                .iter()
                .filter(|(_, s)| s.busy.is_none() && !s.reserved)
                .map(|(&vm, _)| vm)
                .take(limit),
        );
    }

    /// Number of idle, unreserved slaves.
    pub fn idle_count(&self) -> u64 {
        self.slaves
            .values()
            .filter(|s| s.busy.is_none() && !s.reserved)
            .count() as u64
    }

    /// Total registered slaves.
    pub fn slave_count(&self) -> u64 {
        self.slaves.len() as u64
    }

    /// True if `vm` is registered here.
    pub fn has_slave(&self, vm: VmId) -> bool {
        self.slaves.contains_key(&vm)
    }

    // ---- job lifecycle ----------------------------------------------------

    /// Submits a job; it enters the FIFO queue. Call
    /// [`DedicatedScheduler::try_dispatch`] afterwards.
    pub fn submit(&mut self, spec: JobSpec, now: SimTime) -> Result<JobId, FrameworkError> {
        if spec.type_name() != self.model.expected_type() {
            return Err(FrameworkError::WrongJobType {
                expected: self.model.expected_type(),
                got: spec.type_name(),
            });
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                submitted: now,
                state: JobState::Queued,
                epoch: 0,
                remaining_fraction: 1.0,
                suspensions: 0,
            },
        );
        self.queue.push_back(id);
        Ok(id)
    }

    /// Attempts to start queued jobs on idle slaves. Returns one
    /// [`Dispatch`] per started job; the driver must schedule each
    /// completion.
    pub fn try_dispatch(&mut self, now: SimTime) -> Vec<Dispatch> {
        let mut started = Vec::new();
        while let Some(pos) = self.next_dispatchable() {
            let job_id = self.queue.remove(pos).expect("position just found");
            started.push(self.start_job(job_id, now));
        }
        started
    }

    /// Index in the queue of the next job that fits, honouring the
    /// backfill setting.
    fn next_dispatchable(&self) -> Option<usize> {
        let idle = self.idle_count();
        let fits = |id: &JobId| self.jobs[id].nb_vms() <= idle;
        match self.queue.front() {
            None => None,
            Some(head) if fits(head) => Some(0),
            Some(_) if self.backfill => self.queue.iter().position(fits),
            Some(_) => None,
        }
    }

    fn start_job(&mut self, job_id: JobId, now: SimTime) -> Dispatch {
        let job = self.jobs.get(&job_id).expect("queued job exists");
        let need = job.nb_vms() as usize;
        let mut chosen = Vec::with_capacity(need);
        self.idle_slaves_into(need, &mut chosen);
        assert_eq!(chosen.len(), need, "dispatch guard must ensure fit");
        self.start_on(job_id, chosen, now)
    }

    fn start_on(&mut self, job_id: JobId, chosen: Vec<VmId>, now: SimTime) -> Dispatch {
        let job = self.jobs.get(&job_id).expect("job exists");
        debug_assert_eq!(chosen.len() as u64, job.nb_vms());
        let infos: Vec<SlaveInfo> = chosen
            .iter()
            .map(|&vm| {
                let s = &self.slaves[&vm];
                SlaveInfo {
                    vm,
                    speed: s.speed,
                    remote: s.remote,
                }
            })
            .collect();
        let full = self
            .model
            .exec_time(&job.spec, &infos)
            .expect("spec type checked at submit");
        let job = self.jobs.get_mut(&job_id).expect("queued job exists");
        let exec_total = full.scale(job.remaining_fraction);
        let finish_at = now + exec_total;
        job.epoch += 1;
        job.state = JobState::Running {
            vms: chosen.clone(),
            started: now,
            exec_total,
            finish_at,
        };
        for &vm in &chosen {
            let slave = self.slaves.get_mut(&vm).expect("chosen slave exists");
            slave.busy = Some(job_id);
            slave.reserved = false;
        }
        self.running.insert(job_id);
        Dispatch {
            job: job_id,
            vms: chosen,
            exec_total,
            finish_at,
            epoch: job.epoch,
        }
    }

    /// Submits a job and starts it immediately on exactly the given
    /// (idle or reserved) slaves, bypassing the queue — the path for VMs
    /// acquired *for* this application by Algorithm 1 (transferred,
    /// lent or leased VMs are dedicated to the requesting application).
    pub fn submit_pinned(
        &mut self,
        spec: JobSpec,
        vms: &[VmId],
        now: SimTime,
    ) -> Result<(JobId, Dispatch), FrameworkError> {
        if spec.type_name() != self.model.expected_type() {
            return Err(FrameworkError::WrongJobType {
                expected: self.model.expected_type(),
                got: spec.type_name(),
            });
        }
        assert_eq!(
            vms.len() as u64,
            spec.nb_vms(),
            "pinned submission must provide exactly the job's VM count"
        );
        for &vm in vms {
            let slave = self
                .slaves
                .get(&vm)
                .ok_or(FrameworkError::UnknownSlave(vm))?;
            if let Some(job) = slave.busy {
                return Err(FrameworkError::SlaveBusy(vm, job));
            }
        }
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                spec,
                submitted: now,
                state: JobState::Queued,
                epoch: 0,
                remaining_fraction: 1.0,
                suspensions: 0,
            },
        );
        let dispatch = self.start_on(id, vms.to_vec(), now);
        Ok((id, dispatch))
    }

    /// Confirms a completion event. Returns `None` when the epoch is
    /// stale (the job was suspended/re-dispatched after the event was
    /// scheduled) — the driver simply drops such events.
    pub fn on_finished(
        &mut self,
        job_id: JobId,
        epoch: u64,
        now: SimTime,
    ) -> Result<Option<JobDone>, FrameworkError> {
        let job = self
            .jobs
            .get_mut(&job_id)
            .ok_or(FrameworkError::UnknownJob(job_id))?;
        if job.epoch != epoch || !job.is_running() {
            return Ok(None);
        }
        let vms = match &job.state {
            JobState::Running { vms, .. } => vms.clone(),
            _ => unreachable!("checked is_running above"),
        };
        job.state = JobState::Done { at: now };
        job.remaining_fraction = 0.0;
        self.running.remove(&job_id);
        for vm in &vms {
            self.slaves.get_mut(vm).expect("assigned slave exists").busy = None;
        }
        Ok(Some(JobDone { job: job_id, vms }))
    }

    /// Suspends a running job, freeing its slaves and re-queueing it at
    /// the *front* (it has priority when capacity returns, matching the
    /// paper's expectation that lent VMs are "given back before the end
    /// of the requested duration"). Returns the freed slaves.
    pub fn suspend(&mut self, job_id: JobId, now: SimTime) -> Result<Vec<VmId>, FrameworkError> {
        let vms = self.suspend_and_hold(job_id, now)?;
        self.held.remove(&job_id);
        self.queue.push_front(job_id);
        Ok(vms)
    }

    /// Suspends a running job *without* re-queueing it: the job is held
    /// aside until [`DedicatedScheduler::requeue_held`] is called. This
    /// is the lending path of Algorithm 2 — the victim must wait for the
    /// borrowed VMs to be given back rather than immediately race the
    /// borrower for the capacity it just freed.
    pub fn suspend_and_hold(
        &mut self,
        job_id: JobId,
        now: SimTime,
    ) -> Result<Vec<VmId>, FrameworkError> {
        let job = self
            .jobs
            .get_mut(&job_id)
            .ok_or(FrameworkError::UnknownJob(job_id))?;
        let (vms, started, exec_total) = match &job.state {
            JobState::Running {
                vms,
                started,
                exec_total,
                ..
            } => (vms.clone(), *started, *exec_total),
            _ => return Err(FrameworkError::NotRunning(job_id)),
        };
        let elapsed = now.since(started);
        let done_frac = if exec_total.is_zero() {
            1.0
        } else {
            (elapsed.as_millis() as f64 / exec_total.as_millis() as f64).clamp(0.0, 1.0)
        };
        job.remaining_fraction *= 1.0 - done_frac;
        job.epoch += 1;
        job.suspensions += 1;
        job.state = JobState::Suspended { since: now };
        self.running.remove(&job_id);
        for vm in &vms {
            self.slaves.get_mut(vm).expect("assigned slave exists").busy = None;
        }
        self.held.insert(job_id);
        Ok(vms)
    }

    /// Fails a running job's current stint — the fault-plane path for a
    /// crashed slave VM. Unlike [`DedicatedScheduler::suspend`], the
    /// stint's progress is *discarded* (`remaining_fraction` resets to
    /// 1.0: there is no checkpoint on a crashed VM, the job re-executes
    /// from scratch), the epoch bumps so the stale completion event is
    /// dropped, and the job re-enters the queue at the front. Returns
    /// the slaves the stint was occupying — including the crashed one;
    /// the caller decides which of them still exist.
    pub fn fail_running(&mut self, job_id: JobId) -> Result<Vec<VmId>, FrameworkError> {
        let job = self
            .jobs
            .get_mut(&job_id)
            .ok_or(FrameworkError::UnknownJob(job_id))?;
        let vms = match &job.state {
            JobState::Running { vms, .. } => vms.clone(),
            _ => return Err(FrameworkError::NotRunning(job_id)),
        };
        job.remaining_fraction = 1.0;
        job.epoch += 1;
        job.state = JobState::Queued;
        self.running.remove(&job_id);
        for vm in &vms {
            self.slaves.get_mut(vm).expect("assigned slave exists").busy = None;
        }
        self.queue.push_front(job_id);
        Ok(vms)
    }

    /// Withdraws a *queued* (never-started or not-currently-running) job
    /// from the queue — the hook for SLA-enforcement policies that
    /// re-place a waiting job elsewhere (e.g. burst it to a cloud).
    /// Fails for running, held or finished jobs.
    pub fn withdraw(&mut self, job_id: JobId) -> Result<(), FrameworkError> {
        let Some(pos) = self.queue.iter().position(|&j| j == job_id) else {
            return Err(FrameworkError::UnknownJob(job_id));
        };
        self.queue.remove(pos);
        Ok(())
    }

    /// Re-enqueues a previously withdrawn (still `Queued`/`Suspended`)
    /// job at the back of the queue.
    pub fn resubmit_withdrawn(&mut self, job_id: JobId) -> Result<(), FrameworkError> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or(FrameworkError::UnknownJob(job_id))?;
        match job.state {
            JobState::Queued | JobState::Suspended { .. } => {
                assert!(!self.queue.contains(&job_id), "job already queued");
                self.queue.push_back(job_id);
                Ok(())
            }
            _ => Err(FrameworkError::NotRunning(job_id)),
        }
    }

    /// Starts a withdrawn job immediately on exactly the given slaves
    /// (the escalation counterpart of [`DedicatedScheduler::submit_pinned`]
    /// for jobs that already exist).
    pub fn start_withdrawn_pinned(
        &mut self,
        job_id: JobId,
        vms: &[VmId],
        now: SimTime,
    ) -> Result<Dispatch, FrameworkError> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or(FrameworkError::UnknownJob(job_id))?;
        match job.state {
            JobState::Queued | JobState::Suspended { .. } => {}
            _ => return Err(FrameworkError::NotRunning(job_id)),
        }
        assert_eq!(
            vms.len() as u64,
            job.nb_vms(),
            "pinned start must provide exactly the job's VM count"
        );
        assert!(
            !self.queue.contains(&job_id),
            "withdraw the job before pinned start"
        );
        for &vm in vms {
            let slave = self
                .slaves
                .get(&vm)
                .ok_or(FrameworkError::UnknownSlave(vm))?;
            if let Some(other) = slave.busy {
                return Err(FrameworkError::SlaveBusy(vm, other));
            }
        }
        Ok(self.start_on(job_id, vms.to_vec(), now))
    }

    /// Puts a held (suspended-for-lending) job back at the front of the
    /// queue, to be re-dispatched by the next `try_dispatch`.
    pub fn requeue_held(&mut self, job_id: JobId) -> Result<(), FrameworkError> {
        if !self.held.remove(&job_id) {
            return Err(FrameworkError::UnknownJob(job_id));
        }
        self.queue.push_front(job_id);
        Ok(())
    }

    /// Jobs currently held aside awaiting returned VMs.
    pub fn held_jobs(&self) -> Vec<JobId> {
        self.held.iter().copied().collect()
    }

    /// Forgets a finished job, reclaiming its table entry. The `jobs`
    /// map is otherwise append-only so finished jobs stay queryable for
    /// the report; an aggregate-only run folds each completion into
    /// running statistics instead and retires the record to keep the
    /// table O(live). Only `Done` jobs can be retired — anything else is
    /// still owned by the queue/running/held indexes.
    pub fn retire_job(&mut self, job_id: JobId) -> Result<(), FrameworkError> {
        let job = self
            .jobs
            .get(&job_id)
            .ok_or(FrameworkError::UnknownJob(job_id))?;
        if !matches!(job.state, JobState::Done { .. }) {
            return Err(FrameworkError::NotRunning(job_id));
        }
        self.jobs.remove(&job_id);
        Ok(())
    }

    // ---- queries ------------------------------------------------------

    /// Looks a job up.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// Jobs currently running, in id order.
    pub fn running_jobs(&self) -> Vec<&Job> {
        self.running
            .iter()
            .map(|id| {
                let job = &self.jobs[id];
                debug_assert!(job.is_running(), "running index out of sync");
                job
            })
            .collect()
    }

    /// Number of queued (waiting or suspended-requeued) jobs.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }

    /// Predicted execution time of `spec` on `k` hypothetical slaves of
    /// the given uniform speed — the quoting entry point.
    pub fn estimate_exec(
        &self,
        spec: &JobSpec,
        k: u64,
        speed: f64,
        remote: bool,
    ) -> Result<SimDuration, FrameworkError> {
        let fake: Vec<SlaveInfo> = (0..k.max(1))
            .map(|i| SlaveInfo {
                vm: VmId::new(meryn_vmm::HostTag(u16::MAX), i),
                speed,
                remote,
            })
            .collect();
        self.model.exec_time(spec, &fake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{batch_exec_time, ScalingLaw};
    use meryn_vmm::HostTag;

    /// Minimal batch-like model for scheduler unit tests.
    struct TestModel;
    impl ExecModel for TestModel {
        fn expected_type(&self) -> &'static str {
            "batch"
        }
        fn exec_time(
            &self,
            spec: &JobSpec,
            slaves: &[SlaveInfo],
        ) -> Result<SimDuration, FrameworkError> {
            match spec {
                JobSpec::Batch { work, scaling, .. } => {
                    let speeds: Vec<f64> = slaves.iter().map(|s| s.speed).collect();
                    Ok(batch_exec_time(*work, *scaling, &speeds))
                }
                other => Err(FrameworkError::WrongJobType {
                    expected: "batch",
                    got: other.type_name(),
                }),
            }
        }
    }

    fn sched() -> DedicatedScheduler<TestModel> {
        DedicatedScheduler::new(TestModel)
    }

    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    fn batch(work_secs: u64, nb_vms: u64) -> JobSpec {
        JobSpec::Batch {
            work: SimDuration::from_secs(work_secs),
            nb_vms,
            scaling: ScalingLaw::Fixed,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn submit_and_dispatch_single_vm_job() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let j = s.submit(batch(100, 1), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, j);
        assert_eq!(d[0].finish_at, t(100));
        assert_eq!(s.idle_count(), 0);
        assert!(s.job(j).unwrap().is_running());
    }

    #[test]
    fn fifo_order_respected_without_backfill() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.add_slave(vid(1), 1.0, false).unwrap();
        let big = s.submit(batch(100, 3), t(0)).unwrap(); // needs 3, only 2 exist
        let small = s.submit(batch(50, 1), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        assert!(d.is_empty(), "head of queue blocks without backfill");
        assert_eq!(s.queued_count(), 2);
        let _ = (big, small);
    }

    #[test]
    fn backfill_lets_small_jobs_through() {
        let mut s = DedicatedScheduler::new(TestModel).with_backfill(true);
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.add_slave(vid(1), 1.0, false).unwrap();
        s.submit(batch(100, 3), t(0)).unwrap();
        let small = s.submit(batch(50, 1), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, small);
        assert_eq!(s.queued_count(), 1);
    }

    #[test]
    fn completion_frees_slaves_and_dispatches_next() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let a = s.submit(batch(100, 1), t(0)).unwrap();
        let b = s.submit(batch(100, 1), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        assert_eq!(d.len(), 1);
        let done = s.on_finished(a, d[0].epoch, t(100)).unwrap().unwrap();
        assert_eq!(done.vms, vec![vid(0)]);
        let d2 = s.try_dispatch(t(100));
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].job, b);
        assert_eq!(d2[0].finish_at, t(200));
    }

    #[test]
    fn stale_epoch_completion_is_ignored() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let j = s.submit(batch(100, 1), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        // Suspend at t=40: epoch bumps, the old completion must be void.
        let freed = s.suspend(j, t(40)).unwrap();
        assert_eq!(freed, vec![vid(0)]);
        assert_eq!(s.on_finished(j, d[0].epoch, t(100)).unwrap(), None);
        assert!(!s.job(j).unwrap().is_running());
    }

    #[test]
    fn suspension_tracks_remaining_work() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let j = s.submit(batch(100, 1), t(0)).unwrap();
        s.try_dispatch(t(0));
        // 40% done at t=40.
        s.suspend(j, t(40)).unwrap();
        let job = s.job(j).unwrap();
        assert!((job.remaining_fraction - 0.6).abs() < 1e-9);
        assert_eq!(job.suspensions, 1);
        // Resume: re-dispatch runs the remaining 60 s.
        let d = s.try_dispatch(t(200));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].exec_total, SimDuration::from_secs(60));
        assert_eq!(d[0].finish_at, t(260));
    }

    #[test]
    fn suspended_job_requeues_at_front() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let a = s.submit(batch(100, 1), t(0)).unwrap();
        let b = s.submit(batch(100, 1), t(0)).unwrap();
        s.try_dispatch(t(0));
        s.suspend(a, t(50)).unwrap();
        // Queue: [a(front), b]. One slave → a restarts first.
        let d = s.try_dispatch(t(60));
        assert_eq!(d[0].job, a);
        let _ = b;
    }

    #[test]
    fn fail_running_discards_progress_and_requeues_at_front() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let a = s.submit(batch(100, 1), t(0)).unwrap();
        let b = s.submit(batch(100, 1), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        // Crash at t=80: unlike suspend, the 80% progress is lost.
        let freed = s.fail_running(a).unwrap();
        assert_eq!(freed, vec![vid(0)]);
        let job = s.job(a).unwrap();
        assert_eq!(job.remaining_fraction, 1.0);
        assert!(!job.is_running());
        // The stale completion event is void (epoch bumped).
        assert_eq!(s.on_finished(a, d[0].epoch, t(100)).unwrap(), None);
        // The failed job restarts ahead of b, for its full duration.
        let d2 = s.try_dispatch(t(80));
        assert_eq!(d2[0].job, a);
        assert_eq!(d2[0].exec_total, SimDuration::from_secs(100));
        let _ = b;
    }

    #[test]
    fn fail_running_rejects_non_running_jobs() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let queued = s.submit(batch(100, 2), t(0)).unwrap();
        assert_eq!(
            s.fail_running(queued),
            Err(FrameworkError::NotRunning(queued))
        );
        assert_eq!(
            s.fail_running(JobId(99)),
            Err(FrameworkError::UnknownJob(JobId(99)))
        );
    }

    #[test]
    fn remove_busy_slave_refused() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        let j = s.submit(batch(100, 1), t(0)).unwrap();
        s.try_dispatch(t(0));
        assert_eq!(
            s.remove_slave(vid(0)),
            Err(FrameworkError::SlaveBusy(vid(0), j))
        );
        s.suspend(j, t(10)).unwrap();
        assert!(s.remove_slave(vid(0)).is_ok());
        assert_eq!(s.slave_count(), 0);
    }

    #[test]
    fn duplicate_and_unknown_slaves() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        assert_eq!(
            s.add_slave(vid(0), 1.0, false),
            Err(FrameworkError::DuplicateSlave(vid(0)))
        );
        assert_eq!(
            s.remove_slave(vid(9)),
            Err(FrameworkError::UnknownSlave(vid(9)))
        );
        assert!(s.has_slave(vid(0)));
        assert!(!s.has_slave(vid(9)));
    }

    #[test]
    fn wrong_job_type_rejected_at_submit() {
        let mut s = sched();
        let mr = JobSpec::MapReduce {
            map_tasks: 1,
            map_work: SimDuration::from_secs(1),
            reduce_tasks: 0,
            reduce_work: SimDuration::ZERO,
            nb_vms: 1,
            slots_per_vm: 1,
        };
        assert!(matches!(
            s.submit(mr, t(0)),
            Err(FrameworkError::WrongJobType { .. })
        ));
    }

    #[test]
    fn multi_vm_job_takes_lowest_ids() {
        let mut s = sched();
        for i in 0..4 {
            s.add_slave(vid(i), 1.0, false).unwrap();
        }
        s.submit(batch(100, 3), t(0)).unwrap();
        let d = s.try_dispatch(t(0));
        assert_eq!(d[0].vms, vec![vid(0), vid(1), vid(2)]);
        assert_eq!(s.idle_slaves(), vec![vid(3)]);
    }

    #[test]
    fn estimate_exec_for_quoting() {
        let s = sched();
        let est = s
            .estimate_exec(&batch(1550, 1), 1, 1550.0 / 1670.0, true)
            .unwrap();
        assert_eq!(est, SimDuration::from_secs(1670));
    }

    #[test]
    fn running_jobs_listing() {
        let mut s = sched();
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.add_slave(vid(1), 1.0, false).unwrap();
        let a = s.submit(batch(100, 1), t(0)).unwrap();
        let b = s.submit(batch(100, 1), t(0)).unwrap();
        s.try_dispatch(t(0));
        let running: Vec<JobId> = s.running_jobs().iter().map(|j| j.id).collect();
        assert_eq!(running, vec![a, b]);
    }
}

#[cfg(test)]
mod hold_tests {
    use super::*;

    // Re-exported helpers are private to the sibling module; rebuild the
    // tiny fixtures here.
    struct TestModel;
    impl ExecModel for TestModel {
        fn expected_type(&self) -> &'static str {
            "batch"
        }
        fn exec_time(
            &self,
            spec: &JobSpec,
            slaves: &[SlaveInfo],
        ) -> Result<meryn_sim::SimDuration, crate::error::FrameworkError> {
            match spec {
                JobSpec::Batch { work, scaling, .. } => {
                    let speeds: Vec<f64> = slaves.iter().map(|s| s.speed).collect();
                    Ok(crate::perf::batch_exec_time(*work, *scaling, &speeds))
                }
                other => Err(crate::error::FrameworkError::WrongJobType {
                    expected: "batch",
                    got: other.type_name(),
                }),
            }
        }
    }

    fn vid(n: u64) -> meryn_vmm::VmId {
        meryn_vmm::VmId::new(meryn_vmm::HostTag::PRIVATE, n)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn batch(work: u64) -> JobSpec {
        JobSpec::Batch {
            work: meryn_sim::SimDuration::from_secs(work),
            nb_vms: 1,
            scaling: crate::perf::ScalingLaw::Fixed,
        }
    }

    #[test]
    fn held_job_does_not_redispatch_until_requeued() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        let j = s.submit(batch(100), t(0)).unwrap();
        s.try_dispatch(t(0));
        let freed = s.suspend_and_hold(j, t(40)).unwrap();
        assert_eq!(freed, vec![vid(0)]);
        assert_eq!(s.held_jobs(), vec![j]);
        // The slave is idle, but the held job must not restart.
        assert!(s.try_dispatch(t(41)).is_empty());
        s.requeue_held(j).unwrap();
        let d = s.try_dispatch(t(50));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].job, j);
        assert_eq!(d[0].exec_total, meryn_sim::SimDuration::from_secs(60));
        assert!(s.held_jobs().is_empty());
    }

    #[test]
    fn requeue_unheld_job_errors() {
        let mut s = DedicatedScheduler::new(TestModel);
        let err = s.requeue_held(JobId(9)).unwrap_err();
        assert_eq!(err, crate::error::FrameworkError::UnknownJob(JobId(9)));
    }

    #[test]
    fn held_job_jumps_queue_on_requeue() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        let a = s.submit(batch(100), t(0)).unwrap();
        let b = s.submit(batch(100), t(0)).unwrap();
        s.try_dispatch(t(0)); // a running, b queued
        s.suspend_and_hold(a, t(10)).unwrap();
        // b gets the slave in the meantime.
        let d = s.try_dispatch(t(10));
        assert_eq!(d[0].job, b);
        // When a is requeued it goes to the FRONT.
        s.requeue_held(a).unwrap();
        let done = s.on_finished(b, d[0].epoch, d[0].finish_at).unwrap();
        assert!(done.is_some());
        let d2 = s.try_dispatch(d[0].finish_at);
        assert_eq!(d2[0].job, a);
    }
}

#[cfg(test)]
mod withdraw_tests {
    use super::*;
    use crate::perf::ScalingLaw;

    struct TestModel;
    impl ExecModel for TestModel {
        fn expected_type(&self) -> &'static str {
            "batch"
        }
        fn exec_time(
            &self,
            spec: &JobSpec,
            slaves: &[SlaveInfo],
        ) -> Result<SimDuration, FrameworkError> {
            match spec {
                JobSpec::Batch { work, scaling, .. } => {
                    let speeds: Vec<f64> = slaves.iter().map(|s| s.speed).collect();
                    Ok(crate::perf::batch_exec_time(*work, *scaling, &speeds))
                }
                other => Err(FrameworkError::WrongJobType {
                    expected: "batch",
                    got: other.type_name(),
                }),
            }
        }
    }

    fn vid(n: u64) -> VmId {
        VmId::new(meryn_vmm::HostTag::PRIVATE, n)
    }
    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn batch(work: u64) -> JobSpec {
        JobSpec::Batch {
            work: SimDuration::from_secs(work),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        }
    }

    #[test]
    fn withdraw_removes_only_queued_jobs() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        let running = s.submit(batch(100), t(0)).unwrap();
        s.try_dispatch(t(0));
        let queued = s.submit(batch(100), t(0)).unwrap();
        // Running job is not in the queue → withdraw fails.
        assert!(s.withdraw(running).is_err());
        assert!(s.withdraw(queued).is_ok());
        assert_eq!(s.queued_count(), 0);
        // Double withdraw fails.
        assert!(s.withdraw(queued).is_err());
    }

    #[test]
    fn resubmit_withdrawn_requeues_at_back() {
        let mut s = DedicatedScheduler::new(TestModel);
        let a = s.submit(batch(100), t(0)).unwrap();
        let b = s.submit(batch(100), t(0)).unwrap();
        s.withdraw(a).unwrap();
        s.resubmit_withdrawn(a).unwrap();
        // Order is now [b, a].
        s.add_slave(vid(0), 1.0, false).unwrap();
        let d = s.try_dispatch(t(0));
        assert_eq!(d[0].job, b);
    }

    #[test]
    fn start_withdrawn_pinned_runs_on_given_slaves() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.add_slave(vid(1), 0.5, true).unwrap();
        let hog = s.submit(batch(1000), t(0)).unwrap();
        s.try_dispatch(t(0)); // hog takes vid(0)
        let waiting = s.submit(batch(100), t(0)).unwrap();
        s.withdraw(waiting).unwrap();
        let d = s.start_withdrawn_pinned(waiting, &[vid(1)], t(10)).unwrap();
        assert_eq!(d.vms, vec![vid(1)]);
        // Remote half-speed slave: 200 s.
        assert_eq!(d.exec_total, SimDuration::from_secs(200));
        let _ = hog;
    }

    #[test]
    fn start_withdrawn_pinned_rejects_busy_or_running() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        let running = s.submit(batch(1000), t(0)).unwrap();
        s.try_dispatch(t(0));
        // Running job cannot be pin-started again.
        assert!(matches!(
            s.start_withdrawn_pinned(running, &[vid(0)], t(1)),
            Err(FrameworkError::NotRunning(_))
        ));
        // A queued job cannot start on a busy slave.
        let queued = s.submit(batch(10), t(0)).unwrap();
        s.withdraw(queued).unwrap();
        assert!(matches!(
            s.start_withdrawn_pinned(queued, &[vid(0)], t(1)),
            Err(FrameworkError::SlaveBusy(..))
        ));
    }

    #[test]
    fn reserved_slaves_hidden_from_dispatch() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.reserve_slave(vid(0)).unwrap();
        assert_eq!(s.idle_count(), 0);
        s.submit(batch(10), t(0)).unwrap();
        assert!(s.try_dispatch(t(0)).is_empty());
        s.unreserve_slave(vid(0)).unwrap();
        assert_eq!(s.idle_count(), 1);
        assert_eq!(s.try_dispatch(t(0)).len(), 1);
    }

    #[test]
    fn pinned_submit_claims_reserved_slave() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.reserve_slave(vid(0)).unwrap();
        let (job, d) = s.submit_pinned(batch(50), &[vid(0)], t(0)).unwrap();
        assert_eq!(d.vms, vec![vid(0)]);
        let done = s.on_finished(job, d.epoch, d.finish_at).unwrap();
        assert!(done.is_some());
        // Reservation was consumed: the slave is plain-idle again.
        assert_eq!(s.idle_count(), 1);
    }

    #[test]
    fn cannot_reserve_busy_slave() {
        let mut s = DedicatedScheduler::new(TestModel);
        s.add_slave(vid(0), 1.0, false).unwrap();
        s.submit(batch(100), t(0)).unwrap();
        s.try_dispatch(t(0));
        assert!(matches!(
            s.reserve_slave(vid(0)),
            Err(FrameworkError::SlaveBusy(..))
        ));
    }
}
