//! Framework error types.

use std::fmt;

use meryn_vmm::VmId;

use crate::job::JobId;

/// Errors surfaced by the framework schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkError {
    /// The job id is not known to this framework.
    UnknownJob(JobId),
    /// The slave VM is not registered with this framework.
    UnknownSlave(VmId),
    /// The slave VM is already registered.
    DuplicateSlave(VmId),
    /// The slave is currently executing a job and cannot be removed; the
    /// Cluster Manager must suspend the job first (§3.4).
    SlaveBusy(VmId, JobId),
    /// The operation needs the job to be running, and it is not.
    NotRunning(JobId),
    /// The job spec's type does not match this framework
    /// (e.g. a MapReduce description submitted to the batch framework).
    WrongJobType {
        /// What the framework expected.
        expected: &'static str,
        /// What it received.
        got: &'static str,
    },
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::UnknownJob(j) => write!(f, "unknown job {j:?}"),
            FrameworkError::UnknownSlave(v) => write!(f, "unknown slave {v}"),
            FrameworkError::DuplicateSlave(v) => write!(f, "slave {v} already registered"),
            FrameworkError::SlaveBusy(v, j) => {
                write!(f, "slave {v} is busy running job {j:?}")
            }
            FrameworkError::NotRunning(j) => write!(f, "job {j:?} is not running"),
            FrameworkError::WrongJobType { expected, got } => {
                write!(f, "expected a {expected} job, got {got}")
            }
        }
    }
}

impl std::error::Error for FrameworkError {}

#[cfg(test)]
mod tests {
    use super::*;
    use meryn_vmm::HostTag;

    #[test]
    fn display_messages() {
        let vm = VmId::new(HostTag::PRIVATE, 1);
        assert!(FrameworkError::SlaveBusy(vm, JobId(3))
            .to_string()
            .contains("busy"));
        assert_eq!(
            FrameworkError::WrongJobType {
                expected: "batch",
                got: "mapreduce"
            }
            .to_string(),
            "expected a batch job, got mapreduce"
        );
    }
}
