//! Job descriptions and lifecycle state.

use std::fmt;

use meryn_sim::{SimDuration, SimTime};
use meryn_vmm::VmId;
use serde::{Deserialize, Serialize};

use crate::perf::ScalingLaw;

/// Identifier of a job within one framework instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What a submitted application asks the framework to run.
///
/// This is the framework-side translation of the user's submission
/// template (§3.3): the Cluster Manager "translates the application
/// description template to another template compatible with its
/// programming framework".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// A batch job: a volume of sequential-equivalent work spread over a
    /// dedicated VM allocation under a scaling law.
    Batch {
        /// Work volume: execution time on one reference-speed VM.
        work: SimDuration,
        /// Dedicated VMs the scheduler attributes to this job.
        nb_vms: u64,
        /// How execution time scales with the allocation.
        scaling: ScalingLaw,
    },
    /// A MapReduce job: map and reduce task waves over slot-bearing
    /// slaves.
    MapReduce {
        /// Number of map tasks.
        map_tasks: u32,
        /// Work per map task on a reference-speed slot.
        map_work: SimDuration,
        /// Number of reduce tasks.
        reduce_tasks: u32,
        /// Work per reduce task on a reference-speed slot.
        reduce_work: SimDuration,
        /// Dedicated VMs the scheduler attributes to this job.
        nb_vms: u64,
        /// Task slots each VM contributes.
        slots_per_vm: u32,
    },
}

impl JobSpec {
    /// The dedicated VM count this job requires — the quantity
    /// Algorithm 1 negotiates for.
    pub fn nb_vms(&self) -> u64 {
        match *self {
            JobSpec::Batch { nb_vms, .. } | JobSpec::MapReduce { nb_vms, .. } => nb_vms,
        }
    }

    /// Short type name, for error messages and routing.
    pub fn type_name(&self) -> &'static str {
        match self {
            JobSpec::Batch { .. } => "batch",
            JobSpec::MapReduce { .. } => "mapreduce",
        }
    }

    /// Returns the same job with a different VM allocation — used when
    /// SLA negotiation settles on an allocation other than the one the
    /// user first described.
    pub fn with_nb_vms(mut self, k: u64) -> JobSpec {
        assert!(k > 0, "job must be allocated at least one VM");
        match &mut self {
            JobSpec::Batch { nb_vms, .. } | JobSpec::MapReduce { nb_vms, .. } => *nb_vms = k,
        }
        self
    }
}

/// Lifecycle of a job inside a framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the framework queue.
    Queued,
    /// Executing on a set of slave VMs.
    Running {
        /// The dedicated slaves.
        vms: Vec<VmId>,
        /// When this stint started.
        started: SimTime,
        /// Predicted execution time of this stint (remaining work on
        /// these slaves).
        exec_total: SimDuration,
        /// Predicted completion instant.
        finish_at: SimTime,
    },
    /// Suspended with work remaining; back in the queue for re-dispatch.
    Suspended {
        /// When the suspension happened.
        since: SimTime,
    },
    /// Completed.
    Done {
        /// Completion instant.
        at: SimTime,
    },
}

impl JobState {
    /// Short state name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "Queued",
            JobState::Running { .. } => "Running",
            JobState::Suspended { .. } => "Suspended",
            JobState::Done { .. } => "Done",
        }
    }
}

/// A dispatch decision returned by `try_dispatch`: the driver must
/// schedule a completion event at `finish_at` carrying `epoch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dispatch {
    /// The job that started.
    pub job: JobId,
    /// The slaves it occupies.
    pub vms: Vec<VmId>,
    /// Predicted execution duration of this stint.
    pub exec_total: SimDuration,
    /// Predicted completion instant.
    pub finish_at: SimTime,
    /// Dispatch epoch — completions with a stale epoch are ignored
    /// (the job was suspended or re-dispatched in the meantime).
    pub epoch: u64,
}

/// A confirmed completion returned by `on_finished`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobDone {
    /// The finished job.
    pub job: JobId,
    /// The slaves it released.
    pub vms: Vec<VmId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let b = JobSpec::Batch {
            work: SimDuration::from_secs(100),
            nb_vms: 3,
            scaling: ScalingLaw::Linear,
        };
        assert_eq!(b.nb_vms(), 3);
        assert_eq!(b.type_name(), "batch");
        let m = JobSpec::MapReduce {
            map_tasks: 10,
            map_work: SimDuration::from_secs(30),
            reduce_tasks: 2,
            reduce_work: SimDuration::from_secs(60),
            nb_vms: 4,
            slots_per_vm: 2,
        };
        assert_eq!(m.nb_vms(), 4);
        assert_eq!(m.type_name(), "mapreduce");
    }

    #[test]
    fn state_names() {
        assert_eq!(JobState::Queued.name(), "Queued");
        assert_eq!(
            JobState::Done {
                at: SimTime::from_secs(1)
            }
            .name(),
            "Done"
        );
    }
}
