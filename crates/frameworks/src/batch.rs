//! The OGE-like batch framework.
//!
//! The paper's prototype uses Oracle Grid Engine 6.2u7, configured "so
//! that it attributes a number of VMs to each single application". This
//! simulated counterpart is the [`DedicatedScheduler`] with the batch
//! execution model: the scaling law at the allocation size, gated by the
//! slowest slave in the actual set.

use meryn_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::error::FrameworkError;
use crate::job::JobSpec;
use crate::perf::batch_exec_time;
use crate::scheduler::{DedicatedScheduler, ExecModel, SlaveInfo};
use crate::traits::{delegate_framework, FrameworkKind};

/// Execution model for batch jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchModel;

impl ExecModel for BatchModel {
    fn expected_type(&self) -> &'static str {
        "batch"
    }

    fn exec_time(
        &self,
        spec: &JobSpec,
        slaves: &[SlaveInfo],
    ) -> Result<SimDuration, FrameworkError> {
        match spec {
            JobSpec::Batch { work, scaling, .. } => {
                let speeds: Vec<f64> = slaves.iter().map(|s| s.speed).collect();
                Ok(batch_exec_time(*work, *scaling, &speeds))
            }
            other => Err(FrameworkError::WrongJobType {
                expected: "batch",
                got: other.type_name(),
            }),
        }
    }
}

/// An OGE-like batch framework instance (one per batch Virtual Cluster).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchFramework {
    pub(crate) inner: DedicatedScheduler<BatchModel>,
}

impl BatchFramework {
    /// Creates a framework with strict FIFO dispatch.
    pub fn new() -> Self {
        BatchFramework {
            inner: DedicatedScheduler::new(BatchModel),
        }
    }

    /// Creates a framework with backfill enabled.
    pub fn with_backfill() -> Self {
        BatchFramework {
            inner: DedicatedScheduler::new(BatchModel).with_backfill(true),
        }
    }
}

impl Default for BatchFramework {
    fn default() -> Self {
        Self::new()
    }
}

delegate_framework!(BatchFramework, FrameworkKind::Batch, Batch);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::ScalingLaw;
    use crate::traits::Framework;
    use meryn_sim::SimTime;
    use meryn_vmm::{HostTag, VmId};

    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    fn pascal_job() -> JobSpec {
        // The paper's Pascal example: ~1550 s on one private VM.
        JobSpec::Batch {
            work: SimDuration::from_secs(1550),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        }
    }

    #[test]
    fn paper_execution_times_on_private_and_cloud() {
        let mut fw = BatchFramework::new();
        fw.add_slave(vid(0), 1.0, false).unwrap();
        fw.submit(pascal_job(), SimTime::ZERO).unwrap();
        let d = fw.try_dispatch(SimTime::ZERO);
        assert_eq!(d[0].exec_total, SimDuration::from_secs(1550));

        let mut cloud_fw = BatchFramework::new();
        cloud_fw.add_slave(vid(1), 1550.0 / 1670.0, true).unwrap();
        cloud_fw.submit(pascal_job(), SimTime::ZERO).unwrap();
        let d = cloud_fw.try_dispatch(SimTime::ZERO);
        assert_eq!(d[0].exec_total, SimDuration::from_secs(1670));
    }

    #[test]
    fn kind_is_batch() {
        assert_eq!(BatchFramework::new().kind(), FrameworkKind::Batch);
    }

    #[test]
    fn rejects_mapreduce_jobs() {
        let mut fw = BatchFramework::new();
        let mr = JobSpec::MapReduce {
            map_tasks: 1,
            map_work: SimDuration::from_secs(1),
            reduce_tasks: 0,
            reduce_work: SimDuration::ZERO,
            nb_vms: 1,
            slots_per_vm: 1,
        };
        assert!(fw.submit(mr, SimTime::ZERO).is_err());
    }

    #[test]
    fn sequential_queue_drain() {
        // One slave, three jobs of 100 s: completes at 100, 200, 300.
        let mut fw = BatchFramework::new();
        fw.add_slave(vid(0), 1.0, false).unwrap();
        let spec = JobSpec::Batch {
            work: SimDuration::from_secs(100),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        };
        for _ in 0..3 {
            fw.submit(spec, SimTime::ZERO).unwrap();
        }
        let mut now = SimTime::ZERO;
        let mut completions = Vec::new();
        let mut pending = fw.try_dispatch(now);
        while let Some(d) = pending.pop() {
            now = d.finish_at;
            let done = fw.on_finished(d.job, d.epoch, now).unwrap().unwrap();
            completions.push((done.job, now));
            pending.extend(fw.try_dispatch(now));
        }
        assert_eq!(completions.len(), 3);
        assert_eq!(completions[2].1, SimTime::from_secs(300));
    }

    #[test]
    fn default_constructor() {
        let fw = BatchFramework::default();
        assert_eq!(fw.slave_count(), 0);
        assert_eq!(fw.queued_count(), 0);
    }

    #[test]
    fn snapshot_round_trips_mid_run() {
        let mut fw = BatchFramework::new();
        fw.add_slave(vid(0), 1.0, false).unwrap();
        fw.add_slave(vid(1), 1.0, false).unwrap();
        let a = fw.submit(pascal_job(), SimTime::ZERO).unwrap();
        fw.submit(pascal_job(), SimTime::ZERO).unwrap();
        let d = fw.try_dispatch(SimTime::ZERO);
        assert_eq!(d.len(), 2);

        let snap = fw.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let restored: crate::traits::FrameworkSnapshot = serde_json::from_str(&json).unwrap();
        let mut back = restored.into_framework();
        assert_eq!(back.kind(), FrameworkKind::Batch);
        assert_eq!(back.slave_count(), 2);
        assert_eq!(back.running_jobs().len(), 2);

        // The restored master behaves like the original: completing job
        // `a` with its live epoch frees its slave.
        let epoch = d.iter().find(|x| x.job == a).unwrap().epoch;
        let done = back.on_finished(a, epoch, d[0].finish_at).unwrap().unwrap();
        assert_eq!(done.job, a);
        assert_eq!(back.idle_count(), 1);
    }

    #[test]
    fn retire_forgets_only_done_jobs() {
        let mut fw = BatchFramework::new();
        fw.add_slave(vid(0), 1.0, false).unwrap();
        let j = fw.submit(pascal_job(), SimTime::ZERO).unwrap();
        let d = fw.try_dispatch(SimTime::ZERO);
        // Still running: refuse.
        assert!(fw.retire_job(j).is_err());
        fw.on_finished(j, d[0].epoch, d[0].finish_at).unwrap();
        fw.retire_job(j).unwrap();
        assert!(fw.job(j).is_none());
        // Already gone: unknown.
        assert!(fw.retire_job(j).is_err());
    }
}
