//! The Hadoop-like MapReduce framework.
//!
//! The paper's prototype runs Hadoop 0.20.2 as the second application
//! type. The simulated counterpart executes a job as synchronous map
//! waves followed by reduce waves over the slot capacity of its dedicated
//! slaves, with a configurable data-locality penalty on map waves that
//! span leased cloud VMs (HDFS input stays on the private side, so remote
//! mappers stream their splits over the WAN).

use meryn_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::error::FrameworkError;
use crate::job::JobSpec;
use crate::perf::mapreduce_exec_time;
use crate::scheduler::{DedicatedScheduler, ExecModel, SlaveInfo};
use crate::traits::{delegate_framework, FrameworkKind};

/// Execution model for MapReduce jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapReduceModel {
    /// Extra map-phase time, in percent, when *all* slaves are remote;
    /// scaled by the remote fraction otherwise.
    pub locality_penalty_pct: u32,
}

impl Default for MapReduceModel {
    fn default() -> Self {
        MapReduceModel {
            locality_penalty_pct: 30,
        }
    }
}

impl ExecModel for MapReduceModel {
    fn expected_type(&self) -> &'static str {
        "mapreduce"
    }

    fn exec_time(
        &self,
        spec: &JobSpec,
        slaves: &[SlaveInfo],
    ) -> Result<SimDuration, FrameworkError> {
        match *spec {
            JobSpec::MapReduce {
                map_tasks,
                map_work,
                reduce_tasks,
                reduce_work,
                slots_per_vm,
                ..
            } => {
                let speeds: Vec<f64> = slaves.iter().map(|s| s.speed).collect();
                let remote = slaves.iter().filter(|s| s.remote).count();
                Ok(mapreduce_exec_time(
                    map_tasks,
                    map_work,
                    reduce_tasks,
                    reduce_work,
                    &speeds,
                    slots_per_vm,
                    remote,
                    self.locality_penalty_pct,
                ))
            }
            ref other => Err(FrameworkError::WrongJobType {
                expected: "mapreduce",
                got: other.type_name(),
            }),
        }
    }
}

/// A Hadoop-like framework instance (one per MapReduce Virtual Cluster).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MapReduceFramework {
    pub(crate) inner: DedicatedScheduler<MapReduceModel>,
}

impl MapReduceFramework {
    /// Creates a framework with the default 30% full-remote locality
    /// penalty.
    pub fn new() -> Self {
        Self::with_locality_penalty(30)
    }

    /// Creates a framework with an explicit locality penalty.
    pub fn with_locality_penalty(pct: u32) -> Self {
        MapReduceFramework {
            inner: DedicatedScheduler::new(MapReduceModel {
                locality_penalty_pct: pct,
            }),
        }
    }
}

impl Default for MapReduceFramework {
    fn default() -> Self {
        Self::new()
    }
}

delegate_framework!(MapReduceFramework, FrameworkKind::MapReduce, MapReduce);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::Framework;
    use meryn_sim::SimTime;
    use meryn_vmm::{HostTag, VmId};

    fn vid(n: u64) -> VmId {
        VmId::new(HostTag::PRIVATE, n)
    }

    fn wordcount(nb_vms: u64) -> JobSpec {
        JobSpec::MapReduce {
            map_tasks: 16,
            map_work: SimDuration::from_secs(30),
            reduce_tasks: 4,
            reduce_work: SimDuration::from_secs(60),
            nb_vms,
            slots_per_vm: 2,
        }
    }

    #[test]
    fn dispatch_computes_wave_time() {
        let mut fw = MapReduceFramework::new();
        for i in 0..4 {
            fw.add_slave(vid(i), 1.0, false).unwrap();
        }
        fw.submit(wordcount(4), SimTime::ZERO).unwrap();
        let d = fw.try_dispatch(SimTime::ZERO);
        // 8 slots: 16 maps → 2 waves × 30 = 60; 4 reduces → 1 wave × 60.
        assert_eq!(d[0].exec_total, SimDuration::from_secs(120));
    }

    #[test]
    fn remote_slaves_slow_the_map_phase() {
        let mut local = MapReduceFramework::with_locality_penalty(50);
        let mut burst = MapReduceFramework::with_locality_penalty(50);
        for i in 0..2 {
            local.add_slave(vid(i), 1.0, false).unwrap();
            burst.add_slave(vid(10 + i), 1.0, true).unwrap();
        }
        local.submit(wordcount(2), SimTime::ZERO).unwrap();
        burst.submit(wordcount(2), SimTime::ZERO).unwrap();
        let dl = local.try_dispatch(SimTime::ZERO)[0].exec_total;
        let db = burst.try_dispatch(SimTime::ZERO)[0].exec_total;
        assert!(db > dl, "bursted job {db} should be slower than local {dl}");
    }

    #[test]
    fn kind_is_mapreduce() {
        assert_eq!(MapReduceFramework::new().kind(), FrameworkKind::MapReduce);
    }

    #[test]
    fn rejects_batch_jobs() {
        let mut fw = MapReduceFramework::new();
        let batch = JobSpec::Batch {
            work: SimDuration::from_secs(1),
            nb_vms: 1,
            scaling: crate::perf::ScalingLaw::Fixed,
        };
        assert!(fw.submit(batch, SimTime::ZERO).is_err());
    }

    #[test]
    fn estimate_matches_dispatch_on_uniform_slaves() {
        let mut fw = MapReduceFramework::new();
        for i in 0..4 {
            fw.add_slave(vid(i), 1.0, false).unwrap();
        }
        let spec = wordcount(4);
        let est = fw.estimate_exec(&spec, 4, 1.0, false).unwrap();
        fw.submit(spec, SimTime::ZERO).unwrap();
        let d = fw.try_dispatch(SimTime::ZERO);
        assert_eq!(est, d[0].exec_total);
    }

    #[test]
    fn suspension_and_resume_preserve_progress() {
        let mut fw = MapReduceFramework::new();
        for i in 0..2 {
            fw.add_slave(vid(i), 1.0, false).unwrap();
        }
        let spec = wordcount(2); // 4 slots: 4 map waves ×30 + 1 reduce wave ×60 = 180 s
        let j = fw.submit(spec, SimTime::ZERO).unwrap();
        fw.try_dispatch(SimTime::ZERO);
        fw.suspend(j, SimTime::from_secs(90)).unwrap(); // half done
        let d = fw.try_dispatch(SimTime::from_secs(200));
        assert_eq!(d[0].exec_total, SimDuration::from_secs(90));
    }
}
