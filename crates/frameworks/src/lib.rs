//! # meryn-frameworks — simulated programming frameworks
//!
//! Meryn assigns each Virtual Cluster to one programming framework
//! (the prototype: Oracle Grid Engine for batch jobs, Hadoop for
//! MapReduce), and deliberately leaves "most of the resource management
//! decisions" to those frameworks. This crate provides the two framework
//! substrates as deterministic schedulers over slave VMs:
//!
//! * [`batch`] — an OGE-like batch scheduler: FIFO queue (optional
//!   backfill), a fixed number of dedicated VMs per application
//!   (the paper configures OGE exactly this way), suspend/resume;
//! * [`mapreduce`] — a Hadoop-like framework: map/reduce task waves over
//!   slot-bearing slaves, with a locality penalty when waves span cloud
//!   VMs;
//! * [`scheduler`] — the generic dedicated-VM scheduler both are built
//!   on, exposing the begin/complete style used across the workspace:
//!   `try_dispatch` returns predicted completions for the driver to
//!   schedule, and stale completions are rejected by per-job epochs;
//! * [`perf`] — execution-time models (linear, Amdahl) that also back
//!   SLA quoting;
//! * [`traits`] — the [`traits::Framework`] object-safe
//!   facade the PaaS layer talks to, keeping it framework-agnostic the
//!   way the paper's generic Cluster Manager part is.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod error;
pub mod job;
pub mod mapreduce;
pub mod perf;
pub mod scheduler;
pub mod traits;

pub use batch::BatchFramework;
pub use error::FrameworkError;
pub use job::{Dispatch, JobId, JobSpec, JobState};
pub use mapreduce::MapReduceFramework;
pub use perf::ScalingLaw;
pub use traits::{Framework, FrameworkKind, FrameworkSnapshot};
