//! Execution-time models.
//!
//! The paper assumes "the batch Cluster Manager may deduce the application
//! execution time based on its dedicated number of VMs and vice versa" —
//! i.e. each framework owns a performance model. These models back both
//! dispatch-time completion prediction and SLA quoting.

use meryn_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// How a batch job's execution time scales with its VM allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingLaw {
    /// `exec = work / k` — embarrassingly parallel.
    Linear,
    /// Amdahl's law with the given serial percentage:
    /// `exec = work × (serial + (1 − serial)/k)`.
    Amdahl {
        /// Serial fraction in percent (0–100).
        serial_pct: u32,
    },
    /// `exec = work` regardless of allocation — a rigid job that cannot
    /// use more than its natural parallelism (the paper's evaluation jobs
    /// run on exactly one VM, where every law degenerates to this).
    Fixed,
}

impl ScalingLaw {
    /// Execution time for `work` (reference-VM seconds) on `k` VMs of
    /// reference speed.
    pub fn exec_time(&self, work: SimDuration, k: u64) -> SimDuration {
        let k = k.max(1);
        match *self {
            ScalingLaw::Linear => work / k,
            ScalingLaw::Amdahl { serial_pct } => {
                let s = f64::from(serial_pct.min(100)) / 100.0;
                work.scale(s + (1.0 - s) / k as f64)
            }
            ScalingLaw::Fixed => work,
        }
    }
}

/// Effective speed of a slave set for a tightly coupled job: the slowest
/// member gates progress (BSP semantics). With the paper's single-VM
/// jobs this is just the VM's own speed.
pub fn effective_speed(speeds: &[f64]) -> f64 {
    speeds.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Execution time of a batch stint: the scaling law at the allocation
/// size, slowed by the gating member of the actual slave set.
pub fn batch_exec_time(work: SimDuration, scaling: ScalingLaw, speeds: &[f64]) -> SimDuration {
    assert!(!speeds.is_empty(), "batch job dispatched on zero VMs");
    let base = scaling.exec_time(work, speeds.len() as u64);
    base.scale(1.0 / effective_speed(speeds))
}

/// Execution time of a MapReduce job on a slave set: map waves then
/// reduce waves over the total slot count, gated by the slowest slave,
/// with a locality penalty on the map phase when the set spans remote
/// (cloud) slaves that must pull input over the WAN.
#[allow(clippy::too_many_arguments)]
pub fn mapreduce_exec_time(
    map_tasks: u32,
    map_work: SimDuration,
    reduce_tasks: u32,
    reduce_work: SimDuration,
    speeds: &[f64],
    slots_per_vm: u32,
    remote_vms: usize,
    locality_penalty_pct: u32,
) -> SimDuration {
    assert!(!speeds.is_empty(), "MapReduce job dispatched on zero VMs");
    assert!(slots_per_vm > 0, "slots_per_vm must be positive");
    let slots = speeds.len() as u64 * u64::from(slots_per_vm);
    let map_waves = u64::from(map_tasks).div_ceil(slots);
    let reduce_waves = u64::from(reduce_tasks).div_ceil(slots);
    let speed = effective_speed(speeds);
    let mut map_phase = (map_work * map_waves).scale(1.0 / speed);
    if remote_vms > 0 {
        // Remote slaves lose data locality: scale the map phase by the
        // fraction of remote VMs times the locality slowdown.
        let remote_frac = remote_vms as f64 / speeds.len() as f64;
        let slowdown = 1.0 + remote_frac * f64::from(locality_penalty_pct) / 100.0;
        map_phase = map_phase.scale(slowdown);
    }
    let reduce_phase = (reduce_work * reduce_waves).scale(1.0 / speed);
    map_phase + reduce_phase
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn linear_scaling_divides() {
        assert_eq!(ScalingLaw::Linear.exec_time(d(1200), 4), d(300));
        assert_eq!(ScalingLaw::Linear.exec_time(d(1200), 1), d(1200));
    }

    #[test]
    fn amdahl_flattens() {
        let law = ScalingLaw::Amdahl { serial_pct: 50 };
        // 50% serial: 2 VMs → 0.5 + 0.25 = 0.75×.
        assert_eq!(law.exec_time(d(1000), 2), d(750));
        // Infinite VMs would floor at 500; 100 VMs is already close.
        assert_eq!(law.exec_time(d(1000), 100), d(505));
    }

    #[test]
    fn fixed_ignores_allocation() {
        assert_eq!(ScalingLaw::Fixed.exec_time(d(1550), 10), d(1550));
    }

    #[test]
    fn zero_vms_clamps_to_one() {
        assert_eq!(ScalingLaw::Linear.exec_time(d(100), 0), d(100));
    }

    #[test]
    fn effective_speed_is_min() {
        assert_eq!(effective_speed(&[1.0, 0.928, 1.2]), 0.928);
    }

    #[test]
    fn batch_exec_reproduces_paper_cloud_slowdown() {
        // Private: 1550 s at speed 1.0. Cloud: same work at speed
        // 1550/1670 ≈ 0.9281 → 1670 s.
        let work = d(1550);
        assert_eq!(batch_exec_time(work, ScalingLaw::Fixed, &[1.0]), d(1550));
        let cloud = batch_exec_time(work, ScalingLaw::Fixed, &[1550.0 / 1670.0]);
        assert_eq!(cloud, d(1670));
    }

    #[test]
    fn batch_exec_gated_by_slowest() {
        let work = d(1000);
        let mixed = batch_exec_time(work, ScalingLaw::Linear, &[1.0, 0.5]);
        // 2 VMs linear → 500 s of reference work, gated at 0.5 → 1000 s.
        assert_eq!(mixed, d(1000));
    }

    #[test]
    #[should_panic(expected = "zero VMs")]
    fn batch_exec_empty_panics() {
        batch_exec_time(d(1), ScalingLaw::Linear, &[]);
    }

    #[test]
    fn mapreduce_waves() {
        // 10 maps on 2 VMs × 2 slots = 4 slots → 3 waves × 30 s = 90 s;
        // 2 reduces → 1 wave × 60 s. Total 150 s.
        let t = mapreduce_exec_time(10, d(30), 2, d(60), &[1.0, 1.0], 2, 0, 50);
        assert_eq!(t, d(150));
    }

    #[test]
    fn mapreduce_locality_penalty_applies_to_maps_only() {
        // Same job, both VMs remote, 50% penalty: maps 90 → 135 s.
        let t = mapreduce_exec_time(10, d(30), 2, d(60), &[1.0, 1.0], 2, 2, 50);
        assert_eq!(t, d(195));
        // Half remote: penalty 25% → maps 112.5 s.
        let t2 = mapreduce_exec_time(10, d(30), 2, d(60), &[1.0, 1.0], 2, 1, 50);
        assert_eq!(t2, SimDuration::from_millis(172_500));
    }

    #[test]
    fn mapreduce_more_vms_fewer_waves() {
        let small = mapreduce_exec_time(16, d(30), 0, d(0), &[1.0; 2], 2, 0, 0);
        let large = mapreduce_exec_time(16, d(30), 0, d(0), &[1.0; 8], 2, 0, 0);
        assert!(large < small);
        assert_eq!(large, d(30)); // one wave
        assert_eq!(small, d(120)); // four waves
    }
}
