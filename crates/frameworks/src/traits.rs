//! The framework facade the PaaS layer programs against.
//!
//! The paper's Cluster Manager has "a generic part … the same for all
//! Cluster Managers" — that generic part only ever touches a framework
//! through the operations below, which is what keeps Meryn extensible:
//! integrating a new application type means implementing [`Framework`]
//! (plus a bid model), not modifying the platform.

use meryn_sim::{SimDuration, SimTime};
use meryn_vmm::VmId;
use serde::{Deserialize, Serialize};

use crate::error::FrameworkError;
use crate::job::{Dispatch, JobDone, JobId, JobSpec};
use crate::scheduler::Job;

/// The application types the prototype supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FrameworkKind {
    /// Batch jobs (OGE-like).
    Batch,
    /// MapReduce jobs (Hadoop-like).
    MapReduce,
}

impl FrameworkKind {
    /// The job-spec type name this framework accepts.
    pub fn type_name(self) -> &'static str {
        match self {
            FrameworkKind::Batch => "batch",
            FrameworkKind::MapReduce => "mapreduce",
        }
    }
}

/// A serializable owned snapshot of a framework master.
///
/// `Box<dyn Framework>` cannot be serialized directly, so the engine
/// checkpoint stores this enum — one variant per concrete framework —
/// and rebuilds the trait object on restore via
/// [`FrameworkSnapshot::into_framework`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FrameworkSnapshot {
    /// A batch (OGE-like) framework master.
    Batch(crate::batch::BatchFramework),
    /// A MapReduce (Hadoop-like) framework master.
    MapReduce(crate::mapreduce::MapReduceFramework),
}

impl FrameworkSnapshot {
    /// Rebuilds the boxed framework this snapshot was taken from.
    pub fn into_framework(self) -> Box<dyn Framework> {
        match self {
            FrameworkSnapshot::Batch(fw) => Box::new(fw),
            FrameworkSnapshot::MapReduce(fw) => Box::new(fw),
        }
    }
}

/// Object-safe facade over a programming framework's master daemon.
///
/// `Send` is part of the contract: a framework master is owned by one
/// VC shard, and the sharded executor moves `&mut` shard borrows across
/// worker threads when it fans same-instant event batches out — so a
/// framework may hold no thread-affine state.
pub trait Framework: Send {
    /// Which application type this framework hosts.
    fn kind(&self) -> FrameworkKind;

    /// Registers a booted slave VM with the framework.
    fn add_slave(&mut self, vm: VmId, speed: f64, remote: bool) -> Result<(), FrameworkError>;

    /// Unregisters an idle slave.
    fn remove_slave(&mut self, vm: VmId) -> Result<(), FrameworkError>;

    /// Idle slaves, deterministic order.
    fn idle_slaves(&self) -> Vec<VmId>;

    /// Appends up to `limit` idle slaves to `out`, in the same
    /// deterministic order as [`Framework::idle_slaves`]. Lets the
    /// platform's acquisition hot path reuse a scratch buffer instead of
    /// collecting a fresh `Vec` per decision.
    fn idle_slaves_into(&self, limit: usize, out: &mut Vec<VmId>) {
        out.extend(self.idle_slaves().into_iter().take(limit));
    }

    /// Number of idle slaves.
    fn idle_count(&self) -> u64;

    /// Total registered slaves.
    fn slave_count(&self) -> u64;

    /// True if the VM is one of this framework's slaves.
    fn has_slave(&self, vm: VmId) -> bool;

    /// Submits a translated job description.
    fn submit(&mut self, spec: JobSpec, now: SimTime) -> Result<JobId, FrameworkError>;

    /// Submits and immediately starts a job on exactly the given slaves
    /// (which were acquired for it); bypasses the queue.
    fn submit_pinned(
        &mut self,
        spec: JobSpec,
        vms: &[VmId],
        now: SimTime,
    ) -> Result<(JobId, Dispatch), FrameworkError>;

    /// Reserves an idle slave for an in-flight pinned submission.
    fn reserve_slave(&mut self, vm: VmId) -> Result<(), FrameworkError>;

    /// Releases a slave reservation.
    fn unreserve_slave(&mut self, vm: VmId) -> Result<(), FrameworkError>;

    /// Starts whatever fits; returns predicted completions to schedule.
    fn try_dispatch(&mut self, now: SimTime) -> Vec<Dispatch>;

    /// Confirms (or drops, when stale) a completion event.
    fn on_finished(
        &mut self,
        job: JobId,
        epoch: u64,
        now: SimTime,
    ) -> Result<Option<JobDone>, FrameworkError>;

    /// Suspends a running job, freeing and returning its slaves.
    fn suspend(&mut self, job: JobId, now: SimTime) -> Result<Vec<VmId>, FrameworkError>;

    /// Suspends a running job and holds it out of the queue until its
    /// VMs are given back (the Algorithm 2 lending path).
    fn suspend_and_hold(&mut self, job: JobId, now: SimTime) -> Result<Vec<VmId>, FrameworkError>;

    /// Fails a running job's stint (a slave VM crashed): progress is
    /// discarded, the job requeues at the front for full re-execution,
    /// and the stint's slaves — crashed one included — are returned.
    fn fail_running(&mut self, job: JobId) -> Result<Vec<VmId>, FrameworkError>;

    /// Requeues a held job at the front of the queue.
    fn requeue_held(&mut self, job: JobId) -> Result<(), FrameworkError>;

    /// Withdraws a queued job from the queue (SLA-escalation hook).
    fn withdraw(&mut self, job: JobId) -> Result<(), FrameworkError>;

    /// Re-enqueues a withdrawn job at the back of the queue.
    fn resubmit_withdrawn(&mut self, job: JobId) -> Result<(), FrameworkError>;

    /// Starts a withdrawn job immediately on exactly the given slaves.
    fn start_withdrawn_pinned(
        &mut self,
        job: JobId,
        vms: &[VmId],
        now: SimTime,
    ) -> Result<Dispatch, FrameworkError>;

    /// Jobs currently held awaiting returned VMs.
    fn held_jobs(&self) -> Vec<JobId>;

    /// Job lookup.
    fn job(&self, id: JobId) -> Option<&Job>;

    /// Currently running jobs, in id order.
    fn running_jobs(&self) -> Vec<&Job>;

    /// Jobs waiting in the queue.
    fn queued_count(&self) -> usize;

    /// Forgets a finished job, reclaiming its table entry (aggregate-only
    /// runs retire records instead of keeping the whole history).
    fn retire_job(&mut self, job: JobId) -> Result<(), FrameworkError>;

    /// Takes a serializable snapshot of the whole master, for the engine
    /// checkpoint.
    fn snapshot(&self) -> FrameworkSnapshot;

    /// Predicted execution time of `spec` on `k` uniform slaves — the
    /// performance model behind SLA quoting.
    fn estimate_exec(
        &self,
        spec: &JobSpec,
        k: u64,
        speed: f64,
        remote: bool,
    ) -> Result<SimDuration, FrameworkError>;
}

/// Delegates the entire [`Framework`] trait to a
/// `DedicatedScheduler` field named `inner`, given the framework kind
/// and the matching [`FrameworkSnapshot`] variant.
macro_rules! delegate_framework {
    ($ty:ty, $kind:expr, $variant:ident) => {
        impl crate::traits::Framework for $ty {
            fn kind(&self) -> crate::traits::FrameworkKind {
                $kind
            }
            fn add_slave(
                &mut self,
                vm: meryn_vmm::VmId,
                speed: f64,
                remote: bool,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.add_slave(vm, speed, remote)
            }
            fn remove_slave(
                &mut self,
                vm: meryn_vmm::VmId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.remove_slave(vm)
            }
            fn idle_slaves(&self) -> Vec<meryn_vmm::VmId> {
                self.inner.idle_slaves()
            }
            fn idle_slaves_into(&self, limit: usize, out: &mut Vec<meryn_vmm::VmId>) {
                self.inner.idle_slaves_into(limit, out)
            }
            fn idle_count(&self) -> u64 {
                self.inner.idle_count()
            }
            fn slave_count(&self) -> u64 {
                self.inner.slave_count()
            }
            fn has_slave(&self, vm: meryn_vmm::VmId) -> bool {
                self.inner.has_slave(vm)
            }
            fn submit(
                &mut self,
                spec: crate::job::JobSpec,
                now: meryn_sim::SimTime,
            ) -> Result<crate::job::JobId, crate::error::FrameworkError> {
                self.inner.submit(spec, now)
            }
            fn submit_pinned(
                &mut self,
                spec: crate::job::JobSpec,
                vms: &[meryn_vmm::VmId],
                now: meryn_sim::SimTime,
            ) -> Result<(crate::job::JobId, crate::job::Dispatch), crate::error::FrameworkError>
            {
                self.inner.submit_pinned(spec, vms, now)
            }
            fn reserve_slave(
                &mut self,
                vm: meryn_vmm::VmId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.reserve_slave(vm)
            }
            fn unreserve_slave(
                &mut self,
                vm: meryn_vmm::VmId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.unreserve_slave(vm)
            }
            fn try_dispatch(&mut self, now: meryn_sim::SimTime) -> Vec<crate::job::Dispatch> {
                self.inner.try_dispatch(now)
            }
            fn on_finished(
                &mut self,
                job: crate::job::JobId,
                epoch: u64,
                now: meryn_sim::SimTime,
            ) -> Result<Option<crate::job::JobDone>, crate::error::FrameworkError> {
                self.inner.on_finished(job, epoch, now)
            }
            fn suspend(
                &mut self,
                job: crate::job::JobId,
                now: meryn_sim::SimTime,
            ) -> Result<Vec<meryn_vmm::VmId>, crate::error::FrameworkError> {
                self.inner.suspend(job, now)
            }
            fn suspend_and_hold(
                &mut self,
                job: crate::job::JobId,
                now: meryn_sim::SimTime,
            ) -> Result<Vec<meryn_vmm::VmId>, crate::error::FrameworkError> {
                self.inner.suspend_and_hold(job, now)
            }
            fn requeue_held(
                &mut self,
                job: crate::job::JobId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.requeue_held(job)
            }
            fn fail_running(
                &mut self,
                job: crate::job::JobId,
            ) -> Result<Vec<meryn_vmm::VmId>, crate::error::FrameworkError> {
                self.inner.fail_running(job)
            }
            fn withdraw(
                &mut self,
                job: crate::job::JobId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.withdraw(job)
            }
            fn resubmit_withdrawn(
                &mut self,
                job: crate::job::JobId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.resubmit_withdrawn(job)
            }
            fn start_withdrawn_pinned(
                &mut self,
                job: crate::job::JobId,
                vms: &[meryn_vmm::VmId],
                now: meryn_sim::SimTime,
            ) -> Result<crate::job::Dispatch, crate::error::FrameworkError> {
                self.inner.start_withdrawn_pinned(job, vms, now)
            }
            fn held_jobs(&self) -> Vec<crate::job::JobId> {
                self.inner.held_jobs()
            }
            fn job(&self, id: crate::job::JobId) -> Option<&crate::scheduler::Job> {
                self.inner.job(id)
            }
            fn running_jobs(&self) -> Vec<&crate::scheduler::Job> {
                self.inner.running_jobs()
            }
            fn queued_count(&self) -> usize {
                self.inner.queued_count()
            }
            fn retire_job(
                &mut self,
                job: crate::job::JobId,
            ) -> Result<(), crate::error::FrameworkError> {
                self.inner.retire_job(job)
            }
            fn snapshot(&self) -> crate::traits::FrameworkSnapshot {
                crate::traits::FrameworkSnapshot::$variant(self.clone())
            }
            fn estimate_exec(
                &self,
                spec: &crate::job::JobSpec,
                k: u64,
                speed: f64,
                remote: bool,
            ) -> Result<meryn_sim::SimDuration, crate::error::FrameworkError> {
                self.inner.estimate_exec(spec, k, speed, remote)
            }
        }
    };
}

pub(crate) use delegate_framework;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_type_names() {
        assert_eq!(FrameworkKind::Batch.type_name(), "batch");
        assert_eq!(FrameworkKind::MapReduce.type_name(), "mapreduce");
    }
}
