//! Property tests for the dedicated-VM scheduler: slave accounting and
//! work-fraction invariants hold under arbitrary operation sequences.

use meryn_frameworks::batch::BatchFramework;
use meryn_frameworks::{Dispatch, Framework, JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_vmm::{HostTag, VmId};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Submit { work: u64, nb_vms: u64 },
    Dispatch,
    Finish(usize),
    Suspend(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (10u64..500, 1u64..4).prop_map(|(work, nb_vms)| Op::Submit { work, nb_vms }),
        Just(Op::Dispatch),
        (0usize..32).prop_map(Op::Finish),
        (0usize..32).prop_map(Op::Suspend),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scheduler_accounting_invariants(
        slaves in 1u64..8,
        ops in prop::collection::vec(op_strategy(), 1..100)
    ) {
        let mut fw = BatchFramework::new();
        for i in 0..slaves {
            fw.add_slave(VmId::new(HostTag::PRIVATE, i), 1.0, false).unwrap();
        }
        let mut live: Vec<Dispatch> = Vec::new();
        let mut t = 0u64;
        let mut submitted = 0usize;
        let mut finished = 0usize;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            match op {
                Op::Submit { work, nb_vms } => {
                    fw.submit(
                        JobSpec::Batch {
                            work: SimDuration::from_secs(work),
                            nb_vms,
                            scaling: ScalingLaw::Fixed,
                        },
                        now,
                    )
                    .unwrap();
                    submitted += 1;
                }
                Op::Dispatch => {
                    live.extend(fw.try_dispatch(now));
                }
                Op::Finish(i) if !live.is_empty() => {
                    let d = live.remove(i % live.len());
                    // Finish events land at the predicted instant or
                    // later; both must be accepted for live epochs.
                    let at = d.finish_at.max_of(now);
                    if fw.on_finished(d.job, d.epoch, at).unwrap().is_some() {
                        finished += 1;
                    }
                }
                Op::Suspend(i) if !live.is_empty() => {
                    let d = live.remove(i % live.len());
                    // Only suspend if still running under this epoch
                    // (a Finish may have raced it in our shuffled order).
                    if fw.job(d.job).map(|j| j.is_running() && j.epoch == d.epoch) == Some(true) {
                        let freed = fw.suspend(d.job, now).unwrap();
                        prop_assert_eq!(freed.len(), d.vms.len());
                    }
                }
                _ => {}
            }
            // Accounting invariants after every operation:
            let busy: u64 = fw
                .running_jobs()
                .iter()
                .map(|j| j.nb_vms())
                .sum();
            prop_assert_eq!(fw.idle_count() + busy, slaves);
            for job in fw.running_jobs() {
                prop_assert!(job.remaining_fraction >= 0.0);
                prop_assert!(job.remaining_fraction <= 1.0);
            }
        }
        prop_assert!(finished <= submitted);
    }
}
