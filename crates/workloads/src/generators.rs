//! Stochastic workload generators for the "representative data-center"
//! experiments the paper leaves as future work.
//!
//! All generators are seeded and deterministic. Runtimes follow a
//! bounded Pareto (the classic heavy-tailed job-size model), arrivals a
//! Poisson process optionally modulated by a diurnal cycle or on/off
//! bursts.

use meryn_frameworks::{FrameworkKind, JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimRng, SimTime};
use meryn_sla::negotiation::UserStrategy;
use serde::{Deserialize, Serialize};

use crate::submission::{sort_by_arrival, Submission, VcTarget};

/// Distribution of per-application work volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkDistribution {
    /// Every application has the same work volume.
    Fixed(SimDuration),
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Shortest work volume.
        lo: SimDuration,
        /// Longest work volume.
        hi: SimDuration,
    },
    /// Bounded Pareto on `[lo, hi]` with shape `alpha` — many small jobs,
    /// a heavy tail of long ones.
    BoundedPareto {
        /// Shortest work volume.
        lo: SimDuration,
        /// Longest work volume.
        hi: SimDuration,
        /// Tail index (≈1.1–2.5 for real traces).
        alpha: f64,
    },
}

impl WorkDistribution {
    fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            WorkDistribution::Fixed(w) => w,
            WorkDistribution::Uniform { lo, hi } => rng.uniform_duration(lo, hi),
            WorkDistribution::BoundedPareto { lo, hi, alpha } => rng.bounded_pareto(lo, hi, alpha),
        }
    }
}

/// How arrivals are spread over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Fixed inter-arrival gap (the paper's 5 s).
    Fixed(SimDuration),
    /// Poisson process with the given mean inter-arrival.
    Poisson {
        /// Mean gap between arrivals.
        mean: SimDuration,
    },
    /// Poisson modulated by a day/night cycle: the instantaneous mean
    /// gap swings between `mean/(1+depth)` (day peak) and
    /// `mean/(1−depth)` (night trough) over `period`.
    Diurnal {
        /// Baseline mean gap.
        mean: SimDuration,
        /// Modulation depth in `[0, 1)`.
        depth: f64,
        /// Cycle length.
        period: SimDuration,
    },
    /// On/off bursts: `burst_len` arrivals at `fast` gaps, then one
    /// `idle` gap, repeating.
    Bursty {
        /// Arrivals per burst.
        burst_len: u32,
        /// Gap inside a burst.
        fast: SimDuration,
        /// Gap between bursts.
        idle: SimDuration,
    },
}

impl ArrivalProcess {
    /// Replaces the process's characteristic gap: the fixed gap, the
    /// Poisson/diurnal mean, or a burst's intra-burst gap — the knob a
    /// scenario's inter-arrival override turns.
    pub fn with_mean_gap(self, gap: SimDuration) -> Self {
        match self {
            ArrivalProcess::Fixed(_) => ArrivalProcess::Fixed(gap),
            ArrivalProcess::Poisson { .. } => ArrivalProcess::Poisson { mean: gap },
            ArrivalProcess::Diurnal { depth, period, .. } => ArrivalProcess::Diurnal {
                mean: gap,
                depth,
                period,
            },
            ArrivalProcess::Bursty {
                burst_len, idle, ..
            } => ArrivalProcess::Bursty {
                burst_len,
                fast: gap,
                idle,
            },
        }
    }

    /// Compresses every gap by `1/load_multiplier` (`m > 1` = more
    /// load, `m = 1` = unchanged). Shape parameters (diurnal depth and
    /// period, burst length) are preserved.
    pub fn scaled(self, load_multiplier: f64) -> Self {
        let f = 1.0 / load_multiplier;
        match self {
            ArrivalProcess::Fixed(gap) => ArrivalProcess::Fixed(gap.scale(f)),
            ArrivalProcess::Poisson { mean } => ArrivalProcess::Poisson {
                mean: mean.scale(f),
            },
            ArrivalProcess::Diurnal {
                mean,
                depth,
                period,
            } => ArrivalProcess::Diurnal {
                mean: mean.scale(f),
                depth,
                period,
            },
            ArrivalProcess::Bursty {
                burst_len,
                fast,
                idle,
            } => ArrivalProcess::Bursty {
                burst_len,
                fast: fast.scale(f),
                idle: idle.scale(f),
            },
        }
    }
}

/// A seeded stochastic workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of applications.
    pub count: usize,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Work distribution.
    pub work: WorkDistribution,
    /// VM allocation choices, picked uniformly (e.g. `[1, 1, 2, 4]` for
    /// a mix biased to single-VM jobs).
    pub nb_vms_choices: Vec<u64>,
    /// Targets, picked round-robin weighted by these (index, weight)
    /// pairs.
    pub targets: Vec<(VcTarget, u32)>,
    /// Negotiation strategy for every user.
    pub strategy: UserStrategy,
    /// Scaling law for batch jobs.
    pub scaling: ScalingLaw,
}

impl GeneratorConfig {
    /// A sane data-center-like default: Poisson arrivals, heavy-tailed
    /// runtimes, mostly 1-VM jobs across one batch VC.
    pub fn datacenter(count: usize, mean_gap: SimDuration) -> Self {
        GeneratorConfig {
            count,
            arrivals: ArrivalProcess::Poisson { mean: mean_gap },
            work: WorkDistribution::BoundedPareto {
                lo: SimDuration::from_secs(60),
                hi: SimDuration::from_secs(7200),
                alpha: 1.5,
            },
            nb_vms_choices: vec![1, 1, 1, 2, 4],
            targets: vec![(VcTarget::Kind(FrameworkKind::Batch), 1)],
            strategy: UserStrategy::AcceptCheapest,
            scaling: ScalingLaw::Linear,
        }
    }
}

/// Default batch size of [`generate_chunks`] / [`GeneratedChunks`]:
/// large enough to amortize per-batch overheads, small enough that a
/// streaming consumer (e.g. `Platform::enqueue_workload`) never holds
/// more than a sliver of a 100k-submission workload in flight.
pub const DEFAULT_CHUNK: usize = 4096;

/// A streaming, batched workload generator.
///
/// Yields the workload of [`generate`] in [`Self::chunk_len`]-sized
/// `Vec<Submission>` batches — **byte-for-byte the same submissions in
/// the same order**, whatever the chunk size (the RNG streams advance
/// per item, batching only affects buffering). Arrival times are
/// nondecreasing by construction, so the concatenation of the chunks is
/// already sorted by arrival.
pub struct GeneratedChunks {
    cfg: GeneratorConfig,
    chunk_len: usize,
    produced: usize,
    arrival_rng: SimRng,
    work_rng: SimRng,
    pick_rng: SimRng,
    cycle: Vec<VcTarget>,
    now: SimTime,
    burst_pos: u32,
}

impl GeneratedChunks {
    /// Starts the stream for `cfg` and `seed`, batching `chunk_len`
    /// submissions at a time (0 is treated as 1).
    pub fn new(cfg: &GeneratorConfig, seed: u64, chunk_len: usize) -> Self {
        assert!(
            !cfg.nb_vms_choices.is_empty(),
            "need at least one VM choice"
        );
        assert!(!cfg.targets.is_empty(), "need at least one target");
        let rng = SimRng::new(seed);
        // Weighted target cycle.
        let mut cycle: Vec<VcTarget> = Vec::new();
        for &(t, w) in &cfg.targets {
            for _ in 0..w.max(1) {
                cycle.push(t);
            }
        }
        GeneratedChunks {
            cfg: cfg.clone(),
            chunk_len: chunk_len.max(1),
            produced: 0,
            arrival_rng: rng.fork(1),
            work_rng: rng.fork(2),
            pick_rng: rng.fork(3),
            cycle,
            now: SimTime::ZERO,
            burst_pos: 0,
        }
    }

    /// The configured batch size.
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Submissions not yet produced.
    pub fn remaining(&self) -> usize {
        self.cfg.count - self.produced
    }

    /// Flattens the stream into single submissions with an exact
    /// `size_hint`, for direct feeding into `enqueue_workload`.
    pub fn submissions(self) -> impl Iterator<Item = Submission> {
        let total = self.remaining();
        let mut chunks = self;
        let mut current: std::vec::IntoIter<Submission> = Vec::new().into_iter();
        (0..total).map(move |_| loop {
            if let Some(sub) = current.next() {
                return sub;
            }
            current = chunks
                .next()
                .expect("remaining() counted these")
                .into_iter();
        })
    }

    fn next_submission(&mut self) -> Submission {
        let cfg = &self.cfg;
        let gap = match cfg.arrivals {
            ArrivalProcess::Fixed(d) => d,
            ArrivalProcess::Poisson { mean } => self.arrival_rng.exponential(mean),
            ArrivalProcess::Diurnal {
                mean,
                depth,
                period,
            } => {
                assert!((0.0..1.0).contains(&depth), "diurnal depth out of range");
                let phase = (self.now.as_millis() % period.as_millis().max(1)) as f64
                    / period.as_millis().max(1) as f64;
                let factor = 1.0 + depth * (std::f64::consts::TAU * phase).sin();
                self.arrival_rng
                    .exponential(mean.scale(1.0 / factor.max(1e-6)))
            }
            ArrivalProcess::Bursty {
                burst_len,
                fast,
                idle,
            } => {
                self.burst_pos += 1;
                if self.burst_pos >= burst_len.max(1) {
                    self.burst_pos = 0;
                    idle
                } else {
                    fast
                }
            }
        };
        self.now += gap;
        let work = cfg.work.sample(&mut self.work_rng);
        let nb_vms = cfg.nb_vms_choices[self.pick_rng.index(cfg.nb_vms_choices.len())];
        let target = self.cycle[self.produced % self.cycle.len()];
        let spec = match target {
            VcTarget::Kind(FrameworkKind::MapReduce) => JobSpec::MapReduce {
                // Split the work volume into map tasks plus a 20% reduce
                // phase, two slots per slave.
                map_tasks: 8 * nb_vms as u32,
                map_work: work / (8 * nb_vms),
                reduce_tasks: nb_vms as u32,
                reduce_work: work.scale(0.2) / nb_vms,
                nb_vms,
                slots_per_vm: 2,
            },
            _ => JobSpec::Batch {
                work,
                nb_vms,
                scaling: cfg.scaling,
            },
        };
        self.produced += 1;
        Submission::new(self.now, target, spec, cfg.strategy)
    }
}

impl Iterator for GeneratedChunks {
    type Item = Vec<Submission>;

    fn next(&mut self) -> Option<Vec<Submission>> {
        if self.produced >= self.cfg.count {
            return None;
        }
        let n = self.chunk_len.min(self.cfg.count - self.produced);
        let mut chunk = Vec::with_capacity(n);
        for _ in 0..n {
            chunk.push(self.next_submission());
        }
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let chunks = self.remaining().div_ceil(self.chunk_len);
        (chunks, Some(chunks))
    }
}

/// Streams the workload of `generate(cfg, seed)` in `chunk_len`-sized
/// batches (see [`GeneratedChunks`]).
pub fn generate_chunks(cfg: &GeneratorConfig, seed: u64, chunk_len: usize) -> GeneratedChunks {
    GeneratedChunks::new(cfg, seed, chunk_len)
}

/// Generates a workload from `cfg` with the given seed.
///
/// Implemented over the batched [`GeneratedChunks`] stream; the output
/// is identical for every chunk size, and arrival times come out
/// nondecreasing (the final sort is a formality for consumers that
/// require the [`sort_by_arrival`] contract).
pub fn generate(cfg: &GeneratorConfig, seed: u64) -> Vec<Submission> {
    let mut subs = Vec::with_capacity(cfg.count);
    for chunk in generate_chunks(cfg, seed, DEFAULT_CHUNK) {
        subs.extend(chunk);
    }
    sort_by_arrival(subs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_arrivals_are_regular() {
        let cfg = GeneratorConfig {
            arrivals: ArrivalProcess::Fixed(SimDuration::from_secs(5)),
            ..GeneratorConfig::datacenter(10, SimDuration::from_secs(5))
        };
        let subs = generate(&cfg, 1);
        assert_eq!(subs.len(), 10);
        assert_eq!(subs[9].at, SimTime::from_secs(50));
    }

    #[test]
    fn poisson_mean_is_roughly_right() {
        let cfg = GeneratorConfig::datacenter(2000, SimDuration::from_secs(10));
        let subs = generate(&cfg, 7);
        let span = subs.last().unwrap().at.as_secs_f64();
        let mean_gap = span / 2000.0;
        assert!(
            (mean_gap - 10.0).abs() < 1.0,
            "mean gap {mean_gap} too far from 10"
        );
    }

    #[test]
    fn arrival_overrides_and_scaling() {
        let d = SimDuration::from_secs;
        assert_eq!(
            ArrivalProcess::Fixed(d(5)).with_mean_gap(d(2)),
            ArrivalProcess::Fixed(d(2))
        );
        assert_eq!(
            ArrivalProcess::Poisson { mean: d(10) }.scaled(2.0),
            ArrivalProcess::Poisson { mean: d(5) }
        );
        let bursty = ArrivalProcess::Bursty {
            burst_len: 3,
            fast: d(2),
            idle: d(100),
        };
        assert_eq!(
            bursty.scaled(2.0),
            ArrivalProcess::Bursty {
                burst_len: 3,
                fast: d(1),
                idle: d(50),
            }
        );
        assert_eq!(
            ArrivalProcess::Diurnal {
                mean: d(10),
                depth: 0.5,
                period: d(3600),
            }
            .with_mean_gap(d(4)),
            ArrivalProcess::Diurnal {
                mean: d(4),
                depth: 0.5,
                period: d(3600),
            }
        );
        // m = 1 is the identity.
        assert_eq!(
            ArrivalProcess::Fixed(d(5)).scaled(1.0),
            ArrivalProcess::Fixed(d(5))
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GeneratorConfig::datacenter(100, SimDuration::from_secs(5));
        assert_eq!(generate(&cfg, 42), generate(&cfg, 42));
        assert_ne!(generate(&cfg, 42), generate(&cfg, 43));
    }

    #[test]
    fn chunked_generation_is_chunk_size_invariant() {
        let cfg = GeneratorConfig::datacenter(257, SimDuration::from_secs(5));
        let whole = generate(&cfg, 9);
        for chunk_len in [1usize, 7, 64, 256, 257, 1000] {
            let rebuilt: Vec<Submission> = generate_chunks(&cfg, 9, chunk_len).flatten().collect();
            assert_eq!(
                rebuilt, whole,
                "chunk_len={chunk_len} must not change output"
            );
        }
        // Chunk boundaries land where configured.
        let sizes: Vec<usize> = generate_chunks(&cfg, 9, 100).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![100, 100, 57]);
    }

    #[test]
    fn flattened_stream_matches_and_sizes_exactly() {
        let cfg = GeneratorConfig::datacenter(73, SimDuration::from_secs(3));
        let whole = generate(&cfg, 4);
        let stream = generate_chunks(&cfg, 4, 10).submissions();
        assert_eq!(stream.size_hint(), (73, Some(73)));
        let collected: Vec<Submission> = stream.collect();
        assert_eq!(collected, whole);
    }

    #[test]
    fn generated_arrivals_are_already_sorted() {
        // The sort in `generate` must be a no-op: gaps are nonnegative.
        let cfg = GeneratorConfig::datacenter(500, SimDuration::from_secs(2));
        let subs = generate(&cfg, 21);
        assert!(subs.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn heavy_tail_present() {
        let cfg = GeneratorConfig::datacenter(2000, SimDuration::from_secs(1));
        let subs = generate(&cfg, 3);
        let works: Vec<u64> = subs
            .iter()
            .map(|s| match s.spec {
                JobSpec::Batch { work, .. } => work.as_secs(),
                JobSpec::MapReduce { .. } => 0,
            })
            .collect();
        let small = works.iter().filter(|&&w| w < 600).count();
        // P(X > 1800) ≈ (60/1800)^1.5 ≈ 0.6% → ~12 expected in 2000.
        let big = works.iter().filter(|&&w| w > 1800).count();
        assert!(small > 1200, "bulk should be small jobs, got {small}");
        assert!(big > 3, "tail should exist, got {big}");
    }

    #[test]
    fn bursty_gaps_alternate() {
        let cfg = GeneratorConfig {
            arrivals: ArrivalProcess::Bursty {
                burst_len: 3,
                fast: SimDuration::from_secs(1),
                idle: SimDuration::from_secs(100),
            },
            ..GeneratorConfig::datacenter(9, SimDuration::from_secs(1))
        };
        let subs = generate(&cfg, 5);
        let gaps: Vec<u64> = subs
            .windows(2)
            .map(|w| w[1].at.since(w[0].at).as_secs())
            .collect();
        assert!(gaps.contains(&1));
        assert!(gaps.contains(&100));
    }

    #[test]
    fn mapreduce_targets_get_mapreduce_specs() {
        let cfg = GeneratorConfig {
            targets: vec![(VcTarget::Kind(FrameworkKind::MapReduce), 1)],
            ..GeneratorConfig::datacenter(5, SimDuration::from_secs(5))
        };
        let subs = generate(&cfg, 11);
        assert!(subs
            .iter()
            .all(|s| matches!(s.spec, JobSpec::MapReduce { .. })));
    }

    #[test]
    fn diurnal_modulates_rate() {
        let cfg = GeneratorConfig {
            arrivals: ArrivalProcess::Diurnal {
                mean: SimDuration::from_secs(10),
                depth: 0.8,
                period: SimDuration::from_secs(86_400),
            },
            ..GeneratorConfig::datacenter(5000, SimDuration::from_secs(10))
        };
        let subs = generate(&cfg, 13);
        // Count arrivals in the first vs third quarter of the first day:
        // the sinusoid peaks in the first (factor > 1 → shorter gaps).
        let q = 86_400 / 4;
        let first = subs.iter().filter(|s| s.at.as_secs() < q).count();
        let third = subs
            .iter()
            .filter(|s| (2 * q..3 * q).contains(&s.at.as_secs()))
            .count();
        assert!(
            first > third,
            "day quarter ({first}) should out-arrive night quarter ({third})"
        );
    }
}
