//! The submission record.
//!
//! Users "submit their applications through a common and uniform
//! interface, whatever the type of their applications" (§3.1). A
//! [`Submission`] is that uniform template: when the application arrives,
//! where it is headed, what it runs and how its user negotiates.

use meryn_frameworks::{FrameworkKind, JobSpec};
use meryn_sim::SimTime;
use meryn_sla::negotiation::UserStrategy;
use serde::{Deserialize, Serialize};

/// How the Client Manager routes a submission to a Virtual Cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcTarget {
    /// An explicit VC index (the paper's evaluation addresses its two
    /// batch VCs directly).
    Index(usize),
    /// The first VC hosting this application type.
    Kind(FrameworkKind),
}

/// One application submission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Arrival instant at the Client Manager.
    pub at: SimTime,
    /// Routing target.
    pub target: VcTarget,
    /// The application description, already in framework terms.
    pub spec: JobSpec,
    /// The user's negotiation behaviour.
    pub strategy: UserStrategy,
}

impl Submission {
    /// Convenience constructor.
    pub fn new(at: SimTime, target: VcTarget, spec: JobSpec, strategy: UserStrategy) -> Self {
        Submission {
            at,
            target,
            spec,
            strategy,
        }
    }
}

/// Sorts a workload by arrival time (stable, so equal instants keep
/// generation order) and returns it. Platform drivers require
/// time-ordered input.
pub fn sort_by_arrival(mut subs: Vec<Submission>) -> Vec<Submission> {
    subs.sort_by_key(|s| s.at);
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use meryn_frameworks::ScalingLaw;
    use meryn_sim::SimDuration;

    fn spec() -> JobSpec {
        JobSpec::Batch {
            work: SimDuration::from_secs(100),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        }
    }

    #[test]
    fn construction() {
        let s = Submission::new(
            SimTime::from_secs(5),
            VcTarget::Index(0),
            spec(),
            UserStrategy::AcceptCheapest,
        );
        assert_eq!(s.at, SimTime::from_secs(5));
        assert_eq!(s.target, VcTarget::Index(0));
    }

    #[test]
    fn sort_is_stable() {
        let t = SimTime::from_secs(10);
        let mk = |at, idx| {
            Submission::new(
                at,
                VcTarget::Index(idx),
                spec(),
                UserStrategy::AcceptCheapest,
            )
        };
        let sorted = sort_by_arrival(vec![mk(t, 0), mk(SimTime::from_secs(5), 1), mk(t, 2)]);
        assert_eq!(sorted[0].target, VcTarget::Index(1));
        assert_eq!(sorted[1].target, VcTarget::Index(0));
        assert_eq!(sorted[2].target, VcTarget::Index(2));
    }
}
