//! # meryn-workloads — workload generators and traces
//!
//! The paper's preliminary evaluation runs one synthetic workload
//! (65 single-VM batch applications at a fixed 5 s inter-arrival, 50 to
//! one batch Virtual Cluster and 15 to another) and announces future
//! experiments "with workloads representative of real data centers
//! workloads". This crate provides both:
//!
//! * [`submission`] — the submission record the platform consumes: an
//!   arrival instant, a target VC, a framework job description and a
//!   negotiation strategy;
//! * [`synthetic`] — the paper workload, parameterized;
//! * [`generators`] — Poisson arrivals, heavy-tailed (bounded-Pareto)
//!   runtimes, diurnal load cycles and bursty on/off phases for the
//!   "representative data-center" experiments;
//! * [`trace`] — JSON trace round-tripping so workloads can be saved,
//!   inspected and replayed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod submission;
pub mod synthetic;
pub mod trace;

pub use submission::{Submission, VcTarget};
pub use synthetic::{paper_workload, PaperWorkloadParams};
