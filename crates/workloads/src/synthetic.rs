//! The paper's synthetic evaluation workload.
//!
//! "A synthetic workload consisting of 65 applications submitted at a
//! fixed inter-arrival time of 5 s, 50 applications submitted to the
//! first batch VC (VC1) and 15 applications submitted to the second batch
//! VC (VC2). … we ran each application on only one VM. The batch
//! application we have used is the Pascal example … The measured
//! execution time … is about 1550 s on a private VM and about 1670 s on a
//! cloud VM."
//!
//! The paper does not spell out the interleaving of VC1/VC2 arrivals.
//! We alternate VC1/VC2 until VC2's quota is exhausted, then send the
//! remainder to VC1 — the order that reproduces the reported resource
//! trajectory (VC2 fills its own VMs early, its surplus flows to VC1
//! mid-run, and the late VC1 tail bursts to the cloud).

use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use serde::{Deserialize, Serialize};

use crate::submission::{Submission, VcTarget};

/// Parameters of the paper workload, all defaulted to the paper's values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperWorkloadParams {
    /// Applications sent to VC1.
    pub vc1_apps: usize,
    /// Applications sent to VC2.
    pub vc2_apps: usize,
    /// Fixed inter-arrival time.
    pub interarrival: SimDuration,
    /// Per-application work (reference-VM execution time).
    pub work: SimDuration,
    /// VMs per application.
    pub nb_vms: u64,
    /// Index of VC1 in the platform.
    pub vc1_index: usize,
    /// Index of VC2 in the platform.
    pub vc2_index: usize,
}

impl Default for PaperWorkloadParams {
    fn default() -> Self {
        PaperWorkloadParams {
            vc1_apps: 50,
            vc2_apps: 15,
            interarrival: SimDuration::from_secs(5),
            work: SimDuration::from_secs(1550),
            nb_vms: 1,
            vc1_index: 0,
            vc2_index: 1,
        }
    }
}

/// Generates the paper workload. The first arrival lands at one
/// inter-arrival interval, like a queue fed from time zero.
pub fn paper_workload(p: PaperWorkloadParams) -> Vec<Submission> {
    let spec = JobSpec::Batch {
        work: p.work,
        nb_vms: p.nb_vms,
        scaling: ScalingLaw::Fixed,
    };
    let total = p.vc1_apps + p.vc2_apps;
    let mut subs = Vec::with_capacity(total);
    let mut sent1 = 0;
    let mut sent2 = 0;
    for i in 0..total {
        let at = SimTime::ZERO + p.interarrival * (i as u64 + 1);
        // Alternate while both have quota (VC1 first), then drain the rest.
        let to_vc1 = if sent1 < p.vc1_apps && sent2 < p.vc2_apps {
            i % 2 == 0
        } else {
            sent1 < p.vc1_apps
        };
        let idx = if to_vc1 {
            sent1 += 1;
            p.vc1_index
        } else {
            sent2 += 1;
            p.vc2_index
        };
        subs.push(Submission::new(
            at,
            VcTarget::Index(idx),
            spec,
            UserStrategy::AcceptCheapest,
        ));
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_counts_match_paper() {
        let subs = paper_workload(PaperWorkloadParams::default());
        assert_eq!(subs.len(), 65);
        let vc1 = subs
            .iter()
            .filter(|s| s.target == VcTarget::Index(0))
            .count();
        let vc2 = subs
            .iter()
            .filter(|s| s.target == VcTarget::Index(1))
            .count();
        assert_eq!(vc1, 50);
        assert_eq!(vc2, 15);
    }

    #[test]
    fn arrivals_are_five_seconds_apart() {
        let subs = paper_workload(PaperWorkloadParams::default());
        assert_eq!(subs[0].at, SimTime::from_secs(5));
        assert_eq!(subs[64].at, SimTime::from_secs(325));
        for w in subs.windows(2) {
            assert_eq!(w[1].at.since(w[0].at), SimDuration::from_secs(5));
        }
    }

    #[test]
    fn interleaving_alternates_until_vc2_done() {
        let subs = paper_workload(PaperWorkloadParams::default());
        // First 30 arrivals alternate VC1/VC2.
        for (i, s) in subs.iter().take(30).enumerate() {
            let expect = if i % 2 == 0 { 0 } else { 1 };
            assert_eq!(s.target, VcTarget::Index(expect), "arrival {i}");
        }
        // The tail is all VC1.
        assert!(subs[30..].iter().all(|s| s.target == VcTarget::Index(0)));
    }

    #[test]
    fn work_matches_pascal_example() {
        let subs = paper_workload(PaperWorkloadParams::default());
        match subs[0].spec {
            JobSpec::Batch { work, nb_vms, .. } => {
                assert_eq!(work, SimDuration::from_secs(1550));
                assert_eq!(nb_vms, 1);
            }
            _ => panic!("paper workload is batch"),
        }
    }

    #[test]
    fn custom_split() {
        let p = PaperWorkloadParams {
            vc1_apps: 3,
            vc2_apps: 5,
            ..Default::default()
        };
        let subs = paper_workload(p);
        assert_eq!(subs.len(), 8);
        let vc1 = subs
            .iter()
            .filter(|s| s.target == VcTarget::Index(0))
            .count();
        assert_eq!(vc1, 3);
    }
}
