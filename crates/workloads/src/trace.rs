//! Workload trace serialization.
//!
//! Workloads round-trip through JSON so experiments can be archived and
//! replayed bit-identically.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::submission::Submission;

/// A saved workload with provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Free-form description (generator name, seed, intent).
    pub description: String,
    /// Seed used to generate it, if any.
    pub seed: Option<u64>,
    /// The submissions, time-ordered.
    pub submissions: Vec<Submission>,
}

impl Trace {
    /// Wraps a workload in a trace envelope.
    pub fn new(
        description: impl Into<String>,
        seed: Option<u64>,
        submissions: Vec<Submission>,
    ) -> Self {
        Trace {
            description: description.into(),
            seed,
            submissions,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace types are serde-safe")
    }

    /// Parses from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Reads a trace from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{paper_workload, PaperWorkloadParams};

    #[test]
    fn json_round_trip() {
        let t = Trace::new(
            "paper workload",
            None,
            paper_workload(PaperWorkloadParams::default()),
        );
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.submissions.len(), 65);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("meryn-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.json");
        let t = Trace::new(
            "gen",
            Some(42),
            crate::generators::generate(
                &crate::generators::GeneratorConfig::datacenter(
                    20,
                    meryn_sim::SimDuration::from_secs(5),
                ),
                42,
            ),
        );
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Trace::from_json("{not json").is_err());
    }
}
