//! The declarative scenario specification.
//!
//! A [`Scenario`] is a self-contained, serde-(de)serializable
//! description of one experiment: the platform deployment, the
//! workload, the sweep axes to explore and the outputs to report.
//! Experiments are *data* — a JSON file under `scenarios/` (or a value
//! built in code) handed to [`crate::runner::run_scenario`] — instead
//! of a hand-written driver binary per figure.
//!
//! ```json
//! {
//!   "name": "paper",
//!   "platform": { "policy": "meryn", ... },
//!   "workload": { "Paper": { "vc1_apps": 50, ... } },
//!   "sweep": { "base_seed": 12648430, "replicas": 30,
//!              "axes": [ { "Policy": { "values": ["meryn", "static"] } } ] },
//!   "outputs": { "summary": true, "comparison": true, "table1_samples": 100 }
//! }
//! ```

use std::fs;
use std::io;
use std::path::Path;

use meryn_core::config::{PlatformConfig, ViolationPolicy};
use meryn_sim::SimDuration;
use meryn_sla::VmRate;
use meryn_workloads::generators::GeneratorConfig;
use meryn_workloads::trace::Trace;
use meryn_workloads::{paper_workload, PaperWorkloadParams, Submission};
use serde::{Deserialize, Serialize};

use crate::sweep::DEFAULT_BASE_SEED;

/// One declarative experiment: platform + workload + sweep + outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports and artifact file names).
    pub name: String,
    /// Free-form intent description.
    #[serde(default)]
    pub description: String,
    /// The platform deployment, including the placement/bidding policy
    /// names resolved through `meryn_core::policy`.
    pub platform: PlatformConfig,
    /// What arrives at the platform.
    pub workload: WorkloadSpec,
    /// Replication and the axes to sweep.
    #[serde(default)]
    pub sweep: SweepSpec,
    /// Which report sections to produce.
    #[serde(default)]
    pub outputs: OutputSpec,
}

impl Scenario {
    /// Serializes to pretty JSON, newline-terminated — the exact bytes
    /// of the checked-in `scenarios/*.json` files (round-trip tests
    /// byte-compare against this).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("scenario types are serde-safe");
        json.push('\n');
        json
    }

    /// Parses a scenario from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Reads a scenario file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(&path)?;
        Self::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.as_ref().display()),
            )
        })
    }

    /// Writes the scenario to a file (the [`Self::to_json`] bytes).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_json())
    }
}

/// What arrives at the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's 65-app synthetic workload, parameterized.
    Paper(PaperWorkloadParams),
    /// A seeded stochastic workload from `meryn_workloads::generators`.
    Generated {
        /// Generator parameters.
        config: GeneratorConfig,
        /// Generator seed (independent of the platform seed).
        seed: u64,
    },
    /// An explicit submission list, spelled out in the spec.
    Explicit {
        /// The submissions, any order (sorted by arrival before use).
        submissions: Vec<Submission>,
    },
    /// A saved workload trace (`meryn_workloads::trace::Trace` JSON),
    /// resolved relative to the working directory.
    TraceFile {
        /// Path to the trace file.
        path: String,
    },
}

impl WorkloadSpec {
    /// Materializes the submissions with the variant's workload
    /// modifiers applied: an inter-arrival override (paper/generated
    /// arrivals only) and a load multiplier compressing arrival times
    /// by `1/m`.
    pub fn materialize(&self, modifier: &WorkloadModifier) -> io::Result<Vec<Submission>> {
        let subs = match self {
            WorkloadSpec::Paper(params) => {
                let mut p = *params;
                if let Some(gap) = modifier.interarrival {
                    p.interarrival = gap;
                }
                p.interarrival = p.interarrival.scale(1.0 / modifier.load_multiplier);
                paper_workload(p)
            }
            WorkloadSpec::Generated { .. } => {
                let (cfg, seed) = self
                    .streamable(modifier)
                    .expect("Generated workloads are streamable");
                meryn_workloads::generators::generate(&cfg, seed)
            }
            WorkloadSpec::Explicit { submissions } => {
                assert!(
                    modifier.interarrival.is_none(),
                    "the InterarrivalSecs axis only applies to Paper/Generated workloads; \
                     use LoadMultiplier to compress an explicit submission list"
                );
                scale_arrivals(submissions.clone(), modifier.load_multiplier)
            }
            WorkloadSpec::TraceFile { path } => {
                assert!(
                    modifier.interarrival.is_none(),
                    "the InterarrivalSecs axis only applies to Paper/Generated workloads; \
                     use LoadMultiplier to compress a trace"
                );
                scale_arrivals(Trace::load(path)?.submissions, modifier.load_multiplier)
            }
        };
        Ok(meryn_workloads::submission::sort_by_arrival(subs))
    }

    /// For `Generated` workloads, the generator config (modifiers
    /// applied) and seed — the inputs of a *streaming* run. Generator
    /// output is nondecreasing by arrival, so streaming it is
    /// byte-identical to enqueueing [`Self::materialize`]'s vector.
    /// `None` for every other workload kind.
    pub fn streamable(&self, modifier: &WorkloadModifier) -> Option<(GeneratorConfig, u64)> {
        match self {
            WorkloadSpec::Generated { config, seed } => {
                let mut cfg = config.clone();
                if let Some(gap) = modifier.interarrival {
                    cfg.arrivals = cfg.arrivals.with_mean_gap(gap);
                }
                cfg.arrivals = cfg.arrivals.scaled(modifier.load_multiplier);
                Some((cfg, *seed))
            }
            _ => None,
        }
    }
}

/// Compresses every arrival instant by `1/m` (m > 1 = more load).
fn scale_arrivals(mut subs: Vec<Submission>, m: f64) -> Vec<Submission> {
    if m != 1.0 {
        for s in &mut subs {
            s.at = meryn_sim::SimTime::ZERO + s.at.since(meryn_sim::SimTime::ZERO).scale(1.0 / m);
        }
    }
    subs
}

/// Per-variant workload adjustments produced by the sweep axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadModifier {
    /// Arrival-time compression factor (1.0 = as specified).
    pub load_multiplier: f64,
    /// Overrides the paper/generated inter-arrival gap.
    pub interarrival: Option<SimDuration>,
}

impl Default for WorkloadModifier {
    fn default() -> Self {
        WorkloadModifier {
            load_multiplier: 1.0,
            interarrival: None,
        }
    }
}

fn default_base_seed() -> u64 {
    DEFAULT_BASE_SEED
}

fn default_replicas() -> u64 {
    1
}

/// Replication and sweep axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Base seed: the single "headline" run uses it directly; replica
    /// `i` uses the derived stream seed `stream_seed(base_seed, i)`.
    #[serde(default = "default_base_seed")]
    pub base_seed: u64,
    /// Independent replica runs per variant (0 = headline run only).
    #[serde(default = "default_replicas")]
    pub replicas: u64,
    /// Axes to sweep; the variant set is their cartesian product, in
    /// declaration order (first axis outermost).
    #[serde(default)]
    pub axes: Vec<SweepAxis>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            base_seed: DEFAULT_BASE_SEED,
            replicas: 1,
            axes: Vec::new(),
        }
    }
}

/// One swept dimension: each value yields a platform/workload variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Placement-policy names (resolved through the policy registry).
    Policy {
        /// Policy names, e.g. `["meryn", "static"]`.
        values: Vec<String>,
    },
    /// The penalty divisor N of eq. 3.
    PenaltyFactor {
        /// N values.
        values: Vec<u64>,
    },
    /// Scales every cloud's static price (ablation A2).
    CloudPriceFactor {
        /// Multipliers over the spec's cloud prices.
        values: Vec<f64>,
    },
    /// Compresses arrival times by `1/m` (ablation A4 by another knob).
    LoadMultiplier {
        /// Load multipliers (1.0 = as specified).
        values: Vec<f64>,
    },
    /// Overrides the workload's inter-arrival gap, in seconds.
    InterarrivalSecs {
        /// Gaps in seconds.
        values: Vec<u64>,
    },
    /// Number of Client Manager instances (`null` = unbounded).
    ClientManagers {
        /// Instance counts.
        values: Vec<Option<usize>>,
    },
    /// Algorithm 2's storage rate, in micro-units per VM-second.
    StorageRateMicro {
        /// Rates in micro-units/VM·s.
        values: Vec<i64>,
    },
    /// Initial private-VM split across the VCs (one entry per VC).
    InitialVms {
        /// Splits; each inner vector must match the VC count.
        values: Vec<Vec<u64>>,
    },
    /// What to do when a queued application's SLA is at risk.
    ViolationPolicy {
        /// Policies to compare.
        values: Vec<ViolationPolicy>,
    },
    /// Toggles Algorithm 2 suspension bids (ablation A3's off switch).
    SuspensionEnabled {
        /// Switch positions.
        values: Vec<bool>,
    },
}

impl SweepAxis {
    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::Policy { values } => values.len(),
            SweepAxis::PenaltyFactor { values } => values.len(),
            SweepAxis::CloudPriceFactor { values } => values.len(),
            SweepAxis::LoadMultiplier { values } => values.len(),
            SweepAxis::InterarrivalSecs { values } => values.len(),
            SweepAxis::ClientManagers { values } => values.len(),
            SweepAxis::StorageRateMicro { values } => values.len(),
            SweepAxis::InitialVms { values } => values.len(),
            SweepAxis::ViolationPolicy { values } => values.len(),
            SweepAxis::SuspensionEnabled { values } => values.len(),
        }
    }

    /// True when the axis has no values (such an axis is rejected).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies value `idx` to the variant under construction and
    /// returns its label fragment (`key=value`).
    pub fn apply(
        &self,
        idx: usize,
        cfg: &mut PlatformConfig,
        modifier: &mut WorkloadModifier,
    ) -> String {
        match self {
            SweepAxis::Policy { values } => {
                cfg.policy = values[idx].clone();
                format!("policy={}", values[idx])
            }
            SweepAxis::PenaltyFactor { values } => {
                cfg.penalty_factor = values[idx];
                format!("penalty_factor={}", values[idx])
            }
            SweepAxis::CloudPriceFactor { values } => {
                *cfg = cfg.clone().with_cloud_price_factor(values[idx]);
                format!("cloud_price_factor={}", values[idx])
            }
            SweepAxis::LoadMultiplier { values } => {
                modifier.load_multiplier = values[idx];
                format!("load={}", values[idx])
            }
            SweepAxis::InterarrivalSecs { values } => {
                modifier.interarrival = Some(SimDuration::from_secs(values[idx]));
                format!("interarrival_s={}", values[idx])
            }
            SweepAxis::ClientManagers { values } => {
                cfg.client_managers = values[idx];
                match values[idx] {
                    Some(n) => format!("client_managers={n}"),
                    None => "client_managers=unbounded".to_owned(),
                }
            }
            SweepAxis::StorageRateMicro { values } => {
                cfg.storage_rate = VmRate::from_micro(values[idx]);
                format!("storage_rate_micro={}", values[idx])
            }
            SweepAxis::InitialVms { values } => {
                let split = &values[idx];
                assert_eq!(
                    split.len(),
                    cfg.vcs.len(),
                    "InitialVms split must name one count per VC"
                );
                for (vc, &n) in cfg.vcs.iter_mut().zip(split) {
                    vc.initial_vms = n;
                }
                let parts: Vec<String> = split.iter().map(u64::to_string).collect();
                format!("initial_vms={}", parts.join("/"))
            }
            SweepAxis::ViolationPolicy { values } => {
                cfg.violation_policy = values[idx];
                format!("violation_policy={:?}", values[idx])
            }
            SweepAxis::SuspensionEnabled { values } => {
                cfg.suspension_enabled = values[idx];
                format!("suspension={}", values[idx])
            }
        }
    }
}

fn default_true() -> bool {
    true
}

/// Which report sections [`crate::runner::run_scenario`] produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputSpec {
    /// Headline per-variant metrics (on by default).
    #[serde(default = "default_true")]
    pub summary: bool,
    /// Per-variant placement histograms (Table 1 labels).
    #[serde(default)]
    pub placements: bool,
    /// Per-variant used-VM step series (the Figure 5 quantity).
    #[serde(default)]
    pub series: bool,
    /// Compare the first two variants (the Figure 6 quantities).
    #[serde(default)]
    pub comparison: bool,
    /// Run the five Table 1 placement micro-scenarios over this many
    /// seed-derived samples each.
    #[serde(default)]
    pub table1_samples: Option<u64>,
    /// Run in `ReportMode::Aggregate`: applications retire into per-VC
    /// running totals as they complete, ledger entries are dropped at
    /// charge time and `Generated` workloads stream their arrivals —
    /// memory stays O(live) instead of O(history). Required for
    /// hyperscale submission counts. Placements and summaries still
    /// work (from the aggregates); per-app listings do not.
    #[serde(default)]
    pub aggregate: bool,
}

impl OutputSpec {
    /// Whether any requested output needs the per-variant base-seed
    /// run; when nothing does (e.g. a Table-1-only scenario), the
    /// runner skips those simulations entirely.
    pub fn needs_base_run(&self) -> bool {
        self.summary || self.placements || self.series || self.comparison
    }
}

impl Default for OutputSpec {
    fn default() -> Self {
        OutputSpec {
            summary: true,
            placements: false,
            series: false,
            comparison: false,
            table1_samples: None,
            aggregate: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paperish() -> Scenario {
        Scenario {
            name: "t".into(),
            description: String::new(),
            platform: PlatformConfig::paper("meryn"),
            workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
            sweep: SweepSpec::default(),
            outputs: OutputSpec::default(),
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut s = paperish();
        s.sweep.axes = vec![
            SweepAxis::Policy {
                values: vec!["meryn".into(), "static".into()],
            },
            SweepAxis::ClientManagers {
                values: vec![Some(1), None],
            },
        ];
        s.outputs.table1_samples = Some(100);
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), json, "re-serialization must be stable");
    }

    #[test]
    fn defaults_fill_missing_sections() {
        let json = r#"{
            "name": "minimal",
            "platform": PLATFORM,
            "workload": { "Explicit": { "submissions": [] } }
        }"#
        .replace(
            "PLATFORM",
            &serde_json::to_string(&PlatformConfig::paper("meryn")).unwrap(),
        );
        let s = Scenario::from_json(&json).unwrap();
        assert_eq!(s.sweep, SweepSpec::default());
        assert_eq!(s.outputs, OutputSpec::default());
        assert!(s.description.is_empty());
        assert!(s.outputs.summary);
    }

    #[test]
    fn paper_workload_materializes_with_modifiers() {
        let spec = WorkloadSpec::Paper(PaperWorkloadParams::default());
        let plain = spec.materialize(&WorkloadModifier::default()).unwrap();
        assert_eq!(plain.len(), 65);
        assert_eq!(plain[0].at, meryn_sim::SimTime::from_secs(5));

        let double = spec
            .materialize(&WorkloadModifier {
                load_multiplier: 2.0,
                interarrival: None,
            })
            .unwrap();
        assert_eq!(double[0].at.as_secs_f64(), 2.5);

        let slow = spec
            .materialize(&WorkloadModifier {
                load_multiplier: 1.0,
                interarrival: Some(SimDuration::from_secs(10)),
            })
            .unwrap();
        assert_eq!(slow[0].at, meryn_sim::SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "only applies to Paper/Generated")]
    fn interarrival_override_on_explicit_workload_is_rejected() {
        let spec = WorkloadSpec::Explicit {
            submissions: vec![],
        };
        let _ = spec.materialize(&WorkloadModifier {
            load_multiplier: 1.0,
            interarrival: Some(SimDuration::from_secs(1)),
        });
    }

    #[test]
    fn axes_apply_and_label() {
        let mut cfg = PlatformConfig::paper("meryn");
        let mut modifier = WorkloadModifier::default();
        let label = SweepAxis::Policy {
            values: vec!["static".into()],
        }
        .apply(0, &mut cfg, &mut modifier);
        assert_eq!(label, "policy=static");
        assert_eq!(cfg.policy, "static");

        let label = SweepAxis::InitialVms {
            values: vec![vec![38, 12]],
        }
        .apply(0, &mut cfg, &mut modifier);
        assert_eq!(label, "initial_vms=38/12");
        assert_eq!(cfg.vcs[0].initial_vms, 38);

        let label =
            SweepAxis::LoadMultiplier { values: vec![2.0] }.apply(0, &mut cfg, &mut modifier);
        assert_eq!(label, "load=2");
        assert_eq!(modifier.load_multiplier, 2.0);
    }
}
