//! The one entry point every experiment goes through:
//! [`run_scenario`] takes a declarative [`Scenario`] and produces a
//! [`ScenarioReport`].
//!
//! Execution is layered on the replica-sweep harness
//! ([`crate::sweep`]): the sweep axes expand into a variant list
//! (cartesian product, declaration order), every (variant, seed) pair
//! becomes one simulation job, and all jobs fan out through the
//! order-preserving parallel [`fanout`]. Aggregation folds in job
//! order, so a scenario's JSON report is **byte-identical at any
//! thread count** — CI byte-compares `RAYON_NUM_THREADS=1` against the
//! threaded run for every checked-in spec.

use std::io;

use meryn_core::config::PlatformConfig;
use meryn_core::report::{compare, ReportMode, RunReport};
use meryn_core::{EngineCheckpoint, Platform, VcId};
use meryn_sim::metrics::SeriesSet;
use meryn_sim::SimRng;
use meryn_workloads::generators::{GeneratedChunks, GeneratorConfig, DEFAULT_CHUNK};
use meryn_workloads::Submission;
use serde::Serialize;

use crate::paper::{paper_range, TABLE1_CASES};
use crate::spec::{Scenario, WorkloadModifier};
use crate::sweep::{case_sweep, fanout, ReplicaStats};

/// One expanded sweep variant: a concrete platform config plus the
/// workload modifiers its axes selected.
#[derive(Debug, Clone)]
pub(crate) struct Variant {
    pub(crate) label: String,
    pub(crate) cfg: PlatformConfig,
    pub(crate) modifier: WorkloadModifier,
}

/// Expands the scenario's axes into the variant list (cartesian
/// product, first axis outermost).
pub(crate) fn expand_variants(scenario: &Scenario) -> Vec<Variant> {
    let mut variants = vec![Variant {
        label: String::new(),
        cfg: scenario.platform.clone(),
        modifier: WorkloadModifier::default(),
    }];
    for axis in &scenario.sweep.axes {
        assert!(!axis.is_empty(), "sweep axis with no values");
        let mut next = Vec::with_capacity(variants.len() * axis.len());
        for variant in &variants {
            for idx in 0..axis.len() {
                let mut cfg = variant.cfg.clone();
                let mut modifier = variant.modifier;
                let fragment = axis.apply(idx, &mut cfg, &mut modifier);
                let label = if variant.label.is_empty() {
                    fragment
                } else {
                    format!("{} {fragment}", variant.label)
                };
                next.push(Variant {
                    label,
                    cfg,
                    modifier,
                });
            }
        }
        variants = next;
    }
    for v in &mut variants {
        if v.label.is_empty() {
            v.label = "base".to_owned();
        }
    }
    variants
}

/// Headline metrics of one run (the base-seed run of a variant).
#[derive(Debug, Clone, Serialize)]
pub struct RunSummary {
    /// Workload completion time [s].
    pub completion_secs: f64,
    /// Total provider cost [units].
    pub total_cost_units: f64,
    /// Total revenue [units].
    pub revenue_units: f64,
    /// Provider profit [units].
    pub profit_units: f64,
    /// Peak concurrent private VMs.
    pub peak_private_vms: f64,
    /// Peak concurrent cloud VMs (the paper's Fig 5 headline).
    pub peak_cloud_vms: f64,
    /// Deadline violations.
    pub violations: usize,
    /// Zero-bid VM transfers.
    pub transfers: u64,
    /// Cloud VMs leased.
    pub bursts: u64,
    /// Application suspensions.
    pub suspensions: u64,
    /// Queued jobs escalated to the cloud.
    pub escalations: u64,
    /// Total delay penalties paid [units].
    pub penalties_units: f64,
    /// Rejected submissions.
    pub rejected: usize,
    /// Admitted applications.
    pub apps: usize,
    /// Mean execution time [s].
    pub avg_exec_secs: f64,
    /// Mean provider cost per app [units].
    pub avg_cost_units: f64,
    /// Mean submission processing time [s] (the Table 1 quantity).
    pub processing_mean_s: f64,
    /// Worst submission processing time [s].
    pub processing_max_s: f64,
    /// Fault-plane tallies — present only when the platform armed a
    /// failure process, so fault-free scenario reports stay
    /// byte-identical to their pre-fault-plane goldens.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub faults: Option<meryn_core::report::FaultStats>,
    /// Per-VC aggregates, VC order.
    pub groups: Vec<GroupSummary>,
}

/// One VC's slice of a run.
#[derive(Debug, Clone, Serialize)]
pub struct GroupSummary {
    /// VC name.
    pub vc: String,
    /// Applications hosted.
    pub apps: usize,
    /// Mean execution time [s].
    pub avg_exec_secs: f64,
    /// Mean provider cost per app [units].
    pub avg_cost_units: f64,
    /// Deadline violations.
    pub violations: usize,
}

impl RunSummary {
    fn from_report(report: &RunReport, vc_names: &[String]) -> Self {
        // Every quantity goes through the mode-branching accessors so
        // the same summary comes out of a full run and an aggregate
        // (hyperscale) run; in full mode they compute exactly what the
        // per-record folds here used to.
        let all = report.group(None);
        let (processing_mean_s, processing_max_s) = report.processing_mean_max_secs();
        RunSummary {
            completion_secs: report.completion_secs(),
            total_cost_units: report.total_cost().as_units_f64(),
            revenue_units: report.total_revenue().as_units_f64(),
            profit_units: report.profit().as_units_f64(),
            peak_private_vms: report.peak_private,
            peak_cloud_vms: report.peak_cloud,
            violations: report.violations(),
            transfers: report.transfers,
            bursts: report.bursts,
            suspensions: report.suspensions,
            escalations: report.escalations,
            penalties_units: report.total_penalty().as_units_f64(),
            rejected: report.rejected,
            apps: report.apps_count(),
            avg_exec_secs: all.avg_exec_secs,
            avg_cost_units: all.avg_cost_units,
            processing_mean_s,
            processing_max_s,
            faults: report.faults,
            groups: vc_names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let g = report.group(Some(VcId(i)));
                    GroupSummary {
                        vc: name.clone(),
                        apps: g.count,
                        avg_exec_secs: g.avg_exec_secs,
                        avg_cost_units: g.avg_cost_units,
                        violations: g.violations,
                    }
                })
                .collect(),
        }
    }
}

/// One variant's results.
#[derive(Debug, Clone, Serialize)]
pub struct VariantReport {
    /// Axis label, e.g. `"policy=meryn penalty_factor=4"`.
    pub label: String,
    /// The placement policy this variant ran.
    pub policy: String,
    /// Headline metrics of the base-seed run (absent when the
    /// scenario's `outputs.summary` is off).
    pub base: Option<RunSummary>,
    /// Replica-sweep aggregates (absent when `sweep.replicas == 0`).
    pub replicas: Option<ReplicaStats>,
    /// Placement histogram of the base run (when requested).
    pub placements: Option<Vec<(String, usize)>>,
    /// Used-VM step series of the base run (when requested).
    pub series: Option<SeriesSet>,
}

impl VariantReport {
    /// The base-run summary, for callers that know their scenario
    /// requested it.
    ///
    /// # Panics
    /// When the scenario ran with `outputs.summary` off.
    pub fn summary(&self) -> &RunSummary {
        self.base
            .as_ref()
            .expect("scenario outputs.summary was off — no base summary recorded")
    }
}

/// The Figure 6 comparison of the first two variants.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonReport {
    /// First variant's label (the "a" side, typically Meryn).
    pub a: String,
    /// Second variant's label (the "b" side, typically static).
    pub b: String,
    /// Completion-time improvement of a over b, %.
    pub completion_improvement_pct: f64,
    /// Mean-cost improvement of a over b, %.
    pub cost_improvement_pct: f64,
    /// Total cost saved by a relative to b [units].
    pub cost_saved_units: f64,
    /// Peak cloud VMs of a.
    pub peak_cloud_a: f64,
    /// Peak cloud VMs of b.
    pub peak_cloud_b: f64,
}

/// One Table 1 row from the placement micro-scenarios.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Placement case label.
    pub case: String,
    /// The paper's measured range [s], when it reports one.
    pub paper_range_s: Option<(f64, f64)>,
    /// Measured mean [s].
    pub mean_s: f64,
    /// Measured minimum [s].
    pub min_s: f64,
    /// Measured maximum [s].
    pub max_s: f64,
    /// Samples per case.
    pub samples: u64,
}

/// Everything [`run_scenario`] produced.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Base seed of the headline runs.
    pub base_seed: u64,
    /// Replica runs per variant.
    pub replicas: u64,
    /// One entry per expanded variant, axis order.
    pub variants: Vec<VariantReport>,
    /// First-two-variants comparison (when requested).
    pub comparison: Option<ComparisonReport>,
    /// Table 1 micro-scenario sweep (when requested).
    pub table1: Option<Vec<Table1Row>>,
}

/// Runs a scenario: expands the axes, fans every (variant, seed) job
/// out through the parallel harness, aggregates in job order.
///
/// # Errors
/// Only workload materialization can fail (an unreadable
/// `TraceFile`); everything else panics on spec inconsistencies, like
/// the platform itself does on an invalid config.
pub fn run_scenario(scenario: &Scenario) -> io::Result<ScenarioReport> {
    crate::policies::install();
    let variants = expand_variants(scenario);
    let base_seed = scenario.sweep.base_seed;
    let replicas = scenario.sweep.replicas;
    let outputs = &scenario.outputs;
    // The base-seed headline run only executes when some requested
    // output consumes it (a Table-1-only scenario skips it entirely).
    let with_base = outputs.needs_base_run();

    // One job per (variant, seed): the base-seed headline run first
    // (when needed), then the derived replica streams. Flat fanout,
    // order preserved. Materialized workloads are memoized per
    // modifier, so a policy-only sweep over a trace file reads and
    // parses it once, not once per variant. Aggregate scenarios with a
    // `Generated` workload never materialize at all: each job streams
    // its submissions straight from the seeded generator, so arrival
    // memory is O(1) even at hyperscale counts (the stream and the
    // sorted vector are byte-identical — generator arrivals are
    // nondecreasing).
    enum JobInput {
        Batch(std::sync::Arc<Vec<Submission>>),
        Stream(GeneratorConfig, u64),
    }
    let streamed = outputs.aggregate
        && matches!(
            scenario.workload,
            crate::spec::WorkloadSpec::Generated { .. }
        );
    let mut materialized: Vec<(WorkloadModifier, std::sync::Arc<Vec<Submission>>)> = Vec::new();
    let mut jobs: Vec<(PlatformConfig, JobInput)> = Vec::new();
    for variant in &variants {
        let input = if streamed {
            let (gen_cfg, seed) = scenario
                .workload
                .streamable(&variant.modifier)
                .expect("streamed implies a Generated workload");
            JobInput::Stream(gen_cfg, seed)
        } else {
            let workload = match materialized.iter().find(|(m, _)| *m == variant.modifier) {
                Some((_, w)) => std::sync::Arc::clone(w),
                None => {
                    let w = std::sync::Arc::new(scenario.workload.materialize(&variant.modifier)?);
                    materialized.push((variant.modifier, std::sync::Arc::clone(&w)));
                    w
                }
            };
            JobInput::Batch(workload)
        };
        let clone_input = |input: &JobInput| match input {
            JobInput::Batch(w) => JobInput::Batch(std::sync::Arc::clone(w)),
            JobInput::Stream(c, s) => JobInput::Stream(c.clone(), *s),
        };
        if with_base {
            jobs.push((
                variant.cfg.clone().with_seed(base_seed),
                clone_input(&input),
            ));
        }
        for i in 0..replicas {
            jobs.push((
                variant
                    .cfg
                    .clone()
                    .with_seed(SimRng::stream_seed(base_seed, i)),
                clone_input(&input),
            ));
        }
    }
    // Curve recording is costly bookkeeping on long runs; only sample
    // the used-VM series when the requested outputs actually emit them.
    // Peaks (the Fig 5 headline numbers) are tracked either way.
    let record_series = outputs.series;
    let aggregate = outputs.aggregate;
    let reports: Vec<RunReport> = fanout(jobs, |(cfg, input)| {
        let mut platform = Platform::new(cfg).with_series_recording(record_series);
        if aggregate {
            platform = platform.with_report_mode(ReportMode::Aggregate);
        }
        match input {
            JobInput::Batch(workload) => platform.enqueue_workload(workload.iter()),
            JobInput::Stream(gen_cfg, seed) => {
                let count = gen_cfg.count as u64;
                let subs = GeneratedChunks::new(&gen_cfg, seed, DEFAULT_CHUNK).submissions();
                platform
                    .stream_workload(count, subs)
                    .expect("a fresh platform has no stream attached");
            }
        }
        platform.run_to_completion();
        platform.finalize()
    });

    let per_variant = replicas as usize + usize::from(with_base);
    let mut variant_reports = Vec::with_capacity(variants.len());
    for (vi, variant) in variants.iter().enumerate() {
        let chunk = &reports[vi * per_variant..(vi + 1) * per_variant];
        let base = with_base.then(|| &chunk[0]);
        let replica_chunk = &chunk[usize::from(with_base)..];
        let vc_names: Vec<String> = variant.cfg.vcs.iter().map(|v| v.name.clone()).collect();
        variant_reports.push(VariantReport {
            label: variant.label.clone(),
            policy: variant.cfg.policy.clone(),
            base: (outputs.summary).then(|| {
                RunSummary::from_report(base.expect("summary implies a base run"), &vc_names)
            }),
            replicas: (replicas > 0).then(|| ReplicaStats::from_reports(replica_chunk)),
            placements: (outputs.placements).then(|| {
                base.expect("placements imply a base run")
                    .placement_counts()
            }),
            series: (outputs.series)
                .then(|| base.expect("series implies a base run").series.clone()),
        });
    }

    let comparison = (outputs.comparison && variants.len() >= 2).then(|| {
        let a = &reports[0];
        let b = &reports[per_variant];
        let cmp = compare(a, b);
        ComparisonReport {
            a: variants[0].label.clone(),
            b: variants[1].label.clone(),
            completion_improvement_pct: cmp.completion_improvement_pct,
            cost_improvement_pct: cmp.cost_improvement_pct,
            cost_saved_units: cmp.cost_saved.as_units_f64(),
            peak_cloud_a: cmp.peak_cloud_a,
            peak_cloud_b: cmp.peak_cloud_b,
        }
    });

    let table1 = outputs.table1_samples.map(|samples| {
        TABLE1_CASES
            .iter()
            .map(|case| {
                let summary = case_sweep(case, base_seed, samples);
                Table1Row {
                    case: (*case).to_owned(),
                    paper_range_s: paper_range(case),
                    mean_s: summary.mean(),
                    min_s: summary.min(),
                    max_s: summary.max(),
                    samples,
                }
            })
            .collect()
    });

    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        base_seed,
        replicas,
        variants: variant_reports,
        comparison,
        table1,
    })
}

/// Prepares the *single run* the checkpoint workflow operates on: the
/// base-seed run of the scenario's first expanded variant, with the
/// scenario's report mode and workload delivery (streamed for
/// aggregate `Generated` scenarios, enqueued otherwise) applied
/// exactly as [`run_scenario`] would. Drive it with
/// [`Platform::run_until`] + [`Platform::checkpoint`], or straight to
/// completion for the uninterrupted comparator.
pub fn single_run_start(scenario: &Scenario) -> io::Result<Platform> {
    crate::policies::install();
    let variant = expand_variants(scenario)
        .into_iter()
        .next()
        .expect("a scenario always expands to at least one variant");
    let cfg = variant.cfg.clone().with_seed(scenario.sweep.base_seed);
    let mut platform = Platform::new(cfg).with_series_recording(scenario.outputs.series);
    if scenario.outputs.aggregate {
        platform = platform.with_report_mode(ReportMode::Aggregate);
    }
    match scenario
        .outputs
        .aggregate
        .then(|| scenario.workload.streamable(&variant.modifier))
        .flatten()
    {
        Some((gen_cfg, seed)) => {
            let count = gen_cfg.count as u64;
            let subs = GeneratedChunks::new(&gen_cfg, seed, DEFAULT_CHUNK).submissions();
            platform
                .stream_workload(count, subs)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
        None => {
            let workload = scenario.workload.materialize(&variant.modifier)?;
            platform.enqueue_workload(&workload);
        }
    }
    Ok(platform)
}

/// Resumes the [`single_run_start`] run from a checkpoint. Streaming
/// checkpoints re-derive the submission stream from the scenario's
/// generator (the workload is deterministic from its seed; the
/// checkpoint only carries the cursor); batch checkpoints carry their
/// remaining arrivals in the control queue and need nothing else.
/// Resuming and running to completion is byte-identical to the
/// uninterrupted run.
pub fn single_run_resume(scenario: &Scenario, cp: EngineCheckpoint) -> Platform {
    crate::policies::install();
    if !cp.needs_workload() {
        return Platform::from_checkpoint(cp);
    }
    let variant = expand_variants(scenario)
        .into_iter()
        .next()
        .expect("a scenario always expands to at least one variant");
    let (gen_cfg, seed) = scenario
        .workload
        .streamable(&variant.modifier)
        .expect("checkpoint streams arrivals but the scenario workload is not Generated");
    let subs = GeneratedChunks::new(&gen_cfg, seed, DEFAULT_CHUNK).submissions();
    Platform::from_checkpoint_streaming(cp, subs)
}

impl ScenarioReport {
    /// Serializes to pretty JSON, newline-terminated (the `--json`
    /// artifact CI byte-compares across thread counts).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("report types are serde-safe");
        json.push('\n');
        json
    }

    /// Renders the human-readable tables the experiment binaries print.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {} — base seed {:#x}, {} replica(s) per variant",
            self.scenario, self.base_seed, self.replicas
        );
        if !self.description.is_empty() {
            let _ = writeln!(out, "{}", self.description);
        }
        let label_w = self
            .variants
            .iter()
            .map(|v| v.label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        // The summary table only appears when the scenario asked for it
        // (`outputs.summary`; the runner then populated `base`).
        if self.variants.iter().any(|v| v.base.is_some()) {
            let _ = writeln!(
                out,
                "\n{:<label_w$} {:>12} {:>12} {:>10} {:>9} {:>7} {:>9} {:>8} {:>6}",
                "variant",
                "completion",
                "cost [u]",
                "peak cld",
                "transfers",
                "bursts",
                "suspends",
                "violate",
                "rejct"
            );
        }
        for v in &self.variants {
            if let Some(base) = &v.base {
                let _ = writeln!(
                    out,
                    "{:<label_w$} {:>12.0} {:>12.0} {:>10.0} {:>9} {:>7} {:>9} {:>8} {:>6}",
                    v.label,
                    base.completion_secs,
                    base.total_cost_units,
                    base.peak_cloud_vms,
                    base.transfers,
                    base.bursts,
                    base.suspensions,
                    base.violations,
                    base.rejected
                );
            }
            if let Some(stats) = &v.replicas {
                if stats.completion.count() > 1 {
                    let _ = writeln!(
                        out,
                        "{:<label_w$} {:>7.1} ±{:<4.1} {:>7.0} ±{:<4.0} {:>5.1}±{:<3.1} (n={})",
                        "  replicas",
                        stats.completion.mean(),
                        stats.completion.std_dev(),
                        stats.cost.mean(),
                        stats.cost.std_dev(),
                        stats.peak_cloud.mean(),
                        stats.peak_cloud.std_dev(),
                        stats.completion.count()
                    );
                }
            }
        }
        if let Some(cmp) = &self.comparison {
            let _ = writeln!(out, "\ncomparison: {} vs {}", cmp.a, cmp.b);
            let _ = writeln!(
                out,
                "  completion improvement : {:>7.2}%",
                cmp.completion_improvement_pct
            );
            let _ = writeln!(
                out,
                "  avg cost improvement   : {:>7.2}%",
                cmp.cost_improvement_pct
            );
            let _ = writeln!(
                out,
                "  cost saved             : {:>7.0} u",
                cmp.cost_saved_units
            );
            let _ = writeln!(
                out,
                "  peak cloud VMs         : {:.0} vs {:.0}",
                cmp.peak_cloud_a, cmp.peak_cloud_b
            );
        }
        if let Some(rows) = &self.table1 {
            let _ = writeln!(
                out,
                "\n{:<28} {:>12} {:>24}",
                "Table 1 case", "paper [s]", "measured min~max (mean)"
            );
            for r in rows {
                let paper = match r.paper_range_s {
                    Some((lo, hi)) => format!("{lo:.0}~{hi:.0}"),
                    None => "—".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "{:<28} {:>12} {:>13.0}~{:<3.0} ({:.1})",
                    r.case, paper, r.min_s, r.max_s, r.mean_s
                );
            }
        }
        for v in &self.variants {
            if let Some(placements) = &v.placements {
                let _ = writeln!(out, "\nplacements [{}]:", v.label);
                for (case, count) in placements {
                    let _ = writeln!(out, "  {case:<28} {count}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{OutputSpec, SweepAxis, SweepSpec, WorkloadSpec};
    use meryn_workloads::PaperWorkloadParams;

    fn small_scenario() -> Scenario {
        let mut platform = PlatformConfig::paper("meryn");
        platform.private_capacity = 4;
        platform.vcs = vec![
            meryn_core::config::VcConfig::batch("VC1", 2),
            meryn_core::config::VcConfig::batch("VC2", 2),
        ];
        Scenario {
            name: "small".into(),
            description: "unit fixture".into(),
            platform,
            workload: WorkloadSpec::Paper(PaperWorkloadParams {
                vc1_apps: 4,
                vc2_apps: 2,
                ..Default::default()
            }),
            sweep: SweepSpec {
                replicas: 2,
                axes: vec![SweepAxis::Policy {
                    values: vec!["meryn".into(), "static".into()],
                }],
                ..Default::default()
            },
            outputs: OutputSpec {
                comparison: true,
                placements: true,
                ..Default::default()
            },
        }
    }

    #[test]
    fn axes_expand_in_declaration_order() {
        let mut s = small_scenario();
        s.sweep
            .axes
            .push(SweepAxis::PenaltyFactor { values: vec![1, 4] });
        let variants = expand_variants(&s);
        let labels: Vec<&str> = variants.iter().map(|v| v.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "policy=meryn penalty_factor=1",
                "policy=meryn penalty_factor=4",
                "policy=static penalty_factor=1",
                "policy=static penalty_factor=4",
            ]
        );
    }

    #[test]
    fn no_axes_yields_the_base_variant() {
        let mut s = small_scenario();
        s.sweep.axes.clear();
        let variants = expand_variants(&s);
        assert_eq!(variants.len(), 1);
        assert_eq!(variants[0].label, "base");
    }

    #[test]
    fn run_scenario_produces_requested_sections() {
        let report = run_scenario(&small_scenario()).unwrap();
        assert_eq!(report.variants.len(), 2);
        assert_eq!(report.variants[0].policy, "meryn");
        assert_eq!(report.variants[1].policy, "static");
        assert!(report.comparison.is_some());
        assert!(report.table1.is_none());
        for v in &report.variants {
            assert_eq!(v.summary().apps, 6);
            assert!(v.placements.is_some());
            assert!(v.series.is_none());
            let stats = v.replicas.as_ref().expect("replicas requested");
            assert_eq!(stats.completion.count(), 2);
        }
        let rendered = report.render();
        assert!(rendered.contains("policy=meryn"));
        assert!(rendered.contains("comparison:"));
    }

    #[test]
    fn summary_off_skips_the_base_runs_entirely() {
        let mut s = small_scenario();
        s.sweep.replicas = 0;
        s.outputs = OutputSpec {
            summary: false,
            placements: false,
            series: false,
            comparison: false,
            table1_samples: Some(2),
            aggregate: false,
        };
        let report = run_scenario(&s).unwrap();
        for v in &report.variants {
            assert!(v.base.is_none(), "summary off must not record a base run");
            assert!(v.placements.is_none());
            assert!(v.series.is_none());
        }
        assert_eq!(report.table1.as_ref().map(Vec::len), Some(5));
        // Rendering without a summary section still works.
        let rendered = report.render();
        assert!(
            !rendered.contains("completion"),
            "no summary table expected"
        );
        assert!(rendered.contains("Table 1 case"));
    }

    #[test]
    fn zero_replicas_skips_replica_stats() {
        let mut s = small_scenario();
        s.sweep.replicas = 0;
        let report = run_scenario(&s).unwrap();
        assert!(report.variants[0].replicas.is_none());
    }

    #[test]
    fn report_json_is_stable_for_identical_runs() {
        let s = small_scenario();
        let a = run_scenario(&s).unwrap().to_json();
        let b = run_scenario(&s).unwrap().to_json();
        assert_eq!(a, b);
    }
}
