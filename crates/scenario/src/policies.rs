//! Placement policies registered from *outside* `meryn-core`.
//!
//! The PR-3 policy registry claims to be extensible across crate
//! boundaries; this module is the proof. [`DeadlineAwarePolicy`] lives
//! in `meryn-scenario`, implements `meryn_core::policy::PlacementPolicy`
//! against the public shard-context API ([`PlacementContext`] over
//! `VcView`s) and registers itself by name — scenario specs then select
//! it like any built-in (`"policy": "deadline-aware"`, see
//! `scenarios/deadline-aware.json`).
//!
//! Registration is idempotent and happens automatically on every
//! scenario entry point ([`crate::run_scenario`],
//! [`crate::bench_scenario`], [`crate::catalog`]), so a spec naming an
//! extension policy validates no matter which path loads it.

use std::sync::{Arc, Once};

use meryn_core::policy::{register_placement, PlacementContext, PlacementPolicy};
use meryn_core::protocol::Decision;

/// Deadline-protecting placement: never suspend a running tenant.
///
/// Algorithm 2's suspension bids price the *expected* revenue loss of
/// delaying a victim — but a provider that must not risk SLA penalties
/// at all wants a harder rule than a price. `deadline-aware` serves a
/// request from free VMs (local first, then the cheapest sibling zero
/// bid, like Algorithm 1's options 1–2) and otherwise goes straight to
/// the cloud market; running applications keep their VMs and therefore
/// their deadlines, whatever the bids say. With no cloud able to
/// serve, the request queues.
pub struct DeadlineAwarePolicy;

impl PlacementPolicy for DeadlineAwarePolicy {
    fn name(&self) -> &'static str {
        "deadline-aware"
    }

    fn decide(&self, ctx: &PlacementContext<'_>) -> Decision {
        // Option 1: enough local VMs.
        if ctx.local_has_capacity() {
            return Decision::Local;
        }
        // Option 2: any sibling zero bid (idle VMs move for free and
        // nobody's deadline is touched).
        if let Some(&(src, _)) = ctx.sibling_bids().iter().find(|(_, b)| b.is_free()) {
            return Decision::FromVc { src };
        }
        // Options 3–4 (suspensions) are off the table by design; go to
        // the market.
        match ctx.cheapest_cloud() {
            Some((cloud, rate, _)) => Decision::Cloud { cloud, rate },
            None => Decision::Queue,
        }
    }
}

/// Registers this crate's extension policies (idempotent).
pub fn install() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        register_placement(Arc::new(DeadlineAwarePolicy));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{OutputSpec, SweepSpec, WorkloadSpec};
    use crate::{run_scenario, Scenario};
    use meryn_core::config::{PlatformConfig, VcConfig};
    use meryn_workloads::PaperWorkloadParams;

    #[test]
    fn registry_resolves_the_cross_crate_policy() {
        install();
        let p = meryn_core::policy::placement("deadline-aware").expect("registered");
        assert_eq!(p.name(), "deadline-aware");
    }

    #[test]
    fn deadline_aware_scenario_never_suspends_but_still_exchanges() {
        // Small estate under pressure: meryn would consider suspension
        // bids; deadline-aware must only take free VMs or burst.
        let mut platform = PlatformConfig::paper("deadline-aware");
        platform.private_capacity = 4;
        platform.vcs = vec![VcConfig::batch("VC1", 2), VcConfig::batch("VC2", 2)];
        let scenario = Scenario {
            name: "deadline-aware-unit".into(),
            description: String::new(),
            platform,
            workload: WorkloadSpec::Paper(PaperWorkloadParams {
                vc1_apps: 6,
                vc2_apps: 2,
                ..Default::default()
            }),
            sweep: SweepSpec {
                replicas: 0,
                axes: vec![],
                ..Default::default()
            },
            outputs: OutputSpec::default(),
        };
        let report = run_scenario(&scenario).expect("no files involved");
        let base = report.variants[0].summary();
        assert_eq!(base.suspensions, 0, "deadline-aware must never suspend");
        assert!(
            base.transfers > 0 || base.bursts > 0,
            "overflow must still be served from siblings or the cloud"
        );
    }
}
