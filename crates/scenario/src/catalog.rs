//! The shipped scenario catalog.
//!
//! Every checked-in `scenarios/*.json` file is the exact
//! [`Scenario::to_json`] bytes of one constructor here —
//! `tests/scenario_roundtrip.rs` byte-compares them, so the files, the
//! experiment binaries and this catalog can never drift apart.

use meryn_core::config::{FaultSpec, OutageWindow, PlatformConfig, VcConfig, ViolationPolicy};
use meryn_frameworks::{FrameworkKind, ScalingLaw};
use meryn_sim::SimDuration;
use meryn_sla::negotiation::UserStrategy;
use meryn_sla::VmRate;
use meryn_vmm::{LatencyModel, PriceModel};
use meryn_workloads::generators::{ArrivalProcess, GeneratorConfig, WorkDistribution};
use meryn_workloads::{PaperWorkloadParams, VcTarget};

use crate::spec::{OutputSpec, Scenario, SweepAxis, SweepSpec, WorkloadSpec};

/// The paper's full evaluation: the 65-app workload under `meryn` and
/// `static`, the Figure 6 comparison, and the Table 1 placement
/// micro-scenarios — the repository's golden numbers (peak cloud VMs
/// 15 vs 25, cost saved 35800 u) come out of this spec.
pub fn paper() -> Scenario {
    Scenario {
        name: "paper".into(),
        description: "The paper's evaluation (§5): 65 batch apps, 5 s apart, 50/15 across \
                      two 25-VM VCs, meryn vs static — reproduces Fig 5/6 and Table 1."
            .into(),
        platform: PlatformConfig::paper("meryn"),
        workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
        sweep: SweepSpec {
            replicas: 30,
            axes: vec![SweepAxis::Policy {
                values: vec!["meryn".into(), "static".into()],
            }],
            ..Default::default()
        },
        outputs: OutputSpec {
            summary: true,
            placements: true,
            series: false,
            comparison: true,
            table1_samples: Some(100),
            aggregate: false,
        },
    }
}

/// Arrival pressure sweep: the paper workload compressed to 5/2/1 s
/// inter-arrivals under both policies — where the exchange protocol's
/// advantage over static bursting widens.
pub fn high_load() -> Scenario {
    Scenario {
        name: "high-load".into(),
        description: "Inter-arrival sweep (5/2/1 s) of the paper workload under meryn and \
                      static: the cost gap is the cloud spend avoided by VC exchange."
            .into(),
        platform: PlatformConfig::paper("meryn"),
        workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
        sweep: SweepSpec {
            replicas: 3,
            axes: vec![
                SweepAxis::Policy {
                    values: vec!["meryn".into(), "static".into()],
                },
                SweepAxis::InterarrivalSecs {
                    values: vec![5, 2, 1],
                },
            ],
            ..Default::default()
        },
        outputs: OutputSpec {
            placements: true,
            ..Default::default()
        },
    }
}

/// Cloud price sensitivity: scales the cloud market to 0.5×/1×/2× the
/// paper's rate under every built-in policy worth comparing, including
/// `cost-greedy`, which starts preferring the cloud once it undercuts
/// the private cost rate.
pub fn cheap_cloud() -> Scenario {
    Scenario {
        name: "cheap-cloud".into(),
        description: "Cloud price factor sweep (0.5/1/2x) under meryn, static and \
                      cost-greedy: at 0.5x the cloud (2 u/VMs) matches the private cost \
                      rate and cost-greedy bursts everything."
            .into(),
        platform: PlatformConfig::paper("meryn"),
        workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
        sweep: SweepSpec {
            replicas: 3,
            axes: vec![
                SweepAxis::CloudPriceFactor {
                    values: vec![0.5, 1.0, 2.0],
                },
                SweepAxis::Policy {
                    values: vec!["meryn".into(), "static".into(), "cost-greedy".into()],
                },
            ],
            ..Default::default()
        },
        outputs: OutputSpec::default(),
    }
}

/// Ablation A3's hard switch as a scenario: the paper workload with
/// suspension bids enabled vs disabled (penalty factor 4 makes
/// suspensions competitive enough to matter).
pub fn no_suspension() -> Scenario {
    let mut platform = PlatformConfig::paper("meryn");
    platform.penalty_factor = 4;
    Scenario {
        name: "no-suspension".into(),
        description: "Suspension on/off at penalty factor N=4 (where Algorithm 2 bids are \
                      competitive): disabling suspension pushes the overflow back to the \
                      cloud."
            .into(),
        platform,
        workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
        sweep: SweepSpec {
            replicas: 3,
            axes: vec![SweepAxis::SuspensionEnabled {
                values: vec![true, false],
            }],
            ..Default::default()
        },
        outputs: OutputSpec {
            placements: true,
            ..Default::default()
        },
    }
}

/// The long-horizon "representative data-center" experiment the paper
/// leaves as future work: ~100k generated submissions over a simulated
/// month, diurnal arrivals and cloud pricing, three VCs (two batch, one
/// MapReduce) on a 40-slot private estate — sized so day peaks overflow
/// into the cloud. This is also the engine-throughput benchmark target
/// (`scenario --bench`, `BENCH_4.json`).
pub fn representative_datacenter() -> Scenario {
    let mut platform = PlatformConfig::paper("meryn");
    platform.private_capacity = 40;
    platform.vcs = vec![
        VcConfig::batch("batch-a", 18),
        VcConfig::batch("batch-b", 12),
        VcConfig::mapreduce("mapred", 10),
    ];
    platform.clouds[0].price = PriceModel::Diurnal {
        base: VmRate::per_vm_second(4),
        amplitude_pct: 25,
        period: SimDuration::from_secs(86_400),
    };
    // Long jobs (up to 4 h): a 5-minute SLA check cadence is realistic
    // and keeps the controller from dominating the event stream.
    platform.controller_check_interval = Some(SimDuration::from_secs(300));
    Scenario {
        name: "representative-datacenter".into(),
        description: "A representative data-center month: 100k Poisson-diurnal submissions \
                      (heavy-tailed runtimes, 3:1 batch:MapReduce) on a 40-VM private estate \
                      with a diurnally-priced cloud, meryn vs static — the engine-throughput \
                      benchmark scenario."
            .into(),
        platform,
        workload: WorkloadSpec::Generated {
            config: GeneratorConfig {
                count: 100_000,
                arrivals: ArrivalProcess::Diurnal {
                    mean: SimDuration::from_secs(26),
                    depth: 0.8,
                    period: SimDuration::from_secs(86_400),
                },
                work: WorkDistribution::BoundedPareto {
                    lo: SimDuration::from_secs(120),
                    hi: SimDuration::from_secs(14_400),
                    alpha: 1.3,
                },
                nb_vms_choices: vec![1, 1, 1, 2, 4],
                targets: vec![
                    (VcTarget::Index(0), 3),
                    (VcTarget::Index(1), 2),
                    (VcTarget::Kind(FrameworkKind::MapReduce), 1),
                ],
                strategy: UserStrategy::AcceptCheapest,
                scaling: ScalingLaw::Linear,
            },
            seed: 0xDC,
        },
        sweep: SweepSpec {
            replicas: 0,
            axes: vec![SweepAxis::Policy {
                values: vec!["meryn".into(), "static".into()],
            }],
            ..Default::default()
        },
        outputs: OutputSpec {
            summary: true,
            placements: true,
            series: false,
            comparison: true,
            table1_samples: None,
            aggregate: false,
        },
    }
}

/// The shard-parallelism showcase: sixteen batch VCs, each large
/// enough that one arrival cohort exactly fills it, with every latency
/// that feeds the choreography held *fixed*. Cohorts of 1024
/// submissions land at one instant (negotiation sizes each job at two
/// VMs, so a cohort occupies all 2048 slots), so their Cluster-Manager
/// handoffs, dispatches, completions and (interval-aligned)
/// Application Controller checks all share instants too — every such
/// instant is a ~1k-event batch spread evenly across all sixteen
/// shards, which is exactly the shape the parallel executor pays off
/// on. This is the CI thread-speedup gate's scenario: its report must
/// be byte-identical at any `RAYON_NUM_THREADS`, and the threaded run
/// must not be slower.
pub fn many_vc() -> Scenario {
    let mut platform = PlatformConfig::paper("meryn");
    platform.private_capacity = 2048;
    platform.vcs = (0..16)
        .map(|i| VcConfig::batch(format!("vc-{i:02}"), 128))
        .collect();
    // A fixed handling latency keeps a cohort's submits on one shared
    // instant (the paper's uniform 7–15 s draw would fan one cohort
    // out over thousands of distinct instants and serialize the run).
    platform.latencies.base = LatencyModel::Fixed(SimDuration::from_secs(10));
    Scenario {
        name: "many-vc".into(),
        description: "Shard-parallelism showcase: 16 batch VCs of 128 VMs, 1024-submission \
                      cohorts with fixed latencies and work — aligned controller ticks make \
                      ~1k-event cross-shard batches (the CI thread-speedup gate scenario)."
            .into(),
        platform,
        workload: WorkloadSpec::Generated {
            config: GeneratorConfig {
                count: 8192,
                arrivals: ArrivalProcess::Bursty {
                    burst_len: 1024,
                    fast: SimDuration::ZERO,
                    idle: SimDuration::from_secs(2400),
                },
                work: WorkDistribution::Fixed(SimDuration::from_secs(1800)),
                nb_vms_choices: vec![1],
                targets: (0..16).map(|i| (VcTarget::Index(i), 1)).collect(),
                strategy: UserStrategy::AcceptCheapest,
                scaling: ScalingLaw::Linear,
            },
            seed: 0x16C5,
        },
        sweep: SweepSpec {
            replicas: 0,
            axes: Vec::new(),
            ..Default::default()
        },
        outputs: OutputSpec {
            summary: true,
            placements: false,
            series: false,
            comparison: false,
            table1_samples: None,
            aggregate: false,
        },
    }
}

/// The hyperscale survival run: 1024 single-VM batch VCs and ten
/// million Poisson-diurnal submissions over a simulated quarter
/// (~89 days at a 770 ms mean gap). Runs in aggregate report mode —
/// applications retire into per-VC running totals the moment they
/// complete, ledger entries are dropped at charge time and arrivals
/// stream straight from the seeded generator — so resident memory is
/// O(live applications), not O(10M history). Too big to ship as a
/// checked-in spec + golden pair; reach it through
/// `scenario --catalog hyperscale` (the [`hyperscale_ci`] scaling is
/// the checked-in, golden-pinned CI gate).
pub fn hyperscale() -> Scenario {
    Scenario {
        name: "hyperscale".into(),
        description: "Hyperscale survival: 1024 single-VM VCs, 10M Poisson-diurnal \
                      submissions over a simulated quarter in aggregate report mode — \
                      memory stays O(live); the engine-scale stress scenario."
            .into(),
        platform: hyperscale_platform(1024),
        workload: WorkloadSpec::Generated {
            config: hyperscale_workload(10_000_000, 1024, SimDuration::from_millis(770)),
            seed: 0x5CA1E,
        },
        sweep: SweepSpec {
            replicas: 0,
            axes: Vec::new(),
            ..Default::default()
        },
        outputs: OutputSpec {
            summary: true,
            placements: true,
            series: false,
            comparison: false,
            table1_samples: None,
            aggregate: true,
        },
    }
}

/// [`hyperscale`] scaled 1:16 for the CI gate: 64 VCs, 200k
/// submissions, the same per-VC load (the 770 ms mean gap stretched
/// ×16). Checked in with a golden; CI additionally runs it under
/// `scenario --bench` against an events/sec floor and a peak-RSS
/// ceiling, and byte-compares a mid-run checkpoint + resume against
/// the uninterrupted report.
pub fn hyperscale_ci() -> Scenario {
    Scenario {
        name: "hyperscale-ci".into(),
        description: "Hyperscale scaled 1:16 for CI: 64 single-VM VCs, 200k diurnal \
                      submissions at the same per-VC load, aggregate report mode — the \
                      events/sec + peak-RSS gate and the checkpoint/resume byte-compare \
                      scenario."
            .into(),
        platform: hyperscale_platform(64),
        workload: WorkloadSpec::Generated {
            config: hyperscale_workload(200_000, 64, SimDuration::from_millis(770 * 16)),
            seed: 0x5CA1E,
        },
        sweep: SweepSpec {
            replicas: 0,
            axes: Vec::new(),
            ..Default::default()
        },
        outputs: OutputSpec {
            summary: true,
            placements: true,
            series: false,
            comparison: false,
            table1_samples: None,
            aggregate: true,
        },
    }
}

/// The shared hyperscale deployment: `vcs` single-VM batch VCs on an
/// exactly-covering private estate, with the SLA-check cadence relaxed
/// to 10 minutes so controller ticks don't dominate the quarter-long
/// event stream.
fn hyperscale_platform(vcs: usize) -> PlatformConfig {
    let mut platform = PlatformConfig::paper("meryn");
    platform.private_capacity = vcs as u64;
    platform.vcs = (0..vcs)
        .map(|i| VcConfig::batch(format!("vc-{i:04}"), 1))
        .collect();
    platform.controller_check_interval = Some(SimDuration::from_secs(600));
    platform
}

/// The shared hyperscale workload shape: Poisson-diurnal arrivals
/// spread uniformly over the VCs, heavy-tailed 1–60 min runtimes
/// (mean ≈ 200 s → ~25% mean utilization, day peaks near 50%).
fn hyperscale_workload(count: usize, vcs: usize, mean_gap: SimDuration) -> GeneratorConfig {
    GeneratorConfig {
        count,
        arrivals: ArrivalProcess::Diurnal {
            mean: mean_gap,
            depth: 0.8,
            period: SimDuration::from_secs(86_400),
        },
        work: WorkDistribution::BoundedPareto {
            lo: SimDuration::from_secs(60),
            hi: SimDuration::from_secs(3_600),
            alpha: 1.3,
        },
        nb_vms_choices: vec![1],
        targets: (0..vcs).map(|i| (VcTarget::Index(i), 1)).collect(),
        strategy: UserStrategy::AcceptCheapest,
        scaling: ScalingLaw::Linear,
    }
}

/// The fault-plane showcase: the paper workload under an aggressive —
/// but fully deterministic — failure regime. Every VM carries a 2 h
/// exponential crash hazard (drawn from the per-shard fault streams),
/// a third of cloud-lease admissions are transiently refused, and the
/// cloud market schedules a 10-minute whole-cloud outage right where
/// the paper run's escalations cluster. Refused acquisitions retry on
/// the deterministic capped backoff (30 s base, 240 s cap, budget 4)
/// before degrading to the private pool. Comparing meryn against
/// static under the *same* fault schedule shows the exchange
/// protocol's slack absorbing faults the static split pays the cloud
/// (or the SLA penalty) for.
pub fn chaos_datacenter() -> Scenario {
    let mut platform = PlatformConfig::paper("meryn");
    // Refused leases only retry on the escalation path; the paper's
    // report-only violation handling would leave the backoff machinery
    // idle.
    platform.violation_policy = ViolationPolicy::EscalateToCloud;
    platform.faults = FaultSpec {
        vm_mtbf_secs: Some(7_200),
        lease_rejection_prob: 0.3,
        lease_rejection_secs: 120,
        cloud_outages: vec![OutageWindow {
            cloud: 0,
            from_secs: 600,
            to_secs: 1_200,
        }],
        retry_max: 4,
        backoff_base_secs: 30,
        backoff_cap_secs: 240,
    };
    Scenario {
        name: "chaos-datacenter".into(),
        description: "The paper evaluation under a deterministic failure regime: 2 h per-VM \
                      crash MTBF, 30% transient lease rejections with capped-backoff retries \
                      (30 s base, budget 4), and a 600-1200 s whole-cloud outage — meryn vs \
                      static on the identical fault schedule."
            .into(),
        platform,
        workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
        sweep: SweepSpec {
            replicas: 3,
            axes: vec![SweepAxis::Policy {
                values: vec!["meryn".into(), "static".into()],
            }],
            ..Default::default()
        },
        outputs: OutputSpec {
            summary: true,
            placements: true,
            series: false,
            comparison: true,
            table1_samples: None,
            aggregate: false,
        },
    }
}

/// The cross-crate extension policy at work: `deadline-aware` (defined
/// and registered in [`crate::policies`], *not* in `meryn-core`)
/// against the two paper policies on a pressured estate. Suspensions
/// under `deadline-aware` are zero by construction; the cost of that
/// guarantee shows up as extra cloud spend.
pub fn deadline_aware() -> Scenario {
    crate::policies::install();
    let mut platform = PlatformConfig::paper("deadline-aware");
    // Penalty factor 4 makes meryn's suspension bids competitive, so
    // the never-suspend contrast is visible in the placements.
    platform.penalty_factor = 4;
    Scenario {
        name: "deadline-aware".into(),
        description: "The deadline-aware extension policy (registered from meryn-scenario, \
                      outside meryn-core) vs meryn and static at penalty factor N=4: \
                      free VMs or cloud only — running tenants keep their deadlines."
            .into(),
        platform,
        workload: WorkloadSpec::Paper(PaperWorkloadParams::default()),
        sweep: SweepSpec {
            replicas: 3,
            axes: vec![SweepAxis::Policy {
                values: vec!["deadline-aware".into(), "meryn".into(), "static".into()],
            }],
            ..Default::default()
        },
        outputs: OutputSpec {
            placements: true,
            comparison: true,
            ..Default::default()
        },
    }
}

/// Every shipped scenario, as `(file stem, spec)` pairs.
pub fn shipped() -> Vec<(&'static str, Scenario)> {
    crate::policies::install();
    vec![
        ("paper", paper()),
        ("high-load", high_load()),
        ("cheap-cloud", cheap_cloud()),
        ("no-suspension", no_suspension()),
        ("representative-datacenter", representative_datacenter()),
        ("many-vc", many_vc()),
        ("deadline-aware", deadline_aware()),
        ("hyperscale-ci", hyperscale_ci()),
        ("chaos-datacenter", chaos_datacenter()),
    ]
}

/// Every catalog scenario — the shipped set plus the unshipped full
/// [`hyperscale`] run (too big for a checked-in golden) — for
/// `scenario --catalog NAME` lookup.
pub fn all() -> Vec<(&'static str, Scenario)> {
    let mut entries = shipped();
    entries.push(("hyperscale", hyperscale()));
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_specs_round_trip() {
        for (stem, scenario) in shipped() {
            let json = scenario.to_json();
            let back = Scenario::from_json(&json).unwrap_or_else(|e| panic!("{stem}: {e}"));
            assert_eq!(back, scenario, "{stem}");
            assert_eq!(back.to_json(), json, "{stem}: unstable serialization");
        }
    }

    #[test]
    fn shipped_names_match_file_stems() {
        for (stem, scenario) in shipped() {
            assert_eq!(scenario.name, stem);
            scenario.platform.validate();
        }
    }
}
