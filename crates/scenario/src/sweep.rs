//! Shared replica-sweep harness for the experiment binaries.
//!
//! Every evaluation binary repeats some unit of work — the full paper
//! scenario, a Table 1 micro-scenario, a config variant — across many
//! seeded replicas and aggregates the results. This module is the one
//! implementation of that loop:
//!
//! 1. **seed fanout** — [`replica_seeds`] derives one independent RNG
//!    stream per replica from a base seed (via [`SimRng::stream_seed`]),
//!    so a replica's randomness depends only on `(base, index)`, never on
//!    execution order;
//! 2. **parallel run** — [`fanout`] maps the work function over the
//!    replicas through the rayon shim with an order-preserving collect;
//! 3. **aggregation** — results are folded **in replica order** into
//!    [`ReplicaStats`] / [`Summary`], so sequential (`RAYON_NUM_THREADS=1`)
//!    and multi-threaded sweeps produce byte-identical aggregates
//!    (`tests/parallel_determinism.rs` locks this down).

use meryn_core::report::RunReport;
use meryn_sim::stats::{OnlineStats, Summary};
use meryn_sim::SimRng;
use rayon::prelude::*;
use serde::Serialize;

use crate::paper::{measure_case, run_paper};

/// Base seed the binaries sweep from unless told otherwise — the same
/// constant the single-run figures (Fig 5/6) pin their one run to.
pub const DEFAULT_BASE_SEED: u64 = 0xC0FFEE;

/// Derives the per-replica seeds `0..replicas` from `base_seed`.
///
/// Each replica gets an independent seed-derived RNG stream: replica `i`
/// simulates with `SimRng::stream_seed(base_seed, i)`, a pure function of
/// the pair, so any subset of replicas can run on any thread in any order
/// without perturbing the others.
pub fn replica_seeds(base_seed: u64, replicas: u64) -> Vec<u64> {
    (0..replicas)
        .map(|i| SimRng::stream_seed(base_seed, i))
        .collect()
}

/// Runs `work` over `items` in parallel (rayon shim), preserving input
/// order in the output — the core fanout every binary goes through.
pub fn fanout<T, U, F>(items: Vec<T>, work: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync + Send,
{
    items.into_par_iter().map(work).collect()
}

/// Seed-fanout: runs `work` once per derived replica seed, in parallel,
/// results in replica order.
pub fn fanout_seeds<U, F>(base_seed: u64, replicas: u64, work: F) -> Vec<U>
where
    U: Send,
    F: Fn(u64) -> U + Sync + Send,
{
    fanout(replica_seeds(base_seed, replicas), work)
}

/// Runs the full paper scenario once per replica under the named
/// placement policy, returning the per-replica [`RunReport`]s in
/// replica order.
pub fn paper_reports(policy: &str, base_seed: u64, replicas: u64) -> Vec<RunReport> {
    fanout_seeds(base_seed, replicas, |seed| run_paper(policy, seed))
}

/// Aggregates of one policy's replica sweep: the four headline metrics
/// of the paper's evaluation, each as mean ± std.
///
/// Determinism caveat: the underlying Welford accumulators are
/// insertion-order-sensitive at the bit level, so thread-count
/// independence comes from [`Self::from_reports`] always folding in
/// replica order (after the order-preserving parallel collect) — do not
/// feed results in completion order.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaStats {
    /// Workload completion time [s].
    pub completion: OnlineStats,
    /// Total provider cost [units].
    pub cost: OnlineStats,
    /// Peak number of leased cloud VMs.
    pub peak_cloud: OnlineStats,
    /// SLA violations.
    pub violations: OnlineStats,
}

impl ReplicaStats {
    /// Folds the reports in the given (replica) order.
    pub fn from_reports(reports: &[RunReport]) -> Self {
        let mut stats = ReplicaStats {
            completion: OnlineStats::new(),
            cost: OnlineStats::new(),
            peak_cloud: OnlineStats::new(),
            violations: OnlineStats::new(),
        };
        for r in reports {
            stats.completion.push(r.completion_secs());
            stats.cost.push(r.total_cost().as_units_f64());
            stats.peak_cloud.push(r.peak_cloud);
            stats.violations.push(r.violations() as f64);
        }
        stats
    }
}

/// Sweeps the paper scenario for one policy: seed fanout, parallel runs,
/// aggregation in replica order.
pub fn paper_sweep(policy: &str, base_seed: u64, replicas: u64) -> ReplicaStats {
    ReplicaStats::from_reports(&paper_reports(policy, base_seed, replicas))
}

/// Sweeps one Table 1 placement case over `samples` derived seeds and
/// summarizes the measured processing times [s].
pub fn case_sweep(case: &str, base_seed: u64, samples: u64) -> Summary {
    Summary::from_slice(&fanout_seeds(base_seed, samples, |seed| {
        measure_case(case, seed)
    }))
}

/// One policy's row in a machine-readable sweep report.
#[derive(Debug, Clone, Serialize)]
pub struct SweepMode {
    /// Policy label (`meryn` / `static`).
    pub mode: String,
    /// Aggregated replica statistics.
    pub stats: ReplicaStats,
}

/// The machine-readable output of the `sweep` binary — deterministic for
/// a given `(base_seed, replicas)` at any thread count, which CI checks
/// by byte-comparing the sequential and threaded runs.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Base seed the replica streams were derived from.
    pub base_seed: u64,
    /// Number of replicas per policy.
    pub replicas: u64,
    /// One entry per policy mode.
    pub modes: Vec<SweepMode>,
}

impl SweepReport {
    /// Sweeps both of the paper's policies (`meryn`, then `static`).
    pub fn collect_both(base_seed: u64, replicas: u64) -> Self {
        SweepReport {
            base_seed,
            replicas,
            modes: ["meryn", "static"]
                .into_iter()
                .map(|policy| SweepMode {
                    mode: policy.to_owned(),
                    stats: paper_sweep(policy, base_seed, replicas),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_seeds_are_distinct_and_stable() {
        let a = replica_seeds(DEFAULT_BASE_SEED, 32);
        let b = replica_seeds(DEFAULT_BASE_SEED, 32);
        assert_eq!(a, b, "seed derivation must be pure");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 32, "derived seeds must not collide");
        // Different base: entirely different streams.
        assert_ne!(a, replica_seeds(DEFAULT_BASE_SEED + 1, 32));
    }

    #[test]
    fn fanout_preserves_order() {
        let out = fanout((0..100u64).collect(), |x| x * x);
        assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn paper_sweep_aggregates_every_replica() {
        let stats = paper_sweep("meryn", DEFAULT_BASE_SEED, 3);
        assert_eq!(stats.completion.count(), 3);
        assert!(stats.completion.mean() > 0.0);
        assert_eq!(stats.peak_cloud.count(), 3);
    }

    #[test]
    fn case_sweep_stays_positive() {
        let s = case_sweep("local-vm", DEFAULT_BASE_SEED, 5);
        assert_eq!(s.count(), 5);
        assert!(s.min() > 0.0);
    }
}
