//! The paper's fixed experiment fixtures: the 65-app workload run and
//! the five Table 1 placement micro-scenarios.
//!
//! These used to live in `meryn-bench`; they sit here so both the
//! declarative [`runner`](crate::runner) and the experiment binaries
//! share one implementation.

use meryn_core::config::{PlatformConfig, VcConfig};
use meryn_core::report::RunReport;
use meryn_core::Platform;
use meryn_frameworks::{JobSpec, ScalingLaw};
use meryn_sim::{SimDuration, SimTime};
use meryn_sla::negotiation::UserStrategy;
use meryn_workloads::{paper_workload, PaperWorkloadParams, Submission, VcTarget};

/// Runs the paper's 65-app workload under the named placement policy
/// with the given seed.
pub fn run_paper(policy: &str, seed: u64) -> RunReport {
    let cfg = PlatformConfig::paper(policy).with_seed(seed);
    Platform::new(cfg).run(paper_workload(PaperWorkloadParams::default()))
}

/// Runs an arbitrary config against the paper workload.
pub fn run_paper_with(cfg: PlatformConfig) -> RunReport {
    Platform::new(cfg).run(paper_workload(PaperWorkloadParams::default()))
}

fn batch_sub(at: u64, vc: usize, work: u64) -> Submission {
    Submission::new(
        SimTime::from_secs(at),
        VcTarget::Index(vc),
        JobSpec::Batch {
            work: SimDuration::from_secs(work),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        },
        UserStrategy::AcceptCheapest,
    )
}

fn slack_sub(at: u64, vc: usize, work: u64, deadline: u64) -> Submission {
    Submission::new(
        SimTime::from_secs(at),
        VcTarget::Index(vc),
        JobSpec::Batch {
            work: SimDuration::from_secs(work),
            nb_vms: 1,
            scaling: ScalingLaw::Fixed,
        },
        UserStrategy::ImposeDeadline {
            deadline: SimDuration::from_secs(deadline),
            concession_pct: 10,
        },
    )
}

/// The five Table 1 placement cases.
pub const TABLE1_CASES: [&str; 5] = [
    "local-vm",
    "vc-vm",
    "cloud-vm",
    "local-vm after suspension",
    "vc-vm after suspension",
];

/// Paper-measured processing-time ranges (seconds) for Table 1;
/// `None` for labels the paper did not measure.
pub fn paper_range(case: &str) -> Option<(f64, f64)> {
    match case {
        "local-vm" => Some((7.0, 15.0)),
        "vc-vm" => Some((40.0, 58.0)),
        "cloud-vm" => Some((60.0, 84.0)),
        "local-vm after suspension" => Some((10.0, 17.0)),
        "vc-vm after suspension" => Some((60.0, 68.0)),
        _ => None,
    }
}

/// Runs one micro-scenario that forces the given Table 1 placement
/// case and returns the target app's processing time in seconds.
///
/// # Panics
/// On a label outside [`TABLE1_CASES`].
pub fn measure_case(case: &str, seed: u64) -> f64 {
    let (cfg, workload, target_idx) = match case {
        "local-vm" => {
            let mut cfg = PlatformConfig::paper("meryn");
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 1)];
            (cfg, vec![batch_sub(5, 0, 100)], 0usize)
        }
        "vc-vm" => {
            let mut cfg = PlatformConfig::paper("meryn");
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 0), VcConfig::batch("VC2", 1)];
            (cfg, vec![batch_sub(5, 0, 100)], 0)
        }
        "cloud-vm" => {
            let mut cfg = PlatformConfig::paper("meryn");
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 0)];
            (cfg, vec![batch_sub(5, 0, 100)], 0)
        }
        "local-vm after suspension" => {
            let mut cfg = PlatformConfig::paper("meryn");
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 1)];
            cfg.clouds.clear();
            (
                cfg,
                vec![slack_sub(5, 0, 500, 50_000), batch_sub(40, 0, 100)],
                1,
            )
        }
        "vc-vm after suspension" => {
            let mut cfg = PlatformConfig::paper("meryn");
            cfg.private_capacity = 1;
            cfg.vcs = vec![VcConfig::batch("VC1", 0), VcConfig::batch("VC2", 1)];
            cfg.clouds.clear();
            (
                cfg,
                vec![slack_sub(5, 1, 500, 50_000), batch_sub(40, 0, 100)],
                1,
            )
        }
        other => panic!("unknown Table 1 case {other:?} (expected one of {TABLE1_CASES:?})"),
    };
    let report = Platform::new(cfg.with_seed(seed)).run(&workload);
    let app = &report.apps[target_idx];
    assert_eq!(
        app.placement, case,
        "scenario must force the intended placement"
    );
    app.processing
        .expect("target app reached the framework")
        .as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_is_forcible() {
        for case in TABLE1_CASES {
            let secs = measure_case(case, 1);
            assert!(secs > 0.0, "{case}: {secs}");
        }
    }

    #[test]
    fn paper_ranges_are_ordered() {
        for case in TABLE1_CASES {
            let (lo, hi) = paper_range(case).expect("every Table 1 case has a range");
            assert!(lo < hi);
        }
    }

    #[test]
    fn unknown_case_has_no_range() {
        assert_eq!(paper_range("orbit-vm"), None);
        assert_eq!(paper_range(""), None);
    }

    #[test]
    fn run_paper_smoke() {
        let r = run_paper("meryn", 3);
        assert_eq!(r.apps.len(), 65);
    }
}
