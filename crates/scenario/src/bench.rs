//! Engine-throughput measurement: events/second over a scenario's
//! base-seed runs.
//!
//! [`bench_scenario`] runs every expanded variant's headline simulation
//! once, single-threaded and untimed by the sweep harness, and reports
//! wall-clock time plus the platform's own event counter. The JSON it
//! produces (`scenario --bench --json`) is the `BENCH_4.json` artifact;
//! its timings are machine-dependent, so unlike scenario reports it is
//! **not** byte-compared across thread counts — only the simulation
//! outputs are.

use std::io;
use std::time::Instant;

use meryn_core::report::ReportMode;
use meryn_core::Platform;
use meryn_workloads::generators::{GeneratedChunks, DEFAULT_CHUNK};
use serde::Serialize;

use crate::runner::expand_variants;
use crate::spec::Scenario;

/// One queue's share of a run's events (the control plane or one VC
/// shard).
#[derive(Debug, Clone, Serialize)]
pub struct QueueEvents {
    /// Queue name: `"control"` or the VC's name.
    pub queue: String,
    /// Events that queue processed.
    pub events: u64,
}

/// One variant's throughput measurement.
#[derive(Debug, Clone, Serialize)]
pub struct BenchVariant {
    /// Axis label, e.g. `"policy=meryn"`.
    pub label: String,
    /// Simulation events processed by the run.
    pub events: u64,
    /// Per-queue breakdown: the sequential control plane first, then
    /// one entry per VC shard, `VcId` order.
    pub events_by_queue: Vec<QueueEvents>,
    /// The control queue's share of the run's events — the fraction of
    /// events the executor had to serialize. Derived from
    /// `events_by_queue`; 0 when the breakdown is empty. PR 10's CI
    /// gate holds this under a ceiling on representative-datacenter.
    pub control_fraction: f64,
    /// Same-instant cross-shard runs the executor fanned out to worker
    /// threads.
    pub parallel_runs: u64,
    /// Wall-clock seconds for the run (enqueue + drain + finalize).
    pub wall_secs: f64,
    /// `events / wall_secs`.
    pub events_per_sec: f64,
}

/// A scenario's throughput report.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Scenario name.
    pub scenario: String,
    /// Per-variant measurements, axis order.
    pub variants: Vec<BenchVariant>,
    /// Total events across variants.
    pub total_events: u64,
    /// Total wall-clock seconds across variants.
    pub total_wall_secs: f64,
    /// Aggregate `total_events / total_wall_secs`.
    pub events_per_sec: f64,
    /// Peak resident set size of the benchmarking process [bytes]
    /// (Linux `VmHWM`, covering all variants; omitted from the JSON
    /// where procfs can't answer). The hyperscale CI gate holds this
    /// under a ceiling to pin the engine's O(live) memory behaviour.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub peak_rss_bytes: Option<u64>,
}

/// The control queue's share of a run's events: `control / total` over
/// the per-queue breakdown (0 on an empty breakdown). The quantity the
/// shard refactors push down — shard events parallelize, control
/// events serialize.
fn control_fraction(by_queue: &[QueueEvents]) -> f64 {
    let total: u64 = by_queue.iter().map(|q| q.events).sum();
    if total == 0 {
        return 0.0;
    }
    let control: u64 = by_queue
        .iter()
        .filter(|q| q.queue == "control")
        .map(|q| q.events)
        .sum();
    control as f64 / total as f64
}

/// Extracts the `VmHWM` high-water mark [bytes] from a
/// `/proc/<pid>/status` blob. `None` when the line is absent or its
/// value column doesn't parse — the caller then omits the metric
/// rather than reporting a bogus zero.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Peak resident set size of this process [bytes]: the `VmHWM`
/// high-water mark from `/proc/self/status`. `None` where procfs is
/// unavailable (non-Linux platforms) or the field is unparseable.
pub fn peak_rss_bytes() -> Option<u64> {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").ok()?)
}

impl BenchReport {
    /// Serializes to pretty JSON, newline-terminated.
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("bench types are serde-safe");
        json.push('\n');
        json
    }

    /// Renders the human-readable throughput table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "engine throughput — scenario {}", self.scenario);
        let label_w = self
            .variants
            .iter()
            .map(|v| v.label.len())
            .max()
            .unwrap_or(4)
            .max(7);
        let _ = writeln!(
            out,
            "{:<label_w$} {:>12} {:>10} {:>14}",
            "variant", "events", "wall [s]", "events/sec"
        );
        for v in &self.variants {
            let _ = writeln!(
                out,
                "{:<label_w$} {:>12} {:>10.3} {:>14.0}",
                v.label, v.events, v.wall_secs, v.events_per_sec
            );
            let shares: Vec<String> = v
                .events_by_queue
                .iter()
                .map(|q| format!("{}={}", q.queue, q.events))
                .collect();
            let _ = writeln!(
                out,
                "{:<label_w$}   {} control_fraction={:.3} parallel_runs={}",
                "",
                shares.join(" "),
                v.control_fraction,
                v.parallel_runs
            );
        }
        let _ = writeln!(
            out,
            "{:<label_w$} {:>12} {:>10.3} {:>14.0}",
            "total", self.total_events, self.total_wall_secs, self.events_per_sec
        );
        if let Some(rss) = self.peak_rss_bytes {
            let _ = writeln!(out, "peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        out
    }
}

/// Times every variant's base-seed run of `scenario` once.
///
/// Replicas are ignored and no report sections are assembled, but the
/// platform is configured exactly as [`crate::runner::run_scenario`]
/// would configure it — including series recording gated on
/// `outputs.series` — so the measured run is the production one. Wall
/// clock wraps enqueue + event loop + finalize; workload
/// materialization is excluded.
///
/// # Errors
/// Only workload materialization can fail (an unreadable `TraceFile`).
#[allow(clippy::disallowed_methods)] // benchmark harness: wall clock is the measurement
pub fn bench_scenario(scenario: &Scenario) -> io::Result<BenchReport> {
    crate::policies::install();
    let base_seed = scenario.sweep.base_seed;
    let record_series = scenario.outputs.series;
    let aggregate = scenario.outputs.aggregate;
    let mut variants_out = Vec::new();
    let mut total_events = 0u64;
    let mut total_wall = 0.0f64;
    for variant in expand_variants(scenario) {
        // Aggregate `Generated` scenarios stream their arrivals in
        // production (`run_scenario` does the same), so the bench
        // streams too — generation is then part of the timed run, and
        // the measured RSS reflects the O(1) arrival memory.
        let stream = aggregate
            .then(|| scenario.workload.streamable(&variant.modifier))
            .flatten();
        let workload = match &stream {
            Some(_) => Vec::new(),
            None => scenario.workload.materialize(&variant.modifier)?,
        };
        let cfg = variant.cfg.clone().with_seed(base_seed);
        let start = Instant::now();
        let mut platform = Platform::new(cfg).with_series_recording(record_series);
        if aggregate {
            platform = platform.with_report_mode(ReportMode::Aggregate);
        }
        match stream {
            Some((gen_cfg, seed)) => {
                let count = gen_cfg.count as u64;
                let subs = GeneratedChunks::new(&gen_cfg, seed, DEFAULT_CHUNK).submissions();
                platform
                    .stream_workload(count, subs)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            }
            None => platform.enqueue_workload(&workload),
        }
        platform.run_to_completion();
        let events_by_queue: Vec<QueueEvents> = platform
            .shard_event_counts()
            .into_iter()
            .map(|(queue, events)| QueueEvents { queue, events })
            .collect();
        let control_fraction = control_fraction(&events_by_queue);
        let parallel_runs = platform.parallel_runs();
        let report = platform.finalize();
        let wall = start.elapsed().as_secs_f64();
        let events = report.events_processed;
        total_events += events;
        total_wall += wall;
        variants_out.push(BenchVariant {
            label: variant.label,
            events,
            events_by_queue,
            control_fraction,
            parallel_runs,
            wall_secs: wall,
            events_per_sec: if wall > 0.0 {
                events as f64 / wall
            } else {
                0.0
            },
        });
    }
    Ok(BenchReport {
        scenario: scenario.name.clone(),
        variants: variants_out,
        total_events,
        total_wall_secs: total_wall,
        events_per_sec: if total_wall > 0.0 {
            total_events as f64 / total_wall
        } else {
            0.0
        },
        peak_rss_bytes: peak_rss_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn bench_counts_events_for_every_variant() {
        let mut s = catalog::paper();
        s.sweep.replicas = 0;
        s.outputs.table1_samples = None;
        let b = bench_scenario(&s).unwrap();
        assert_eq!(b.variants.len(), 2);
        assert!(b.variants.iter().all(|v| v.events > 0));
        assert_eq!(
            b.total_events,
            b.variants.iter().map(|v| v.events).sum::<u64>()
        );
        for v in &b.variants {
            assert_eq!(v.events_by_queue[0].queue, "control");
            assert_eq!(
                v.events,
                v.events_by_queue.iter().map(|q| q.events).sum::<u64>(),
                "per-queue breakdown must cover every event"
            );
            let expected = v.events_by_queue[0].events as f64 / v.events as f64;
            assert!(
                (v.control_fraction - expected).abs() < 1e-12,
                "control_fraction must be the control queue's share"
            );
            assert!(
                v.control_fraction < 0.25,
                "shard-side admission keeps the control plane under a \
                 quarter of events (got {})",
                v.control_fraction
            );
        }
        let rendered = b.render();
        assert!(rendered.contains("events/sec"));
        assert!(rendered.contains("control_fraction="));
        assert!(b.to_json().contains("\"control_fraction\""));
        assert!(b.to_json().contains("\"total_events\""));
    }

    #[test]
    fn control_fraction_handles_empty_and_mixed_breakdowns() {
        assert_eq!(control_fraction(&[]), 0.0);
        let q = |queue: &str, events: u64| QueueEvents {
            queue: queue.into(),
            events,
        };
        assert_eq!(control_fraction(&[q("control", 0), q("VC1", 0)]), 0.0);
        assert_eq!(control_fraction(&[q("control", 1), q("VC1", 3)]), 0.25);
        assert_eq!(control_fraction(&[q("VC1", 7)]), 0.0);
    }

    #[test]
    fn vm_hwm_parses_a_well_formed_status() {
        let status = "Name:\tscenario\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nThreads:\t8\n";
        assert_eq!(parse_vm_hwm(status), Some(98_304 * 1024));
    }

    #[test]
    fn vm_hwm_is_none_when_the_line_is_missing_or_garbled() {
        // No VmHWM line at all (procfs variants that omit it).
        assert_eq!(parse_vm_hwm("Name:\tscenario\nThreads:\t8\n"), None);
        // Present but with a non-numeric value column.
        assert_eq!(parse_vm_hwm("VmHWM:\tlots kB\n"), None);
        // Present but with no value column.
        assert_eq!(parse_vm_hwm("VmHWM:\n"), None);
        // Empty input (the /proc/self/status read failed upstream).
        assert_eq!(parse_vm_hwm(""), None);
    }

    #[test]
    fn missing_rss_is_omitted_from_the_json() {
        let report = BenchReport {
            scenario: "s".into(),
            variants: Vec::new(),
            total_events: 0,
            total_wall_secs: 0.0,
            events_per_sec: 0.0,
            peak_rss_bytes: None,
        };
        assert!(!report.to_json().contains("peak_rss_bytes"));
        assert!(!report.render().contains("peak RSS"));
        let with = BenchReport {
            peak_rss_bytes: Some(2 * 1024 * 1024),
            ..report
        };
        assert!(with.to_json().contains("\"peak_rss_bytes\": 2097152"));
        assert!(with.render().contains("peak RSS: 2.0 MiB"));
    }
}
