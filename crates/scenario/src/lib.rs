//! # meryn-scenario — declarative experiment definitions
//!
//! The paper evaluates one fixed workload on one platform; this crate
//! makes the experiment itself *data*. A [`Scenario`] bundles a
//! platform configuration (with registry-resolved policy names), a
//! workload description, sweep axes and requested outputs; it loads
//! from and saves to JSON ([`Scenario::load`] / [`Scenario::save`]),
//! and [`run_scenario`] executes it through the shared replica-sweep
//! harness with thread-count-independent, byte-stable results.
//!
//! | module | role |
//! |---|---|
//! | [`spec`] | the serde scenario types: [`Scenario`], [`spec::WorkloadSpec`], [`spec::SweepAxis`], [`spec::OutputSpec`] |
//! | [`runner`] | [`run_scenario`] → [`runner::ScenarioReport`] (+ human rendering) |
//! | [`bench`] | [`bench_scenario`] → events/sec over a scenario's base runs (`scenario --bench`) |
//! | [`catalog`] | the shipped specs behind `scenarios/*.json` |
//! | [`policies`] | extension policies registered from outside `meryn-core` (e.g. `deadline-aware`) |
//! | [`sweep`] | seed fanout, parallel map, replica aggregation |
//! | [`paper`] | the paper's fixed fixtures (65-app run, Table 1 micro-scenarios) |
//!
//! ```
//! use meryn_scenario::{catalog, run_scenario};
//!
//! let mut scenario = catalog::paper();
//! scenario.sweep.replicas = 0;                  // headline runs only
//! scenario.outputs.table1_samples = None;
//! let report = run_scenario(&scenario).unwrap();
//! let peak = |i: usize| report.variants[i].base.as_ref().unwrap().peak_cloud_vms;
//! assert_eq!(peak(0), 15.0); // Fig 5(a)
//! assert_eq!(peak(1), 25.0); // Fig 5(b)
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod catalog;
pub mod paper;
pub mod policies;
pub mod runner;
pub mod spec;
pub mod sweep;

pub use bench::{bench_scenario, BenchReport};
pub use paper::{measure_case, paper_range, run_paper, run_paper_with, TABLE1_CASES};
pub use policies::DeadlineAwarePolicy;
pub use runner::{run_scenario, single_run_resume, single_run_start, ScenarioReport};
pub use spec::Scenario;
