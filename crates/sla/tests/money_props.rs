//! Property tests for the economics kernel: money arithmetic and the
//! pricing equations behave like the exact algebra they claim to be.

use meryn_sim::SimDuration;
use meryn_sla::pricing::{PenaltyBound, PricingParams};
use meryn_sla::{Money, VmRate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Addition is commutative/associative within the domain.
    #[test]
    fn money_addition_algebra(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000, c in -1_000_000i64..1_000_000) {
        let (ma, mb, mc) = (Money::from_units(a), Money::from_units(b), Money::from_units(c));
        prop_assert_eq!(ma + mb, mb + ma);
        prop_assert_eq!((ma + mb) + mc, ma + (mb + mc));
        prop_assert_eq!(ma - ma, Money::ZERO);
    }

    /// Rate × duration distributes over duration addition exactly.
    #[test]
    fn rate_distributes_over_duration(
        rate in 1i64..100,
        d1 in 0u64..100_000,
        d2 in 0u64..100_000
    ) {
        let r = VmRate::per_vm_second(rate);
        let (a, b) = (SimDuration::from_secs(d1), SimDuration::from_secs(d2));
        prop_assert_eq!(r.cost_for(a + b), r.cost_for(a) + r.cost_for(b));
    }

    /// div_int then times never exceeds the original (truncation only
    /// loses, never gains).
    #[test]
    fn division_truncates_down(units in 0i64..10_000_000, n in 1u64..1000) {
        let m = Money::from_units(units);
        let back = m.div_int(n).times(n);
        prop_assert!(back <= m);
        prop_assert!(m - back < Money::from_micro(1_000_000 * n as i64));
    }

    /// eq. 2 price equals eq. 3 penalty with N=1 when delay == exec —
    /// the paper's "user pays nothing" identity, for any job size.
    #[test]
    fn n1_delay_equal_exec_zeroes_revenue(
        exec in 1u64..100_000,
        nb_vms in 1u64..64,
        rate in 1i64..20
    ) {
        let p = PricingParams::new(VmRate::per_vm_second(rate), 1);
        let exec = SimDuration::from_secs(exec);
        let price = p.price(exec, nb_vms);
        let revenue = p.revenue(price, nb_vms, exec, exec + exec);
        prop_assert_eq!(revenue, Money::ZERO);
    }

    /// Revenue is monotonically nonincreasing in the completion time.
    #[test]
    fn revenue_never_rises_with_lateness(
        exec in 1u64..10_000,
        n in 1u64..8,
        t1 in 0u64..30_000,
        t2 in 0u64..30_000
    ) {
        let p = PricingParams::new(VmRate::per_vm_second(4), n);
        let deadline = SimDuration::from_secs(exec + 84);
        let price = p.price(SimDuration::from_secs(exec), 1);
        let (early, late) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let r_early = p.revenue(price, 1, deadline, SimDuration::from_secs(early));
        let r_late = p.revenue(price, 1, deadline, SimDuration::from_secs(late));
        prop_assert!(r_early >= r_late);
    }

    /// The AtPrice bound keeps revenue in [0, price] whatever happens.
    #[test]
    fn bounded_revenue_stays_in_range(
        exec in 1u64..10_000,
        n in 1u64..8,
        total in 0u64..1_000_000
    ) {
        let p = PricingParams::new(VmRate::per_vm_second(4), n)
            .with_bound(PenaltyBound::AtPrice);
        let deadline = SimDuration::from_secs(exec + 84);
        let price = p.price(SimDuration::from_secs(exec), 2);
        let r = p.revenue(price, 2, deadline, SimDuration::from_secs(total));
        prop_assert!(r >= Money::ZERO);
        prop_assert!(r <= price);
    }
}
